"""The session-centric query API: ``repro.connect()``, ``Session``, ``Query``.

Libkin's framework treats *certainty as a mode of answering* a fixed
query over a fixed incomplete database; this module maps that onto a
connection/cursor-style API in the spirit of the world-set engines of
Koch & Olteanu::

    import repro
    from repro.algebra import parse_ra

    session = repro.connect(db, engine="sqlite", semantics="cwa")
    q = session.query(parse_ra("project[o_id](Orders)"))
    q.certain()          # certain answers (naive when guaranteed, else worlds)
    q.possible()         # possible answers
    q.answer_object()    # certainO: the naive answer, nulls included
    q.boolean()          # certainty of "the answer is non-empty"
    q.explain()          # applicability verdict + logical/physical/SQL plans
    for row in q.cursor():   # stream rows without materializing a Relation
        ...

A :class:`Session` owns **all** evaluation state that used to be
process-global: its own plan cache (:class:`repro.engine.PlanCache`), its
own condition kernel (:class:`repro.datamodel.ConditionKernel`,
bounded via ``connect(kernel_watermark=...)``), and its own
:class:`~repro.backends.SQLiteBackend` handles (one sentinel-mode, one
three-valued for :meth:`Session.sql`), kept open across queries — the
first step of the ROADMAP "persistent backend" item: switching to another
database with the same schema refills the existing tables instead of
opening a fresh backend.  Two live sessions therefore share *no* mutable
state and can use different engines, semantics and cache settings in the
same process.

The legacy entry points (``certain_answers(...)``,
``certain_answers_enumeration(...)``, ``run_sql(...)``,
``set_default_engine(...)``) remain as deprecated shims over the
process-default session returned by :func:`default_session`; that session
deliberately re-uses the process-default plan cache / kernel / per-database
backend caches, so old code keeps its exact caching behavior while it
migrates.  ``docs/api.md`` documents the full deprecation map.
"""

from __future__ import annotations

import functools
import hashlib
import multiprocessing
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .algebra.ast import RAExpression
from .core.answers import (
    Query as QueryLike,
    applicability_semantics,
    certain_strategy,
    enumeration_domain,
    enumeration_strategy,
    knowledge_strategy,
    naive_strategy,
    object_strategy,
)
from .resilience import (
    DEFAULT_RETRY_POLICY,
    BackendRecoveryWarning,
    BackendUnavailable,
    Budget,
    BudgetExceeded,
    BudgetState,
    InvalidRequestError,
    PartialResult,
    ResumeToken,
    RetryPolicy,
    SessionClosedError,
    budget_scope,
    with_retries,
)
from .core.naive_evaluation import evaluate_query, naive_evaluation_applies
from .datamodel import Database, Relation
from .datamodel.condition_kernel import ConditionKernel, DEFAULT_KERNEL
from .datamodel.schema import DatabaseSchema
from .datamodel.values import is_null
from .logic.formulas import FOQuery
from .obs.analyze import AnalyzeReport, OpStats
from .obs.metrics import MetricsRegistry
from .obs.trace import Tracer, entry_scope, env_tracer, span
from .semantics.certain import (
    _pool_initializer,
    enumerate_certain_boolean,
    enumerate_possible_boolean,
)

_SEMANTICS = ("owa", "cwa", "wcwa", "prob")


def _engine_names() -> Tuple[str, ...]:
    """The canonical engine tuple (single source: :mod:`repro.engine`)."""
    from .engine import _ENGINES

    return _ENGINES


# ----------------------------------------------------------------------
# Picklable per-world evaluators (for workers= process pools)
# ----------------------------------------------------------------------
def _world_evaluate(query: QueryLike, engine: Optional[str], world: Database) -> Relation:
    return evaluate_query(query, world, engine=engine)


def _world_nonempty(query: QueryLike, engine: Optional[str], world: Database) -> bool:
    if isinstance(query, FOQuery):
        return query.boolean(world)
    return bool(evaluate_query(query, world, engine=engine))


class Cursor:
    """A forward-only row stream over a query answer.

    Iterating yields decoded rows one at a time; :meth:`fetchmany` /
    :meth:`batches` expose the same stream in chunks.  On the SQLite
    engine the rows come straight off the backend cursor in batches of
    ``batch_size`` — the answer :class:`Relation` is never materialized,
    which is what lets a session stream results larger than memory.  On
    the in-memory engines the cursor iterates the evaluated relation
    (documented fallback: those engines materialize by nature).
    """

    def __init__(
        self,
        rows: Iterator[Tuple[Any, ...]],
        batch_size: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._rows = rows
        self.batch_size = batch_size
        self._closed = False
        self._metrics = metrics

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return self._rows

    def __next__(self) -> Tuple[Any, ...]:
        return next(self._rows)

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Up to ``size`` (default ``batch_size``) more rows; ``[]`` at the end."""
        count = size if size is not None else self.batch_size
        out: List[Tuple[Any, ...]] = []
        for row in self._rows:
            out.append(row)
            if len(out) >= count:
                break
        if out and self._metrics is not None:
            self._metrics.count("cursor.batches")
            self._metrics.count("cursor.rows", len(out))
        return out

    def fetchall(self) -> List[Tuple[Any, ...]]:
        """Every remaining row (materializes; defeats streaming on purpose)."""
        return list(self._rows)

    def batches(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Iterate the remaining rows in lists of ``batch_size``."""
        while True:
            batch = self.fetchmany()
            if not batch:
                return
            yield batch

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran (reads on a closed cursor yield ``[]``)."""
        return self._closed

    def close(self) -> None:
        """Release the underlying stream (runs backend teardown if pending).

        Idempotent, and safe at *any* moment — including from a ``finally``
        while a retried backend call is mid-flight: the stream reference is
        detached before teardown runs, so a second close (or a fetch racing
        the close) sees an exhausted cursor instead of a double teardown.
        """
        if self._closed:
            return
        self._closed = True
        rows, self._rows = self._rows, iter(())
        close = getattr(rows, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Query:
    """A lazy handle on ``(session, query, database)``.

    Nothing is evaluated at construction; each method picks a *mode of
    answering* — certain, possible, object, boolean — and runs it with
    the session's engine, semantics and caches.
    """

    __slots__ = (
        "session",
        "expression",
        "_database",
        "_engine",
        "_resilience_verdict",
        "_prob_constraint",
    )

    def __init__(
        self,
        session: "Session",
        expression: QueryLike,
        database: Optional[Database] = None,
        _engine: Optional[str] = None,
    ) -> None:
        self.session = session
        self.expression = expression
        self._database = database
        self._engine = _engine
        #: How the last certain() call degraded, if it did (shown by explain()).
        self._resilience_verdict: Optional[str] = None
        #: Conditioning constraint for confidence() (set by condition_on()).
        self._prob_constraint: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({self.expression!r})"

    # -- plumbing ------------------------------------------------------
    @property
    def database(self) -> Optional[Database]:
        return self._database if self._database is not None else self.session.database

    def _is_sql(self) -> bool:
        return not isinstance(self.expression, (RAExpression, FOQuery))

    def _no_sql(self, what: str) -> None:
        if self._is_sql():
            raise InvalidRequestError(
                f"{what} is not defined for three-valued SQL queries; "
                "use certain() (rewriting) or answer_object() (raw 3VL rows)"
            )

    def _require_database(self) -> Database:
        database = self.database
        if database is None:
            raise InvalidRequestError(
                "no database: pass one to connect() or session.query(..., database=)"
            )
        return database

    def _engine_name(self) -> str:
        return self._engine if self._engine is not None else self.session.engine

    def _evaluator(self) -> Callable[[QueryLike, Database], Relation]:
        return functools.partial(self.session._evaluate, engine=self._engine)

    def _world_evaluator(self) -> Optional[Callable[[Database], Relation]]:
        """A picklable per-world evaluator when workers should fan out."""
        if self.session.workers is None or self.session.workers <= 1:
            return None
        return functools.partial(_world_evaluate, self.expression, self._engine_name())

    # -- modes of answering --------------------------------------------
    def certain(
        self,
        method: str = "auto",
        domain: Optional[Sequence[Any]] = None,
        extra_constants: Optional[int] = None,
        max_extra_facts: int = 1,
        budget: Optional[Budget] = None,
        on_budget: Optional[str] = None,
        resume: Any = None,
    ) -> Relation:
        """Certain answers under the session's semantics.

        ``method='auto'`` uses naive evaluation when the query's fragment
        guarantees it and falls back to world enumeration; ``'naive'`` and
        ``'enumeration'`` force a strategy.  For a three-valued SQL query
        this applies the certain-answer rewriting and returns rows.

        ``budget`` caps the evaluation (falling back to the session's
        default budget); when it expires, ``on_budget`` decides the
        outcome — ``"degrade"`` (default) re-answers with the cheapest
        *sound* approximation and records a verdict readable via
        :meth:`explain`, ``"partial"`` wraps that sound subset in a
        :class:`~repro.resilience.PartialResult`, and ``"raise"``
        propagates :class:`~repro.resilience.BudgetExceeded`.  Soundness
        is non-negotiable: a fallback only runs when its answers are
        guaranteed to be certain answers (see ``docs/robustness.md``).

        ``resume`` continues a budget-interrupted world enumeration from
        its checkpoint instead of restarting: pass the
        :class:`~repro.resilience.PartialResult` of an earlier
        ``on_budget="partial"`` call (or the
        :class:`~repro.resilience.ResumeToken` off a raised
        :class:`BudgetExceeded`).  The token is validated against a
        fingerprint of the enumeration inputs — query, database facts,
        semantics, resolved domain — and the session's condition-kernel
        epoch; a stale or mismatched token raises
        :class:`InvalidRequestError` rather than silently intersecting
        unrelated answers.  A resumed run that completes returns exactly
        the uninterrupted answer.
        """
        with self.session._obs("query.certain"):
            return self._certain(
                method, domain, extra_constants, max_extra_facts, budget, on_budget, resume
            )

    def _certain(
        self,
        method: str,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
        budget: Optional[Budget],
        on_budget: Optional[str],
        resume: Any,
    ) -> Relation:
        if self._is_sql():
            if resume is not None:
                raise InvalidRequestError(
                    "resume= is not defined for three-valued SQL queries"
                )
            return self.session.sql(self.expression, database=self._database, certain=True)
        self._resilience_verdict = None
        budget = budget if budget is not None else self.session.budget
        policy = on_budget if on_budget is not None else self.session.on_budget
        if policy not in ("degrade", "raise", "partial"):
            raise InvalidRequestError(
                f"unknown on_budget policy {policy!r}; "
                "expected 'degrade', 'raise' or 'partial'"
            )
        token = self._validated_resume(resume, method, domain, extra_constants, max_extra_facts)
        run = functools.partial(
            certain_strategy,
            self.expression,
            self._require_database(),
            self._evaluator(),
            semantics=self.session.world_semantics,
            method=method,
            domain=domain,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
            workers=self.session.workers,
            world_evaluator=self._world_evaluator(),
            resume=token,
            executor=self.session._worker_executor(),
        )
        self.session._begin_run()
        try:
            if budget is None:
                return run()
            state = budget.start()
            self.session._register_state(state)
            try:
                with budget_scope(state):
                    return run()
            except BudgetExceeded as error:
                self.session._metrics.count(
                    "budget.expired." + (error.resource or "budget")
                )
                self._stamp_resume(error, domain, extra_constants, max_extra_facts)
                return self._degrade_certain(error, policy)
            finally:
                self.session._unregister_state(state)
        finally:
            self.session._end_run()

    def _validated_resume(
        self,
        resume: Any,
        method: str,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
    ) -> Optional[ResumeToken]:
        """Unwrap and validate a ``resume=`` argument into a :class:`ResumeToken`."""
        if resume is None:
            return None
        token = resume.token if isinstance(resume, PartialResult) else resume
        if token is None:
            raise InvalidRequestError(
                "this PartialResult carries no resume token — the interrupted "
                "evaluation never reached an enumeration checkpoint"
            )
        if not isinstance(token, ResumeToken):
            raise InvalidRequestError(
                "resume= expects a PartialResult or ResumeToken, "
                f"got {type(resume).__name__}"
            )
        if method == "naive":
            raise InvalidRequestError(
                "resume= checkpoints world enumeration; it is not defined for "
                "method='naive'"
            )
        if token.key != self._resume_key(domain, extra_constants, max_extra_facts):
            raise InvalidRequestError(
                "resume token does not match this enumeration: the query, "
                "database, semantics, domain or extra-facts cap changed since "
                "it was minted"
            )
        if token.kernel_epoch is not None and token.kernel_epoch != self.session.kernel.epoch:
            raise InvalidRequestError(
                "resume token predates a condition-kernel eviction/clear on "
                "this session; re-run certain() from the start"
            )
        return token

    def _resume_key(
        self,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
    ) -> str:
        """Fingerprint of everything the world-enumeration order depends on."""
        database = self._require_database()
        resolved = enumeration_domain(self.expression, database, domain, extra_constants)
        digest = hashlib.sha256()

        def feed(part: Any) -> None:
            digest.update(repr(part).encode("utf-8"))
            digest.update(b"\x1f")

        feed(self.expression)
        feed(self.session.semantics)
        feed((extra_constants, max_extra_facts))
        feed([repr(value) for value in resolved])
        # Databases are immutable, so the O(rows) content walk is cached on
        # the instance — consecutive stamps of the same database reuse it.
        feed(database.content_digest())
        return digest.hexdigest()

    def _stamp_resume(
        self,
        error: BudgetExceeded,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
    ) -> None:
        """Bind the strategy-level checkpoint to this query's inputs.

        The enumeration layer mints fingerprint-agnostic tokens (it never
        sees the session); the session layer stamps the input fingerprint
        and kernel epoch here so ``certain(resume=)`` can refuse a token
        replayed against different inputs.
        """
        token = error.resume_token
        if token is None:
            return
        try:
            token.key = self._resume_key(domain, extra_constants, max_extra_facts)
            token.kernel_epoch = self.session.kernel.epoch
        except Exception:
            # A fingerprint that cannot be computed (e.g. the database was
            # swapped mid-flight) makes the token unusable, not the error.
            error.resume_token = None

    def _degrade_certain(self, error: BudgetExceeded, policy: str) -> Any:
        """The degradation ladder: answer soundly, or fail loudly.

        Runs *outside* the expired budget — each rung is polynomial, so
        the overrun is bounded (one naive evaluation, not another
        enumeration).  The rungs, cheapest sound approximation first:

        1. naive evaluation is *exact* for this (query, semantics) —
           possible when the budget died in a forced enumeration;
        2. naive evaluation applies under OWA — its answer is
           ``certain_owa``, a sound lower bound for CWA/WCWA too (those
           worlds are a subset of the OWA worlds and the fragment is
           monotone);
        3. CWA + relational algebra — the polynomial sound approximation
           of :func:`repro.core.sound_evaluation.sound_certain_answers`;
        4. nothing sound exists: ``degrade`` re-raises, ``partial``
           returns an *empty* sound subset (never the unsound prefix of
           the aborted world intersection — that is an over-approximation).
        """
        metrics = self.session._metrics
        resource = error.resource or "budget"
        if policy == "raise":
            metrics.count("degrade.raised")
            self._resilience_verdict = (
                f"budget exceeded ({resource}); on_budget='raise' — no fallback ran"
            )
            raise error
        expression = self.expression
        database = self._require_database()
        semantics = self.session.world_semantics
        relation: Optional[Relation] = None
        quality: Optional[str] = None
        rung: Optional[str] = None
        with span("degrade.decide", resource=resource, policy=policy) as decision:
            exact = naive_evaluation_applies(
                expression, semantics=applicability_semantics(semantics)
            )
            if exact.applies:
                relation = naive_strategy(expression, database, self._evaluator())
                quality = f"exact (naive evaluation applies: {exact.fragment})"
                rung = "exact"
            elif naive_evaluation_applies(expression, semantics="owa").applies:
                relation = naive_strategy(expression, database, self._evaluator())
                quality = (
                    "sound lower bound (naive/OWA answer; "
                    f"certain_owa ⊆ certain_{semantics} for monotone queries)"
                )
                rung = "naive_owa"
            elif semantics == "cwa" and isinstance(expression, RAExpression):
                from .core.sound_evaluation import sound_certain_answers

                relation = sound_certain_answers(expression, database)
                quality = "sound lower bound (polynomial CWA approximation)"
                rung = "sound_cwa"
            if relation is None:
                if policy == "degrade":
                    decision.set(rung="raised")
                    metrics.count("degrade.raised")
                    self._resilience_verdict = (
                        f"budget exceeded ({resource}); no sound fallback exists for "
                        f"this query under {semantics} — raised"
                    )
                    raise error
                # policy == "partial": the only sound subset we can certify
                # without finishing the enumeration is the empty one.
                if isinstance(expression, RAExpression):
                    schema = expression.output_schema(database.schema)
                else:
                    schema = expression.output_schema()
                relation = Relation.empty(schema)
                quality = "empty sound subset (no sound approximation exists)"
                rung = "empty_partial"
            decision.set(rung=rung)
        metrics.count("degrade." + rung)
        verdict = f"budget exceeded ({resource}); degraded to {quality}"
        self._resilience_verdict = verdict
        if policy == "partial":
            return PartialResult(
                relation, verdict, resource=error.resource, token=error.resume_token
            )
        return relation

    def possible(
        self,
        domain: Optional[Sequence[Any]] = None,
        extra_constants: Optional[int] = None,
        max_extra_facts: int = 1,
        budget: Optional[Budget] = None,
    ) -> Relation:
        """Possible answers (union over the enumerated worlds).

        ``budget`` caps the enumeration; on expiry
        :class:`~repro.resilience.BudgetExceeded` is raised — there is no
        degradation ladder here, because a *subset* of the worlds yields a
        subset of the possible answers, which no sound rung can complete.
        """
        with self.session._obs("query.possible"):
            return self._possible(domain, extra_constants, max_extra_facts, budget)

    def _possible(
        self,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
        budget: Optional[Budget],
    ) -> Relation:
        self._no_sql("possible()")
        budget = budget if budget is not None else self.session.budget
        run = functools.partial(
            enumeration_strategy,
            self.expression,
            self._require_database(),
            self._evaluator(),
            semantics=self.session.world_semantics,
            domain=domain,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
            world_evaluator=self._world_evaluator(),
            mode="possible",
        )
        self.session._begin_run()
        try:
            if budget is None:
                return run()
            state = budget.start()
            self.session._register_state(state)
            try:
                with budget_scope(state):
                    return run()
            finally:
                self.session._unregister_state(state)
        finally:
            self.session._end_run()

    def answer_object(self) -> Relation:
        """``certainO``: the naive answer itself, nulls included (eq. (9)).

        For a three-valued SQL query: the raw 3VL row list (bag semantics).
        """
        with self.session._obs("query.answer_object"):
            if self._is_sql():
                return self.session.sql(self.expression, database=self._database)
            database = self.database
            if database is None:
                # Backend-resident data (out-of-core sessions loaded through
                # Session.load_rows): evaluate directly on the backend.
                return self.session._execute_sqlite(self.expression, None)
            return object_strategy(self.expression, database, self._evaluator())

    def knowledge(self):
        """``certainK``: the δ-formula of the naive answer (eq. (10))."""
        self._no_sql("knowledge()")
        # delta() natively supports all three semantics (δ_owa/δ_cwa/δ_wcwa),
        # so the session semantics passes through unchanged.
        with self.session._obs("query.knowledge"):
            return knowledge_strategy(
                self.expression,
                self._require_database(),
                self._evaluator(),
                semantics=self.session.world_semantics,
            )

    def boolean(
        self,
        mode: str = "certain",
        domain: Optional[Sequence[Any]] = None,
        extra_constants: Optional[int] = None,
        max_extra_facts: int = 1,
        budget: Optional[Budget] = None,
    ) -> bool:
        """Certainty (or possibility) of "the answer is non-empty".

        For a Boolean first-order query this is its truth value per world;
        for relational algebra it is non-emptiness of the answer.
        ``budget`` caps the enumeration; on expiry
        :class:`~repro.resilience.BudgetExceeded` is raised (a Boolean
        has no sound middle ground to degrade to).
        """
        with self.session._obs("query.boolean"):
            return self._boolean_entry(
                mode, domain, extra_constants, max_extra_facts, budget
            )

    def _boolean_entry(
        self,
        mode: str,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
        budget: Optional[Budget],
    ) -> bool:
        self._no_sql("boolean()")
        budget = budget if budget is not None else self.session.budget
        self.session._begin_run()
        try:
            if budget is None:
                return self._boolean(mode, domain, extra_constants, max_extra_facts)
            state = budget.start()
            self.session._register_state(state)
            try:
                with budget_scope(state):
                    return self._boolean(mode, domain, extra_constants, max_extra_facts)
            finally:
                self.session._unregister_state(state)
        finally:
            self.session._end_run()

    def _boolean(
        self,
        mode: str,
        domain: Optional[Sequence[Any]],
        extra_constants: Optional[int],
        max_extra_facts: int,
    ) -> bool:
        database = self._require_database()
        expression = self.expression
        if self.session.workers is not None and self.session.workers > 1:
            evaluate: Callable[[Database], bool] = functools.partial(
                _world_nonempty, expression, self._engine_name()
            )
        elif isinstance(expression, FOQuery):
            evaluate = expression.boolean
        else:
            evaluator = self._evaluator()
            evaluate = lambda world: bool(evaluator(expression, world))  # noqa: E731
        domain = enumeration_domain(expression, database, domain, extra_constants)
        if mode == "certain":
            return enumerate_certain_boolean(
                evaluate,
                database,
                semantics=self.session.world_semantics,
                domain=domain,
                extra_constants=extra_constants,
                max_extra_facts=max_extra_facts,
                workers=self.session.workers,
                executor=self.session._worker_executor(),
            )
        if mode == "possible":
            return enumerate_possible_boolean(
                evaluate,
                database,
                semantics=self.session.world_semantics,
                domain=domain,
                extra_constants=extra_constants,
                max_extra_facts=max_extra_facts,
            )
        raise InvalidRequestError(f"unknown mode {mode!r}; expected 'certain' or 'possible'")

    # -- probabilistic answering (semantics="prob") --------------------
    def _require_prob(self, what: str) -> Any:
        self._no_sql(what)
        if self.session.semantics != "prob" or self.session.model is None:
            raise InvalidRequestError(
                f'{what} needs a probabilistic session: '
                "connect(semantics='prob', model=ProbabilityModel(...))"
            )
        if not isinstance(self.expression, RAExpression):
            raise InvalidRequestError(
                f"{what} requires a relational-algebra query; the c-table "
                "engine supplies the lineage conditions"
            )
        return self.session.model

    def condition_on(self, constraint: Any) -> "Query":
        """A new query conditioned on ``constraint`` (Koch–Olteanu).

        ``constraint`` is a :class:`~repro.datamodel.conditional.Condition`
        over the model's nulls; worlds violating it are retracted and the
        remaining measure renormalized, so :meth:`confidence` returns
        ``P(answer | constraint)``.  Chaining ``condition_on`` conjoins
        constraints.  Conditioning on a probability-zero constraint
        raises :class:`~repro.resilience.InvalidRequestError` at
        :meth:`confidence` time.
        """
        from .datamodel.conditional import And, Condition

        self._require_prob("condition_on()")
        if not isinstance(constraint, Condition):
            raise InvalidRequestError(
                "condition_on() expects a Condition over the model's nulls, "
                f"got {type(constraint).__name__}"
            )
        clone = Query(self.session, self.expression, self._database, self._engine)
        if self._prob_constraint is None:
            clone._prob_constraint = constraint
        else:
            clone._prob_constraint = And((self._prob_constraint, constraint)).simplify()
        return clone

    def confidence(
        self,
        limit: Optional[int] = None,
        min_p: float = 0.0,
        budget: Optional[Budget] = None,
        on_budget: Optional[str] = None,
        samples: int = 10_000,
        seed: Optional[int] = None,
    ) -> List[Tuple[Tuple[Any, ...], Any]]:
        """Answer tuples ranked by probability: ``[(row, P(row)), ...]``.

        The c-table engine evaluates the query once, producing each
        answer's lineage condition; :func:`repro.prob.confidence` then
        computes the exact probability of every lineage under the
        session's :class:`~repro.prob.ProbabilityModel` (conditioned on
        the c-table's global condition and any :meth:`condition_on`
        constraint).  Results are sorted by descending probability
        (ties broken deterministically), filtered to ``min_p`` and capped
        at ``limit``.

        ``budget`` caps the evaluation (falling back to the session
        default).  When it expires *during* confidence computation the
        remaining answers degrade to Monte Carlo estimates over
        ``samples`` sampled worlds — their probabilities come back as
        :class:`~repro.resilience.ConfidenceInterval` (flagged
        ``partial``) instead of floats, and :meth:`explain` records the
        verdict; ``on_budget="raise"`` propagates
        :class:`~repro.resilience.BudgetExceeded` instead.  A budget that
        dies before the lineage exists (c-table evaluation itself) always
        raises — with no lineage there is nothing to estimate.
        """
        with self.session._obs("query.confidence"):
            return self._confidence(limit, min_p, budget, on_budget, samples, seed)

    def _confidence(
        self,
        limit: Optional[int],
        min_p: float,
        budget: Optional[Budget],
        on_budget: Optional[str],
        samples: int,
        seed: Optional[int],
    ) -> List[Tuple[Tuple[Any, ...], Any]]:
        from .prob.conditioning import Conditioner
        from .prob.confidence import confidence as exact_confidence
        from .prob.montecarlo import monte_carlo_confidence

        model = self._require_prob("confidence()")
        if limit is not None and limit < 1:
            raise InvalidRequestError(f"limit must be >= 1, got {limit!r}")
        policy = on_budget if on_budget is not None else self.session.on_budget
        if policy not in ("degrade", "raise", "partial"):
            raise InvalidRequestError(
                f"unknown on_budget policy {policy!r}; "
                "expected 'degrade', 'raise' or 'partial'"
            )
        self._resilience_verdict = None
        budget = budget if budget is not None else self.session.budget
        kernel = self.session.kernel
        # Mutable carrier: on a budget overrun the except-branch reads the
        # lineage and the exact prefix computed before the expiry.
        progress: dict = {}

        def run() -> List[Tuple[Tuple[Any, ...], Any]]:
            candidates, constraint = self._prob_lineage(model, kernel)
            progress["candidates"] = candidates
            progress["constraint"] = constraint
            conditioner = (
                Conditioner(constraint, model, kernel)
                if constraint is not None
                else None
            )
            scored: List[Tuple[Tuple[Any, ...], Any]] = []
            progress["scored"] = scored
            for values, lineage in candidates:
                if conditioner is not None:
                    p = conditioner.probability(lineage)
                else:
                    p = exact_confidence(lineage, model, kernel)
                scored.append((values, p))
            return scored

        self.session._begin_run()
        try:
            if budget is None:
                return self._rank_confidence(run(), limit, min_p)
            state = budget.start()
            self.session._register_state(state)
            try:
                with budget_scope(state):
                    return self._rank_confidence(run(), limit, min_p)
            except BudgetExceeded as error:
                resource = error.resource or "budget"
                self.session._metrics.count("budget.expired." + resource)
                if policy == "raise":
                    self._resilience_verdict = (
                        f"budget exceeded ({resource}); on_budget='raise' — "
                        "no estimator ran"
                    )
                    raise
                candidates = progress.get("candidates")
                if candidates is None:
                    # Lineage construction itself blew the budget: no
                    # conditions exist to sample, so degrading is impossible.
                    self._resilience_verdict = (
                        f"budget exceeded ({resource}) during c-table lineage "
                        "construction — nothing to estimate; raised"
                    )
                    raise
                scored = list(progress.get("scored", ()))
                constraint = progress.get("constraint")
                verdict = (
                    f"budget exceeded ({resource}); "
                    f"{len(candidates) - len(scored)} of {len(candidates)} "
                    f"answers degraded to Monte Carlo ({samples} samples)"
                )
                self.session._metrics.count("degrade.monte_carlo")
                # Estimation runs outside the expired budget: a fixed
                # sample count is polynomial, the overrun bounded.
                for index in range(len(scored), len(candidates)):
                    values, lineage = candidates[index]
                    estimate = monte_carlo_confidence(
                        lineage,
                        model,
                        samples=samples,
                        seed=None if seed is None else seed + index,
                        given=constraint,
                        verdict=verdict,
                        resource=error.resource,
                    )
                    scored.append((values, estimate))
                self._resilience_verdict = verdict
                return self._rank_confidence(scored, limit, min_p)
            finally:
                self.session._unregister_state(state)
        finally:
            self.session._end_run()

    def _prob_lineage(
        self, model: Any, kernel: ConditionKernel
    ) -> Tuple[List[Tuple[Tuple[Any, ...], Any]], Optional[Any]]:
        """Ground answer tuples with their lineage conditions, plus the
        effective conditioning constraint (``None`` when trivial).

        The c-table engine supplies one conditional row per derivation;
        rows carrying nulls *in the tuple itself* are grounded by
        enumerating the joint outcomes of those nulls' groups (each
        outcome pins the nulls with equality atoms conjoined onto the
        row's condition).  Derivations of the same ground tuple are
        OR-ed.  Deterministic: candidates come back in first-derivation
        order.
        """
        from .algebra.ctable_algebra import CTableDatabase
        from .datamodel.conditional import FalseCondition, TrueCondition
        from .datamodel.valuation import Valuation
        from .resilience import active_budget

        database = self._require_database()
        model.require(database.nulls())
        ctable = self.session.evaluate_ctable(
            self.expression, CTableDatabase.from_database(database)
        )
        state = active_budget()
        lineages: dict = {}
        order: List[Tuple[Any, ...]] = []

        def add(values: Tuple[Any, ...], lineage: Any) -> None:
            bucket = lineages.get(values)
            if bucket is None:
                lineages[values] = [lineage]
                order.append(values)
            else:
                bucket.append(lineage)

        for row in ctable.rows:
            condition = kernel.intern(row.condition)
            value_nulls = sorted(
                {v for v in row.values if is_null(v)}, key=lambda n: n.name
            )
            if not value_nulls:
                if not isinstance(condition, FalseCondition):
                    add(row.values, condition)
                continue
            # Ground the tuple: one candidate per distinct restriction of
            # the involved groups' joint outcomes to the tuple's nulls.
            seen: set = set()
            for assignment, _probability in model.joint_outcomes(value_nulls):
                if state is not None:
                    state.tick_world()
                restricted = tuple(assignment[n] for n in value_nulls)
                if restricted in seen:
                    continue
                seen.add(restricted)
                valuation = Valuation(dict(zip(value_nulls, restricted)))
                values = valuation.apply_row(row.values)
                pins = [kernel.eq(n, v) for n, v in zip(value_nulls, restricted)]
                lineage = kernel.conjunction([condition, *pins])
                if not isinstance(lineage, FalseCondition):
                    add(values, lineage)

        candidates: List[Tuple[Tuple[Any, ...], Any]] = []
        for values in order:
            bucket = lineages[values]
            lineage = bucket[0] if len(bucket) == 1 else kernel.disjunction(bucket)
            candidates.append((values, lineage))
        self.session._metrics.count("prob.confidence.candidates", len(candidates))

        parts = []
        global_condition = kernel.intern(ctable.global_condition)
        if not isinstance(global_condition, TrueCondition):
            parts.append(global_condition)
        if self._prob_constraint is not None:
            constraint = kernel.intern(self._prob_constraint)
            if not isinstance(constraint, TrueCondition):
                parts.append(constraint)
        if not parts:
            return candidates, None
        effective = parts[0] if len(parts) == 1 else kernel.conjunction(parts)
        return candidates, effective

    @staticmethod
    def _rank_confidence(
        scored: List[Tuple[Tuple[Any, ...], Any]],
        limit: Optional[int],
        min_p: float,
    ) -> List[Tuple[Tuple[Any, ...], Any]]:
        # Zero-probability derivations (a lineage the model rules out) are
        # not answers in any retained world; they never surface.
        kept = [
            (values, p)
            for values, p in scored
            if float(p) > 0.0 and float(p) >= min_p
        ]
        kept.sort(key=lambda item: (-float(item[1]), tuple(str(v) for v in item[0])))
        return kept if limit is None else kept[:limit]

    # -- introspection -------------------------------------------------
    def explain(self, analyze: bool = False) -> str:
        """A unified, human-readable account of how this query would run.

        Sections: the certain-answer method ``certain()`` would pick, the
        optimized logical plan, the lowered physical operator tree, and —
        when the session's engine is ``"sqlite"`` and the plan is inside
        the SQL fragment — the compiled SQL text.  For a three-valued SQL
        query: the transliterated SQLite statement.

        ``analyze=True`` additionally *executes* the plan (once) and
        appends per-operator row counts and wall time — see
        :meth:`analyze` for the structured form and its caveats.
        """
        if self._is_sql():
            from .sqlnulls.backend import compile_select

            database = self._require_database()
            sql, params = compile_select(database, self.expression)
            return (
                f"query: {self.expression!r}\n"
                "engine: sqlnulls (three-valued logic)\n"
                f"sql:\n  {sql}\n  params: {params!r}"
            )
        text = self.session._explain(self.expression, self.database, self._engine_name())
        if analyze:
            text += "\n" + self.analyze().render()
        if self._resilience_verdict is not None:
            text += f"\nresilience: {self._resilience_verdict}"
        return text

    def analyze(self) -> "AnalyzeReport":
        """Execute the plan once and return per-operator statistics.

        On the in-memory engines the physical operator tree runs wrapped
        in probes, so every operator reports its output cardinality
        (``rows``), wall time, call count and memoization hits; shared
        subplans (CSE) appear once, with their reuse showing up as
        ``memo_hits``.  On ``engine="sqlite"`` there is no Python operator
        tree — the report carries per-statement timing and the row count
        of every temp-table spill instead; plans outside the SQL fragment
        (and spilling plans on a frozen backend) fall back to the
        in-memory analyze with a note saying so.

        The rows executed are the *naive* answer (what
        :meth:`answer_object` returns) — certainty modes layer world
        enumeration on top of per-world plans, which is what the
        ``world.evaluate`` spans of the tracer are for.  Caveats are in
        ``docs/observability.md#analyze``.
        """
        import time as _time

        self._no_sql("analyze()")
        if not isinstance(self.expression, RAExpression):
            raise InvalidRequestError(
                "analyze() requires a relational-algebra query; first-order "
                "queries are evaluated by satisfaction, without a plan"
            )
        database = self._require_database()
        engine = self._engine_name()
        with self.session._obs("query.analyze"):
            if engine == "sqlite":
                report = self.session._analyze_sqlite(self.expression, database)
                if report is not None:
                    return report
            notes: List[str] = []
            if engine == "sqlite":
                notes.append(
                    "plan outside the SQL fragment (or not runnable on this "
                    "backend); analyzed on the in-memory plan engine instead"
                )
            elif engine == "interpreter":
                notes.append(
                    "interpreter engine has no operator tree; analyzed on the "
                    "plan engine (same logical plan, different executor)"
                )
            t0 = _time.perf_counter()
            relation, root = self.session.plan_cache.analyze(self.expression, database)
            seconds = _time.perf_counter() - t0
            return AnalyzeReport(
                "plan", len(relation), seconds, root=root, notes=notes
            )

    # -- streaming -----------------------------------------------------
    def cursor(self, batch_size: int = 1024, certain: bool = False) -> Cursor:
        """Stream the answer rows instead of materializing a :class:`Relation`.

        On ``engine="sqlite"`` rows are pulled from the backend in batches
        of ``batch_size`` and decoded on the fly, so answers larger than
        memory can be consumed incrementally.  ``certain=True`` streams
        the certain answers when naive evaluation guarantees them (rows
        containing nulls are dropped in flight); when the fragment offers
        no guarantee it falls back to materializing ``certain()``.
        """
        if batch_size < 1:
            raise InvalidRequestError(f"batch_size must be >= 1, got {batch_size!r}")
        # The entry scope covers cursor *construction* (planning, backend
        # statement start); consumption is counted per batch by the Cursor.
        metrics = self.session._metrics
        with self.session._obs("query.cursor"):
            if self._is_sql():
                rows = self.session.sql(
                    self.expression, database=self._database, certain=certain
                )
                return Cursor(iter(rows), batch_size, metrics=metrics)
            expression = self.expression
            if certain and not naive_evaluation_applies(
                expression,
                semantics=applicability_semantics(self.session.world_semantics),
            ):
                rows: Iterable[Tuple[Any, ...]] = iter(self._certain(
                    "auto", None, None, 1, None, None, None
                ).rows)
                return Cursor(iter(rows), batch_size, metrics=metrics)
            stream: Iterator[Tuple[Any, ...]]
            if self._engine_name() == "sqlite" and isinstance(expression, RAExpression):
                stream = self.session._stream_sqlite(
                    expression, self.database, batch_size
                )
            else:
                stream = iter(self.answer_object().rows)
            if certain:
                stream = (row for row in stream if not any(is_null(v) for v in row))
            return Cursor(stream, batch_size, metrics=metrics)


class Session:
    """One caller's private evaluation context over incomplete databases.

    Create through :func:`repro.connect`.  All evaluation state — plan
    cache, condition kernel, backend connections — is owned by the
    session; see the module docstring for the full story.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        engine: str = "plan",
        semantics: str = "cwa",
        model: Optional[Any] = None,
        workers: Optional[int] = None,
        backend_path: str = ":memory:",
        kernel_watermark: Optional[int] = None,
        kernel_memo_limit: Optional[int] = None,
        budget: Optional[Budget] = None,
        on_budget: str = "degrade",
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: bool = True,
        _dynamic_engine: bool = False,
        _plan_cache: Optional[Any] = None,
        _kernel: Optional[ConditionKernel] = None,
        _legacy_backends: bool = False,
    ) -> None:
        from .engine.planner import PlanCache

        if not _dynamic_engine and engine not in _engine_names():
            raise InvalidRequestError(
                f"unknown engine {engine!r}; expected one of {_engine_names()}"
            )
        if semantics not in _SEMANTICS:
            raise InvalidRequestError(
                f"unknown semantics {semantics!r}; expected one of {_SEMANTICS}"
            )
        if on_budget not in ("degrade", "raise", "partial"):
            raise InvalidRequestError(
                f"unknown on_budget policy {on_budget!r}; "
                "expected 'degrade', 'raise' or 'partial'"
            )
        if database is not None and not isinstance(database, Database):
            raise TypeError(
                f"connect() expects a Database (or None), got {type(database).__name__}"
            )
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise TypeError(
                f"retry_policy must be a RetryPolicy, got {type(retry_policy).__name__}"
            )
        if semantics == "prob":
            from .prob import ProbabilityModel

            if model is None:
                raise InvalidRequestError(
                    'semantics="prob" needs a probability model: '
                    "connect(semantics='prob', model=ProbabilityModel(...))"
                )
            if not isinstance(model, ProbabilityModel):
                raise TypeError(
                    f"model must be a ProbabilityModel, got {type(model).__name__}"
                )
        elif model is not None:
            raise InvalidRequestError(
                f'model= is only meaningful with semantics="prob", '
                f"not {semantics!r}"
            )
        self.database = database
        self.model = model
        self._engine = None if _dynamic_engine else engine
        self.semantics = semantics
        self.workers = workers
        self.backend_path = backend_path
        self.budget = budget
        self.on_budget = on_budget
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        # Observability: the registry is created before the plan cache so
        # the cache can record its hits/misses into it; the tracer defaults
        # to the REPRO_TRACE process tracer (None — tracing off — without
        # the environment variable).
        self._metrics = MetricsRegistry(enabled=metrics)
        self._tracer = tracer if tracer is not None else env_tracer()
        self.kernel: ConditionKernel = (
            _kernel
            if _kernel is not None
            else ConditionKernel(watermark=kernel_watermark, memo_limit=kernel_memo_limit)
        )
        self.plan_cache = (
            _plan_cache
            if _plan_cache is not None
            else PlanCache(kernel=self.kernel, metrics=self._metrics)
        )
        # Legacy mode (the process-default session): route engine="sqlite"
        # through the historical per-Database backend cache so shimmed old
        # code keeps its exact behavior.  Real sessions own their handles.
        self._legacy_backends = _legacy_backends
        self._backend: Optional[Any] = None          # sentinel-mode SQLiteBackend
        self._backend_database: Optional[Database] = None
        self._sql3vl_backend: Optional[Any] = None   # three-valued SQLiteBackend
        self._sql3vl_database: Optional[Database] = None
        self._backend_recovery_warned = False
        self._lock = threading.RLock()
        # Armed budget states of in-flight queries, for Session.cancel().
        # Guarded by a dedicated lock (never the RLock: cancel() must not
        # block behind a query thread holding the backend lock).
        self._active_states: List[BudgetState] = []
        self._states_lock = threading.Lock()
        # The session-held process pool for workers= fan-outs, built
        # lazily on first use and reused across certain()/boolean() calls
        # (rebuilding a pool per call costs a fork per worker per query).
        # The shared multiprocessing.Event is planted in every child via
        # the pool initializer; Session.cancel() sets it, and the chunk
        # loops check it per world, so cancel latency is bounded by the
        # check cadence instead of the chunk runtime.
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._cancel_event: Optional[Any] = None
        # In-flight run counter: the cancel event is cleared when a run
        # begins on an idle session, so one cancel() cannot poison the
        # next, unrelated query.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._frozen = False
        self._closed = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The engine queries run on (``"plan"``, ``"interpreter"``, ``"sqlite"``)."""
        if self._engine is not None:
            return self._engine
        # The process-default session tracks the legacy process-wide
        # default so deprecated entry points behave exactly as before.
        from . import engine as _engine_module

        return _engine_module.get_default_engine()

    @property
    def world_semantics(self) -> str:
        """The possible-world semantics evaluation strategies quantify over.

        ``semantics="prob"`` is a *probability layer on top of* the
        closed-world possible-world space: a pc-table's worlds are the
        valuations of its nulls (no open-world fact invention), so
        certain/possible/boolean modes on a prob session evaluate under
        CWA while ``confidence()`` adds the measure.
        """
        return "cwa" if self.semantics == "prob" else self.semantics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        db = "None" if self.database is None else f"<{len(self.database)} facts>"
        return (
            f"Session(database={db}, engine={self.engine!r}, "
            f"semantics={self.semantics!r}, backend_path={self.backend_path!r})"
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Optional[Tracer]:
        """The session's tracer, or ``None`` when tracing is off."""
        return self._tracer

    def _obs(self, name: str) -> Any:
        """The entry scope arming this session's tracer + registry as ambient.

        Every public ``Query`` mode opens one of these; when the tracer is
        ``None`` and metrics are disabled it is a shared no-op object, so
        the disabled path costs two attribute reads and a branch.
        """
        return entry_scope(self._tracer, self._metrics, name)

    def metrics(self) -> dict:
        """A snapshot of this session's metrics.

        Returns ``{"counters", "gauges", "histograms", "kernel",
        "plan_cache"}`` — the registry's aggregated counters/gauges/
        histograms (see ``docs/observability.md`` for the name table)
        plus the kernel and plan-cache stat blocks of
        :meth:`kernel_stats` / :meth:`plan_cache_stats`.  Safe to call
        from any thread, including on a frozen session mid-traffic: the
        registry records into per-thread shards and this aggregates them
        without stopping writers.
        """
        snapshot = self._metrics.snapshot()
        snapshot["kernel"] = self.kernel_stats()
        snapshot["plan_cache"] = self.plan_cache_stats()
        return snapshot

    def kernel_stats(self) -> dict:
        """The condition kernel's table sizes and lifecycle counters."""
        stats = self.kernel.stats()
        stats["auto_evictions"] = self.kernel.auto_evictions
        stats["memo_trims"] = self.kernel.memo_trims
        stats["epoch"] = self.kernel.epoch
        return stats

    def plan_cache_stats(self) -> dict:
        """The plan cache's shape and hit/miss counters."""
        return self.plan_cache.stats()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: Any, database: Optional[Database] = None) -> Query:
        """A lazy :class:`Query` handle for an RA, first-order or SQL query.

        ``query`` is an :class:`RAExpression`, an :class:`FOQuery`, a
        :class:`~repro.sqlnulls.SelectQuery`, or SQL text (parsed with
        :func:`repro.sqlnulls.parse_sql`).  SQL queries run under
        three-valued logic — ``certain()`` applies the certain-answer
        rewriting, ``possible()``/``boolean()`` are not defined for them.
        ``database`` overrides the session database for this query only.
        """
        if isinstance(query, str):
            from .sqlnulls import parse_sql

            query = parse_sql(query)
        if not isinstance(query, (RAExpression, FOQuery)):
            from .sqlnulls import SelectQuery

            if not isinstance(query, SelectQuery):
                raise TypeError(
                    "query() expects an RAExpression, FOQuery, SelectQuery or "
                    f"SQL text, got {type(query).__name__}"
                )
        return Query(self, query, database)

    def sql(
        self,
        query: Any,
        database: Optional[Database] = None,
        certain: bool = False,
    ) -> List[Tuple[Any, ...]]:
        """Run a three-valued-logic SQL query (``repro.sqlnulls``).

        ``query`` is a :class:`~repro.sqlnulls.SelectQuery` or SQL text.
        On ``engine="sqlite"`` the query is transliterated onto a real
        SQLite database owned by this session (marked nulls become SQL
        ``NULL``); otherwise the by-the-book Python 3VL engine runs it.
        ``certain=True`` first applies the certain-answer rewriting
        (``IS NOT NULL`` guards) of :mod:`repro.sqlnulls.rewriting`.
        """
        from .sqlnulls import parse_sql
        from .sqlnulls.engine import SQLEngine
        from .sqlnulls.rewriting import certain_answer_rewriting

        if isinstance(query, str):
            query = parse_sql(query)
        if database is None:
            database = self.database
        if database is None:
            raise InvalidRequestError(
                "no database: pass one to connect() or session.sql(..., database=)"
            )
        if certain:
            query = certain_answer_rewriting(query, database)
        if self.engine == "sqlite":
            return self._sql3vl_execute(query, database)
        return SQLEngine(database).execute(query)

    def evaluate_ctable(self, expression: RAExpression, database: Any):
        """Evaluate an RA expression over a c-table database.

        Runs the planned conditional-row path with *this session's* plan
        cache and condition kernel (``engine="interpreter"`` sessions use
        the seed tree-walking algebra instead, mirroring
        :func:`repro.algebra.ctable_evaluate`).
        """
        from .algebra.ctable_algebra import _evaluate as _interpret_ctable
        from .engine.ctable import execute_ctable

        if self.engine == "interpreter":
            return _interpret_ctable(expression, database, database.schema)
        return execute_ctable(
            expression, database, plan_cache=self.plan_cache, kernel=self.kernel
        )

    # ------------------------------------------------------------------
    # the session-held worker pool
    # ------------------------------------------------------------------
    def _ensure_cancel_event(self) -> Any:
        """The shared cancel flag, created once (before any pool inherits it)."""
        event = self._cancel_event
        if event is None:
            event = multiprocessing.Event()
            self._cancel_event = event
        return event

    def _worker_executor(self) -> Optional[ProcessPoolExecutor]:
        """The session's warm process pool, or ``None`` when workers <= 1.

        Built lazily, reused across every ``certain()``/``boolean()``
        fan-out of this session, shut down in :meth:`close`.  A pool whose
        children died (``BrokenProcessPool``) is replaced on the next
        call; the evaluation that hit the breakage has already degraded to
        sequential on its own.
        """
        if self.workers is None or self.workers <= 1:
            return None
        with self._executor_lock:
            executor = self._executor
            if executor is not None and getattr(executor, "_broken", False):
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
                self._metrics.count("workers.pool_rebuilds")
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_initializer,
                    initargs=(self._ensure_cancel_event(),),
                )
                self._executor = executor
            return executor

    def _begin_run(self) -> None:
        with self._inflight_lock:
            if self._inflight == 0:
                event = self._cancel_event
                if event is not None:
                    event.clear()
            self._inflight += 1

    def _end_run(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def _register_state(self, state: BudgetState) -> None:
        with self._states_lock:
            self._active_states.append(state)

    def _unregister_state(self, state: BudgetState) -> None:
        with self._states_lock:
            try:
                self._active_states.remove(state)
            except ValueError:  # pragma: no cover - double unregister
                pass

    def cancel(self) -> None:
        """Cancel every in-flight evaluation of this session, from any thread.

        Three levers, pulled together:

        * every *armed budget* of an in-flight ``certain()`` /
          ``possible()`` / ``boolean()`` call is flagged, so the next
          cooperative check point (a world tick, a c-table operator row,
          a backend progress-handler callback) raises
          :class:`~repro.resilience.QueryCancelled` in the query's thread;
        * each live backend connection gets a thread-safe
          ``interrupt()``, aborting even a single long-running SQL
          statement mid-flight;
        * the shared cancel event of the session's ``workers=`` pool is
          set, so in-flight *children* raise ``QueryCancelled`` at their
          next per-world check instead of finishing their chunk — cancel
          latency is bounded by the check cadence, not the chunk runtime.

        ``QueryCancelled`` is deliberately not a ``BudgetExceeded``: a
        cancelled query never enters the degradation ladder — it stops.
        Queries running without a budget are interrupted on the backend
        but, by the documented "no budget means no overhead" contract,
        have no cooperative check points in the in-memory engines.
        Idempotent; a session with nothing running is a no-op.
        """
        with self._states_lock:
            states = list(self._active_states)
        for state in states:
            state.cancel()
        event = self._cancel_event
        if event is not None:
            event.set()
        for backend in (self._backend, self._sql3vl_backend):
            if backend is not None:
                try:
                    backend.interrupt()
                except Exception:  # noqa: BLE001 - cancel must never throw
                    pass

    # ------------------------------------------------------------------
    # evaluation plumbing
    # ------------------------------------------------------------------
    def _evaluate(
        self, query: QueryLike, database: Database, engine: Optional[str] = None
    ) -> Relation:
        """Evaluate ``query`` on ``database`` with this session's state."""
        if self._closed:
            raise SessionClosedError("session is closed")
        if isinstance(query, FOQuery):
            return query.evaluate(database)
        mode = engine if engine is not None else self.engine
        if mode == "plan":
            return self.plan_cache.execute(query, database)
        if mode == "interpreter":
            return query._interpret(database)
        if mode == "sqlite":
            return self._execute_sqlite(query, database)
        raise InvalidRequestError(
            f"unknown engine {mode!r}; expected one of {_engine_names()}"
        )

    def _recover_backend_failure(
        self, error: BaseException, database: Optional[Database]
    ) -> Database:
        """Decide the fate of an *environmental* backend failure.

        With a :class:`Database` resident in memory the evaluation
        recovers on the in-memory engine (the semantics oracle), warning
        once per session; backend-resident (out-of-core) sessions have
        nothing to recover onto and get :class:`BackendUnavailable`.
        """
        if database is None:
            raise BackendUnavailable(
                f"sqlite backend failed and no in-memory database is resident "
                f"to recover onto: {error}"
            ) from error
        if not self._backend_recovery_warned:
            self._backend_recovery_warned = True
            warnings.warn(
                f"sqlite backend failed ({error}); this session recovered via "
                "the in-memory engine and will keep recovering silently",
                BackendRecoveryWarning,
                stacklevel=4,
            )
        return database

    def _execute_sqlite(
        self, expression: RAExpression, database: Optional[Database]
    ) -> Relation:
        import sqlite3

        from .backends.base import BackendError
        from .backends import sqlite as _sqlite_module

        if self._legacy_backends and database is not None:
            return _sqlite_module.execute(expression, database)
        if (
            self._frozen
            and database is not None
            and database is not self._backend_database
        ):
            # A frozen session only holds its one loaded database; other
            # instances — above all the possible worlds enumerated by
            # certain()/boolean() — run on the in-memory engine, whose
            # frozen plan cache is already thread-safe.  (Loading every
            # world into SQLite would be a refill per world anyway.)
            return self.plan_cache.execute(expression, database)
        backend = self._ensure_backend(database)
        try:
            # Retries live here (not inside the backend) so wrapper-level
            # injected faults exercise the same path real SQLITE_BUSY does.
            return with_retries(
                functools.partial(
                    backend.evaluate, expression, plan_cache=self.plan_cache
                ),
                policy=self.retry_policy,
            )
        except BackendError:
            if database is None:
                raise
            # Outside the SQL fragment (or a compile-time failure): the
            # quiet, by-design fallback — no warning, the backend is fine.
            self._metrics.count("backend.fallbacks.fragment")
            return self.plan_cache.execute(expression, database)
        except sqlite3.Error as error:
            if isinstance(error, sqlite3.OperationalError) and _sqlite_module._is_engine_limit(error):
                if database is None:
                    raise
                self._metrics.count("backend.fallbacks.engine_limit")
                return self.plan_cache.execute(expression, database)
            if _sqlite_module.is_runtime_failure(error):
                self._metrics.count("backend.recoveries")
                return self.plan_cache.execute(
                    expression, self._recover_backend_failure(error, database)
                )
            raise

    def _stream_sqlite(
        self,
        expression: RAExpression,
        database: Optional[Database],
        batch_size: int,
    ) -> Iterator[Tuple[Any, ...]]:
        from .backends.base import BackendError

        import sqlite3

        from .backends import sqlite as _sqlite_module

        if (
            self._frozen
            and database is not None
            and database is not self._backend_database
        ):
            return iter(self.plan_cache.execute(expression, database).rows)
        # Legacy-mode sessions stream through a session handle too: the
        # per-Database cache of the old path has no streaming API.
        backend = self._ensure_backend(database)

        def _start() -> Tuple[Iterator[Tuple[Any, ...]], Any]:
            # A retry re-creates the generator: the faulted one already ran
            # its teardown when the first next() raised.
            stream = backend.execute_cursor(
                expression, batch_size=batch_size, plan_cache=self.plan_cache
            )
            return stream, next(stream, _SENTINEL)

        try:
            plan_iter, first = with_retries(_start, policy=self.retry_policy)
        except BackendError:
            if database is None:
                raise
            # Outside the SQL fragment: fall back to the in-memory engine
            # (materializes — the fragment has no streaming path).
            self._metrics.count("backend.fallbacks.fragment")
            return iter(self.plan_cache.execute(expression, database).rows)
        except sqlite3.Error as error:
            if isinstance(error, sqlite3.OperationalError) and _sqlite_module._is_engine_limit(error):
                if database is None:
                    raise
                self._metrics.count("backend.fallbacks.engine_limit")
                return iter(self.plan_cache.execute(expression, database).rows)
            if _sqlite_module.is_runtime_failure(error):
                self._metrics.count("backend.recoveries")
                return iter(
                    self.plan_cache.execute(
                        expression, self._recover_backend_failure(error, database)
                    ).rows
                )
            raise
        if first is _SENTINEL:
            return iter(())
        return _stream_rest(first, plan_iter)

    def _analyze_sqlite(
        self, expression: RAExpression, database: Optional[Database]
    ) -> Optional[AnalyzeReport]:
        """The SQLite side of :meth:`Query.analyze`, or ``None`` to fall back.

        Runs the compiled plan statement by statement, timing each one and
        counting the rows of every temp-table spill (the out-of-core
        intermediates).  ``None`` means the plan cannot run here — outside
        the SQL fragment, or a spilling plan on a frozen backend — and the
        caller should analyze on the in-memory engine instead.
        """
        import re
        import sqlite3
        import time as _time

        from .backends.base import BackendError

        if (
            self._frozen
            and database is not None
            and database is not self._backend_database
        ):
            return None
        try:
            backend = self._ensure_backend(database)
            plan, out_schema = backend._plan_for(expression, self.plan_cache)
        except (BackendError, sqlite3.Error):
            return None
        statements: List[dict] = []
        spills: dict = {}
        cursor = backend._connection.cursor()
        t0 = _time.perf_counter()
        try:
            try:
                for statement, params in plan.setup:
                    s0 = _time.perf_counter()
                    cursor.execute(statement, params)
                    elapsed = _time.perf_counter() - s0
                    statements.append(
                        {
                            "kind": "setup",
                            "sql": " ".join(statement.split()),
                            "seconds": elapsed,
                        }
                    )
                    match = re.match(
                        r"CREATE TEMP(?:ORARY)? TABLE (\"[^\"]+\"|\S+)", statement
                    )
                    if match is not None:
                        name = match.group(1)
                        count = cursor.execute(
                            f"SELECT COUNT(*) FROM {name}"
                        ).fetchone()[0]
                        spills[name.strip('"')] = count
                s0 = _time.perf_counter()
                rows = cursor.execute(plan.query, plan.params).fetchall()
                statements.append(
                    {
                        "kind": "query",
                        "sql": " ".join(plan.query.split()),
                        "seconds": _time.perf_counter() - s0,
                    }
                )
            except sqlite3.Error:
                return None
        finally:
            backend._teardown(cursor, plan)
        seconds = _time.perf_counter() - t0
        decode_row = backend.codec.decode_row
        distinct = frozenset(decode_row(row) for row in rows)
        return AnalyzeReport(
            "sqlite", len(distinct), seconds, statements=statements, spills=spills
        )

    def _ensure_backend(self, database: Optional[Database]) -> Any:
        """The session's sentinel-mode backend, loaded with ``database``.

        Keeps one live handle: a new database with the same schema refills
        the existing tables (persistent backend — indexes and the
        connection survive); a different schema rebuilds the DDL on the
        same connection.
        """
        from .backends.sqlite import SQLiteBackend

        if self._closed:
            raise SessionClosedError("session is closed")
        if self._frozen:
            # Lock-free fast path: a frozen session's backend never changes
            # again, so concurrent readers take no lock at all.
            backend = self._backend
            if backend is None:
                raise InvalidRequestError(
                    "frozen session has no backend; freeze() a session after "
                    "its backend is loaded (engine='sqlite' with a database)"
                )
            if database is not None and database is not self._backend_database:
                raise InvalidRequestError(
                    "frozen session cannot switch databases; open a mutable "
                    "session for per-query database overrides"
                )
            return backend
        with self._lock:
            if self._backend is None:
                self._backend = SQLiteBackend(self.backend_path)
                if database is not None:
                    self._backend.load_database(database)
                    self._backend_database = database
            elif database is not None and database is not self._backend_database:
                # Crash-consistent switch (single transaction inside the
                # backend): a failed refill leaves the *old* database
                # loaded, and `_backend_database` deliberately only moves
                # forward after it succeeds.
                with_retries(
                    functools.partial(self._backend.replace_database, database),
                    policy=self.retry_policy,
                )
                self._backend_database = database
            return self._backend

    def _sql3vl_execute(self, query: Any, database: Database) -> List[Tuple[Any, ...]]:
        from .backends.encoding import SQLNullCodec
        from .backends.sqlite import SQLiteBackend
        from .sqlnulls.backend import compile_select
        from .sqlnulls.engine import SQLError

        if self._frozen:
            backend = self._sql3vl_backend
            if backend is None or database is not self._sql3vl_database:
                raise InvalidRequestError(
                    "frozen session has no three-valued backend for this "
                    "database; run the sql() query once before freeze(), or "
                    "use a mutable session"
                )
            sql, params = compile_select(database, query)
            codec = backend.codec
            try:
                cursor = backend.connection.execute(sql, params)
                return [codec.decode_row(row) for row in cursor]
            except Exception as error:
                if isinstance(error, SQLError):
                    raise
                raise SQLError(f"sqlite execution failed: {error}") from error
        with self._lock:
            if self._closed:
                raise SessionClosedError("session is closed")
            if self._sql3vl_backend is None:
                path = self.backend_path
                if path != ":memory:":
                    # A second store on disk: never share the sentinel file.
                    path = path + ".3vl"
                self._sql3vl_backend = SQLiteBackend(path, codec=SQLNullCodec())
                self._sql3vl_backend.load_database(database)
                self._sql3vl_database = database
            elif database is not self._sql3vl_database:
                with_retries(
                    functools.partial(self._sql3vl_backend.replace_database, database),
                    policy=self.retry_policy,
                )
                self._sql3vl_database = database
            backend = self._sql3vl_backend
        sql, params = compile_select(database, query)
        codec = backend.codec
        try:
            cursor = backend.connection.execute(sql, params)
            return [codec.decode_row(row) for row in cursor]
        except Exception as error:
            if isinstance(error, SQLError):
                raise
            raise SQLError(f"sqlite execution failed: {error}") from error

    # ------------------------------------------------------------------
    # out-of-core loading (backend-resident databases)
    # ------------------------------------------------------------------
    def create_schema(self, schema: DatabaseSchema) -> None:
        """Declare the schema of a backend-resident database.

        For instances too large to exist as a :class:`Database` object:
        declare the schema, stream rows in with :meth:`load_rows`, then
        query with ``session.query(q)`` / ``.cursor()`` — the backend's
        ``COUNT(*)`` statistics replace the in-memory cardinalities.
        Requires ``engine="sqlite"``.
        """
        if self.engine != "sqlite":
            raise InvalidRequestError(
                f'backend-resident loading requires engine="sqlite", '
                f"not {self.engine!r}"
            )
        if self._frozen:
            raise InvalidRequestError("cannot create a schema on a frozen session")
        self._ensure_backend(None).create_schema(schema)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Stream rows into relation ``name`` of the backend-resident database."""
        if self._frozen:
            raise InvalidRequestError("cannot load rows into a frozen session")
        return self._ensure_backend(None).load_rows(name, rows)

    # ------------------------------------------------------------------
    # explain
    # ------------------------------------------------------------------
    def _explain(
        self, expression: QueryLike, database: Optional[Database], engine: str
    ) -> str:
        from .core.answers import explain_method
        from .engine.logical import explain as explain_logical

        lines: List[str] = [f"query: {expression!r}"]
        lines.append(f"engine: {engine}; semantics: {self.semantics}")
        verdict = explain_method(expression, semantics=self.world_semantics)
        certainty = "naive evaluation" if verdict.applies else "world enumeration"
        lines.append(
            f"certain(): {certainty} — {verdict.reason} (fragment: {verdict.fragment})"
        )
        if self.semantics == "prob" and self.model is not None:
            shape = self.model.stats()
            lines.append(
                "confidence(): exact decomposition over the c-table lineage "
                f"({shape['nulls']} modeled nulls, {shape['groups']} independent "
                f"groups, {shape['blocks']} exclusive blocks); budget overruns "
                "degrade to a Monte Carlo ConfidenceInterval"
            )
        if not isinstance(expression, RAExpression):
            lines.append("plan: n/a (first-order query, evaluated by satisfaction)")
            return "\n".join(lines)
        schema = database.schema if database is not None else self._backend_schema()
        if schema is None:
            lines.append("plan: n/a (no database attached)")
            return "\n".join(lines)
        logical = self.plan_cache.compile(expression, schema)
        lines.append("logical plan:")
        lines.extend("  " + line for line in explain_logical(logical).splitlines())
        if database is not None:
            from .engine.planner import lower

            lines.append("physical plan:")
            lines.extend(
                "  " + line
                for line in _render_physical(lower(logical, database)).splitlines()
            )
        if engine == "sqlite":
            lines.append("sql:")
            lines.extend("  " + line for line in self._explain_sql(logical, database))
        return "\n".join(lines)

    def _backend_schema(self) -> Optional[DatabaseSchema]:
        backend = self._backend
        return backend._schema if backend is not None else None

    def _explain_sql(
        self, logical: Any, database: Optional[Database]
    ) -> List[str]:
        from .backends.base import UnsupportedPlanError
        from .backends.compiler import SQLCompiler
        from .backends.encoding import SentinelCodec
        from .backends.sqlite import _BackendStats

        if database is not None:
            stats: Any = database
        elif self._backend is not None:
            stats = _BackendStats(self._backend)
        else:
            return ["n/a (no database attached)"]
        try:
            plan = SQLCompiler(stats, SentinelCodec()).compile(logical)
        except UnsupportedPlanError as error:
            return [f"n/a (outside the SQL fragment: {error})"]
        lines = [statement for statement, _ in plan.setup]
        lines.append(plan.query)
        return [line for chunk in lines for line in chunk.splitlines()]

    # ------------------------------------------------------------------
    # freezing (read-only, thread-shareable sessions)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has made this session read-only."""
        return self._frozen

    def freeze(self, warm: Iterable[Any] = ()) -> "Session":
        """Make this session read-only and shareable across threads.

        Runs each query in ``warm`` once (through ``certain()``) to
        populate the plan cache, condition kernel and compiled-SQL plans,
        then freezes all three plus the backend handle: after this call
        nothing reachable from the session is mutated by query execution,
        so any number of threads can evaluate concurrently *without
        locks* — the property the :mod:`repro.serve` pool relies on to
        let its size exceed the number of backend handles.

        A frozen session still answers ``certain()`` / ``possible()`` /
        ``boolean()`` / ``answer_object()`` / ``cursor()`` on its one
        database, and :meth:`cancel` still works (budget flags, backend
        ``interrupt()`` and the workers cancel event are all thread-safe
        by construction).  What it refuses: switching databases, loading
        rows, ``clear_caches()``.  Queries the warm set did not cover stay
        correct — they recompile per call without populating any cache.
        Freezing is one-way; returns ``self`` for chaining.
        """
        with self._lock:
            if self._closed:
                raise SessionClosedError("session is closed")
            if self._frozen:
                return self
            for query in warm:
                # Warming must populate the caches the serving tier will
                # read: on a prob session that is the lineage plans and
                # the kernel's confidence memo, reached via confidence().
                if self.semantics == "prob":
                    self.query(query).confidence()
                else:
                    self.query(query).certain()
            if self.engine == "sqlite" and self.database is not None:
                self._ensure_backend(self.database)
            self.kernel.freeze()
            self.plan_cache.freeze()
            for backend in (self._backend, self._sql3vl_backend):
                if backend is not None:
                    backend.freeze()
            self._frozen = True
        return self

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop cached plans and evict this session's cold conditions."""
        if self._frozen:
            raise InvalidRequestError("cannot clear the caches of a frozen session")
        self.plan_cache.clear()

    def close(self) -> None:
        """Close the session's backend connections and worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
            self._executor = None
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            for backend in (self._backend, self._sql3vl_backend):
                if backend is not None:
                    backend.close()
            self._backend = None
            self._sql3vl_backend = None
            self._backend_database = None
            self._sql3vl_database = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


_SENTINEL = object()


def _stream_rest(
    first: Tuple[Any, ...], rest: Iterator[Tuple[Any, ...]]
) -> Iterator[Tuple[Any, ...]]:
    """Yield ``first`` then drain ``rest``, typing mid-stream backend deaths.

    Once rows have been handed to the consumer the in-memory recovery of
    :meth:`Session._execute_sqlite` is no longer sound (splicing a
    restarted answer could repeat or reorder what was already yielded),
    so an environmental failure here becomes a typed
    :class:`BackendUnavailable` — never a silent wrong answer, never a
    raw driver exception.
    """
    import sqlite3

    yield first
    while True:
        try:
            row = next(rest)
        except StopIteration:
            return
        except sqlite3.Error as error:
            from .backends.sqlite import is_runtime_failure

            if is_runtime_failure(error):
                raise BackendUnavailable(
                    f"sqlite backend died mid-stream after yielding rows: {error}"
                ) from error
            raise
        yield row


def _render_physical(op: Any, indent: int = 0) -> str:
    """Best-effort rendering of a physical operator tree by introspection."""
    pad = "  " * indent
    name = type(op).__name__
    details = []
    children = []
    for klass in type(op).__mro__:
        for attr in getattr(klass, "__slots__", ()):
            if attr in ("key",):
                continue
            value = getattr(op, attr, None)
            if hasattr(value, "rows") and hasattr(value, "_compute"):
                children.append(value)
            elif isinstance(value, (tuple, int, str)) and not callable(value):
                details.append(f"{attr}={value!r}")
    header = pad + name + (f" [{', '.join(details)}]" if details else "")
    lines = [header]
    for child in children:
        lines.append(_render_physical(child, indent + 1))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# connect() and the process-default session
# ----------------------------------------------------------------------
def connect(
    database: Optional[Database] = None,
    *,
    engine: str = "plan",
    semantics: str = "cwa",
    model: Optional[Any] = None,
    workers: Optional[int] = None,
    backend_path: str = ":memory:",
    kernel_watermark: Optional[int] = None,
    kernel_memo_limit: Optional[int] = None,
    budget: Optional[Budget] = None,
    on_budget: str = "degrade",
    retry_policy: Optional[RetryPolicy] = None,
    tracer: Optional[Tracer] = None,
    metrics: bool = True,
) -> Session:
    """Open a :class:`Session` owning all of its evaluation state.

    Parameters
    ----------
    database:
        The default incomplete database queries run against (individual
        queries may override it; ``None`` for sessions that stream data
        straight into the backend via :meth:`Session.load_rows`).
    engine:
        ``"plan"`` (optimizing in-memory engine, default),
        ``"interpreter"`` (the seed tree-walking oracle) or ``"sqlite"``
        (plans compiled to SQL on a session-owned SQLite handle).
    semantics:
        ``"cwa"`` (default), ``"owa"`` or ``"wcwa"`` — the possible-world
        semantics certain/possible answers quantify over — or ``"prob"``,
        the probabilistic tier: worlds are CWA valuations weighted by
        ``model``, and :meth:`Query.confidence` ranks answers by exact
        probability (see ``docs/probability.md``).
    model:
        The :class:`~repro.prob.ProbabilityModel` over the database's
        nulls; required by (and only meaningful with)
        ``semantics="prob"``.
    workers:
        When > 1, world enumeration fans out over a process pool.
    backend_path:
        SQLite storage for ``engine="sqlite"``: the default
        ``":memory:"``, or a file path for out-of-core instances.
    kernel_watermark:
        Bound on the session's condition-kernel intern table; crossing it
        triggers an automatic epoch eviction (hot conditions survive).
    kernel_memo_limit:
        Bound on each of the kernel's ∧/∨ memo tables (defaults to
        ``8 * kernel_watermark`` when a watermark is set); overflowing
        drops the oldest half, so long-lived sessions stay bounded.
    budget:
        Default :class:`~repro.resilience.Budget` applied to every
        ``certain()``/``possible()``/``boolean()`` call of this session
        (individual calls may override it).
    on_budget:
        Default budget-expiry policy for ``certain()``: ``"degrade"``
        (sound fallback, the default), ``"raise"`` or ``"partial"`` —
        see ``docs/robustness.md``.
    retry_policy:
        A :class:`~repro.resilience.RetryPolicy` shaping every transient
        backend retry of this session (query execution, streaming,
        database refills, the 3VL bridge).  Defaults to the historical
        3-retry / 5–40 ms exponential-backoff shape.
    tracer:
        A :class:`repro.obs.Tracer` receiving a span for every query
        entry point, plan compilation, operator execution, backend
        statement, retry and degradation decision of this session.
        Defaults to the process tracer selected by ``REPRO_TRACE=path``
        (a JSONL file sink), else ``None`` — tracing off, at the cost of
        one branch per instrumentation point.
    metrics:
        ``False`` disables the session's :class:`~repro.obs.MetricsRegistry`
        entirely (every recording call becomes one check and a return);
        the default keeps counters/histograms on — their overhead is held
        within the ``gate:obs`` benchmark bound.
    """
    return Session(
        database,
        engine=engine,
        semantics=semantics,
        model=model,
        workers=workers,
        backend_path=backend_path,
        kernel_watermark=kernel_watermark,
        kernel_memo_limit=kernel_memo_limit,
        budget=budget,
        on_budget=on_budget,
        retry_policy=retry_policy,
        tracer=tracer,
        metrics=metrics,
    )


_default_session: Optional[Session] = None
_default_session_lock = threading.Lock()


def default_session() -> Session:
    """The process-default session backing the deprecated entry points.

    Deliberately shares the process-default plan cache, condition kernel
    and per-database backend caches, and resolves its engine through the
    legacy process-wide default, so shimmed old code keeps its exact
    pre-session behavior.
    """
    global _default_session
    if _default_session is None:
        with _default_session_lock:
            if _default_session is None:
                from .engine.planner import DEFAULT_PLAN_CACHE

                _default_session = Session(
                    None,
                    _dynamic_engine=True,
                    _plan_cache=DEFAULT_PLAN_CACHE,
                    _kernel=DEFAULT_KERNEL,
                    _legacy_backends=True,
                )
    return _default_session
