"""The paper's "small and easily implementable change": IS NOT NULL rewriting.

Section 2 ends with the observation that for positive queries, certain
answers "can be done by a straightforward query evaluation followed by an
extra selection operation, throwing out tuples with nulls (or simply
adding IS NOT NULL conditions in the WHERE clause of the original query)".
This module implements exactly that rewriting for the SQL subset of
:mod:`repro.sqlnulls`:

* :func:`is_positive_sql` checks that a query is in the safe fragment
  (select-project-join-union style: equality comparisons, ``AND``/``OR``,
  ``IN``/``EXISTS`` subqueries — no negation of any kind);
* :func:`certain_answer_rewriting` appends ``IS NOT NULL`` conditions for
  every output column, so that running the rewritten query on the standard
  (three-valued) SQL engine returns certain answers for Codd (SQL-style)
  databases.
"""

from __future__ import annotations

from typing import List, Tuple

from ..datamodel import Database
from .ast import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    SelectQuery,
    SQLAnd,
    SQLComparison,
    SQLCondition,
    SQLNot,
    SQLOr,
)


class RewritingError(ValueError):
    """Raised when a query is outside the fragment the rewriting is safe for."""


def _condition_is_positive(condition: SQLCondition) -> bool:
    if condition is None:
        return True
    if isinstance(condition, SQLComparison):
        return condition.op == "="
    if isinstance(condition, (SQLAnd, SQLOr)):
        return all(_condition_is_positive(op) for op in condition.operands)
    if isinstance(condition, SQLNot):
        return False
    if isinstance(condition, IsNull):
        return False
    if isinstance(condition, InSubquery):
        return not condition.negated and is_positive_sql(condition.subquery)
    if isinstance(condition, ExistsSubquery):
        return not condition.negated and is_positive_sql(condition.subquery)
    return False


def is_positive_sql(query: SelectQuery) -> bool:
    """Is the query in the positive (UCQ-like) SQL fragment?

    Allowed: ``SELECT`` lists, multiple ``FROM`` tables, ``WHERE`` clauses
    built from equality comparisons, ``AND``, ``OR``, non-negated ``IN`` and
    ``EXISTS`` subqueries.  Disallowed: ``NOT``, ``<>``/``<``/..., ``NOT
    IN``, ``NOT EXISTS`` and ``IS [NOT] NULL`` (the last because it is not
    generic)."""
    if query.where is None:
        return True
    return _condition_is_positive(query.where)


def _output_columns(query: SelectQuery, database: Database) -> List[ColumnRef]:
    if query.columns == "*":
        columns: List[ColumnRef] = []
        for table in query.tables:
            schema = database.schema[table.name]
            for attribute in schema.attributes:
                columns.append(ColumnRef(attribute, table=table.binding))
        return columns
    columns = []
    for expression in query.columns:  # type: ignore[union-attr]
        if isinstance(expression, ColumnRef):
            columns.append(expression)
        elif isinstance(expression, Literal):
            continue
        else:  # pragma: no cover - defensive
            raise RewritingError(f"unsupported output expression {expression!r}")
    return columns


def certain_answer_rewriting(query: SelectQuery, database: Database) -> SelectQuery:
    """Rewrite a positive SQL query so its 3VL evaluation yields certain answers.

    The rewriting appends ``<output column> IS NOT NULL`` for every column
    of the ``SELECT`` list (or of every table for ``SELECT *``).  For Codd
    databases — SQL's own model of nulls — the rewritten query evaluated
    under the standard three-valued semantics returns exactly the certain
    answers of the original query (eq. (4) of the paper restricted to the
    SQL fragment).

    Raises :class:`RewritingError` when the query is outside the positive
    fragment: for such queries no ``IS NOT NULL`` patch can make the answers
    trustworthy (that is the paper's point).
    """
    if not is_positive_sql(query):
        raise RewritingError(
            "the IS NOT NULL rewriting is only sound for positive queries; "
            "this query uses negation (NOT IN / NOT EXISTS / NOT / non-equality)"
        )
    guards: List[SQLCondition] = [
        IsNull(column, negated=True) for column in _output_columns(query, database)
    ]
    if not guards:
        return query
    if query.where is None:
        where: SQLCondition = SQLAnd(tuple(guards)) if len(guards) > 1 else guards[0]
    else:
        where = SQLAnd(tuple([query.where] + guards))
    return SelectQuery(
        columns=query.columns,
        tables=query.tables,
        where=where,
        distinct=query.distinct,
    )
