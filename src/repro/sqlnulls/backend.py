"""Run the sqlnulls comparison scenarios on a real SQL engine.

The Python evaluator in :mod:`repro.sqlnulls.engine` exists to reproduce
the SQL standard's three-valued null semantics *by the book*; this module
routes the same :class:`SelectQuery` objects through the SQLite backend
of :mod:`repro.backends`, so the Section 1 "what SQL gets wrong vs. what
certain answers give" demos run on an actual SQL engine instead of a
simulation.

The database is loaded through :class:`~repro.backends.encoding.SQLNullCodec`:
every marked null becomes a plain SQL ``NULL`` (deliberately losing the
marks — that *is* the semantics under scrutiny), constants are stored
raw, tables keep bag semantics, and SQLite's native three-valued
``WHERE`` / ``IN`` / ``EXISTS`` logic takes over.  The compiled SQL is a
direct transliteration of the AST; column references are resolved at
compile time against the same scope chain the Python engine uses, so the
two evaluators answer the same queries — the differential tests compare
them row for row (modulo null marks, which SQL cannot return).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..backends.base import quote_identifier, table_name
from ..backends.encoding import SQLNullCodec
from ..backends.sqlite import SQLiteBackend
from ..datamodel import Database
from .ast import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    ScalarExpression,
    SelectQuery,
    SQLAnd,
    SQLComparison,
    SQLCondition,
    SQLNot,
    SQLOr,
)
from .engine import Row, SQLError

#: Key under which the three-valued backend is cached on a database's
#: ``analysis_cache`` (distinct from the sentinel-mode backend).
ANALYSIS_CACHE_KEY = "backends.sqlite3vl"

_SQL_OPS = {"=": "=", "<>": "<>", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class _Scope:
    """Compile-time column bindings of one query level, chained upward."""

    def __init__(self, bindings: Dict[str, Tuple[str, ...]], parent: Optional["_Scope"]) -> None:
        self._bindings = bindings
        self._parent = parent

    def resolve(self, column: ColumnRef) -> Tuple[str, int]:
        """``(binding, position)`` of the referenced column."""
        if column.table is not None:
            scope: Optional[_Scope] = self
            while scope is not None:
                if column.table in scope._bindings:
                    attributes = scope._bindings[column.table]
                    if column.name not in attributes:
                        raise SQLError(
                            f"table {column.table!r} has no column {column.name!r}"
                        )
                    return column.table, attributes.index(column.name)
                scope = scope._parent
            raise SQLError(f"unknown table alias {column.table!r}")
        scope = self
        while scope is not None:
            matches = [
                (binding, attributes)
                for binding, attributes in scope._bindings.items()
                if column.name in attributes
            ]
            if len(matches) > 1:
                raise SQLError(f"ambiguous column reference {column.name!r}")
            if matches:
                binding, attributes = matches[0]
                return binding, attributes.index(column.name)
            scope = scope._parent
        raise SQLError(f"unknown column {column.name!r}")


class _Compiler:
    """Transliterate a :class:`SelectQuery` into SQLite SQL + parameters."""

    def __init__(self, database: Database, codec: SQLNullCodec) -> None:
        self._schema = database.schema
        self._codec = codec
        self.params: List[Any] = []

    def compile(self, query: SelectQuery, parent: Optional[_Scope] = None) -> str:
        if not query.tables:
            raise SQLError("FROM clause must mention at least one table")
        bindings: Dict[str, Tuple[str, ...]] = {}
        from_items: List[str] = []
        for table in query.tables:
            if table.name not in self._schema:
                raise SQLError(f"unknown table {table.name!r}")
            bindings[table.binding] = self._schema[table.name].attributes
            from_items.append(f"{table_name(table.name)} AS {quote_identifier(table.binding)}")
        scope = _Scope(bindings, parent)

        if query.columns == "*":
            select_items = []
            for table in query.tables:
                arity = len(bindings[table.binding])
                select_items.extend(
                    f"{quote_identifier(table.binding)}.c{i}" for i in range(arity)
                )
        else:
            select_items = [self._scalar(column, scope) for column in query.columns]
        head = "SELECT DISTINCT" if query.distinct else "SELECT"
        sql = f"{head} {', '.join(select_items)} FROM {', '.join(from_items)}"
        if query.where is not None:
            sql += f" WHERE {self._condition(query.where, scope)}"
        return sql

    def _scalar(self, expression: ScalarExpression, scope: _Scope) -> str:
        if isinstance(expression, Literal):
            self.params.append(self._codec.encode(expression.value))
            return "?"
        if isinstance(expression, ColumnRef):
            binding, position = scope.resolve(expression)
            return f"{quote_identifier(binding)}.c{position}"
        raise SQLError(f"unsupported scalar expression {expression!r}")

    def _condition(self, condition: SQLCondition, scope: _Scope) -> str:
        if isinstance(condition, SQLComparison):
            op = _SQL_OPS.get(condition.op)
            if op is None:
                raise SQLError(f"unknown comparison operator {condition.op!r}")
            left = self._scalar(condition.left, scope)
            right = self._scalar(condition.right, scope)
            return f"{left} {op} {right}"
        if isinstance(condition, (SQLAnd, SQLOr)):
            joiner = " AND " if isinstance(condition, SQLAnd) else " OR "
            if not condition.operands:
                return "1" if isinstance(condition, SQLAnd) else "0"
            return joiner.join(
                f"({self._condition(operand, scope)})" for operand in condition.operands
            )
        if isinstance(condition, SQLNot):
            return f"NOT ({self._condition(condition.operand, scope)})"
        if isinstance(condition, IsNull):
            keyword = "IS NOT NULL" if condition.negated else "IS NULL"
            return f"{self._scalar(condition.operand, scope)} {keyword}"
        if isinstance(condition, InSubquery):
            operand = self._scalar(condition.operand, scope)
            keyword = "NOT IN" if condition.negated else "IN"
            return f"{operand} {keyword} ({self.compile(condition.subquery, scope)})"
        if isinstance(condition, ExistsSubquery):
            keyword = "NOT EXISTS" if condition.negated else "EXISTS"
            return f"{keyword} ({self.compile(condition.subquery, scope)})"
        raise SQLError(f"unsupported condition {condition!r}")


def sqlite_backend_for(database: Database) -> SQLiteBackend:
    """The three-valued-mode backend of ``database`` (cached per instance)."""
    cache = database.analysis_cache()
    backend = cache.get(ANALYSIS_CACHE_KEY)
    if backend is None:
        backend = SQLiteBackend(codec=SQLNullCodec())
        backend.load_database(database)
        cache[ANALYSIS_CACHE_KEY] = backend
    return backend


def compile_select(
    database: Database, query: SelectQuery
) -> Tuple[str, Tuple[Any, ...]]:
    """The SQLite SQL text and parameters of ``query`` over ``database``."""
    compiler = _Compiler(database, SQLNullCodec())
    sql = compiler.compile(query)
    return sql, tuple(compiler.params)


def run_sql_sqlite(database: Database, query: SelectQuery) -> List[Row]:
    """Execute ``query`` on SQLite with standard SQL null semantics.

    Returns rows with bag semantics like
    :func:`repro.sqlnulls.engine.run_sql`; each SQL ``NULL`` in the output
    decodes to a *fresh* marked null (SQL nulls are Codd nulls — the
    marks are gone, so no identity can be recovered).
    """
    backend = sqlite_backend_for(database)
    sql, params = compile_select(database, query)
    codec = backend.codec
    try:
        cursor = backend.connection.execute(sql, params)
        return [codec.decode_row(row) for row in cursor]
    except Exception as error:
        if isinstance(error, SQLError):
            raise
        raise SQLError(f"sqlite execution failed: {error}") from error
