"""A parser for the SQL subset of :mod:`repro.sqlnulls.ast`.

Supported grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] select_list FROM table_list [WHERE condition]
    select_list:= '*' | scalar (',' scalar)*
    table_list := table [alias] (',' table [alias])*
    condition  := or_term
    or_term    := and_term (OR and_term)*
    and_term   := not_term (AND not_term)*
    not_term   := NOT not_term | primary
    primary    := '(' condition ')'
                | EXISTS '(' query ')'
                | scalar IS [NOT] NULL
                | scalar [NOT] IN '(' query ')'
                | scalar compare_op scalar
    scalar     := quoted string | number | NULL | [table '.'] column

String literals use single quotes.  ``NULL`` as a scalar literal produces a
fresh (unmarked, from SQL's point of view) null value.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple, Union

from ..datamodel.values import Null
from .ast import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    ScalarExpression,
    SelectQuery,
    SQLAnd,
    SQLComparison,
    SQLCondition,
    SQLNot,
    SQLOr,
    TableRef,
)


class SQLParseError(ValueError):
    """Raised when the SQL text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "or",
    "not",
    "in",
    "is",
    "null",
    "exists",
    "as",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    @property
    def keyword(self) -> Optional[str]:
        if self.kind == "word" and self.value.lower() in _KEYWORDS:
            return self.value.lower()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SQLParseError(f"unexpected character {text[position]!r} at offset {position}")
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of input")
        self._index += 1
        return token

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.keyword in keywords

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.keyword != keyword:
            raise SQLParseError(f"expected {keyword.upper()}, got {token.value!r}")

    def _expect_punct(self, value: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise SQLParseError(f"expected {value!r}, got {token.value!r}")

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.value == value

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- grammar ---------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        self._expect_keyword("select")
        distinct = False
        if self._at_keyword("distinct"):
            self._next()
            distinct = True
        columns = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        where: Optional[SQLCondition] = None
        if self._at_keyword("where"):
            self._next()
            where = self._parse_condition()
        return SelectQuery(columns=columns, tables=tuple(tables), where=where, distinct=distinct)

    def _parse_select_list(self) -> Union[str, Tuple[ScalarExpression, ...]]:
        if self._at_punct("*"):
            self._next()
            return "*"
        columns: List[ScalarExpression] = [self._parse_scalar()]
        while self._at_punct(","):
            self._next()
            columns.append(self._parse_scalar())
        return tuple(columns)

    def _parse_table_list(self) -> List[TableRef]:
        tables = [self._parse_table()]
        while self._at_punct(","):
            self._next()
            tables.append(self._parse_table())
        return tables

    def _parse_table(self) -> TableRef:
        token = self._next()
        if token.kind != "word" or token.keyword is not None:
            raise SQLParseError(f"expected a table name, got {token.value!r}")
        alias: Optional[str] = None
        if self._at_keyword("as"):
            self._next()
        next_token = self._peek()
        if next_token is not None and next_token.kind == "word" and next_token.keyword is None:
            alias = self._next().value
        return TableRef(token.value, alias)

    # -- conditions ------------------------------------------------------
    def _parse_condition(self) -> SQLCondition:
        return self._parse_or()

    def _parse_or(self) -> SQLCondition:
        operands = [self._parse_and()]
        while self._at_keyword("or"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return SQLOr(tuple(operands))

    def _parse_and(self) -> SQLCondition:
        operands = [self._parse_not()]
        while self._at_keyword("and"):
            self._next()
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return SQLAnd(tuple(operands))

    def _parse_not(self) -> SQLCondition:
        if self._at_keyword("not") and not self._next_is_exists_after_not():
            self._next()
            return SQLNot(self._parse_not())
        return self._parse_primary()

    def _next_is_exists_after_not(self) -> bool:
        token = self._peek(1)
        return token is not None and token.keyword == "exists"

    def _parse_primary(self) -> SQLCondition:
        if self._at_punct("("):
            self._next()
            condition = self._parse_condition()
            self._expect_punct(")")
            return condition
        if self._at_keyword("exists"):
            self._next()
            return ExistsSubquery(self._parse_parenthesised_query(), negated=False)
        if self._at_keyword("not") and self._next_is_exists_after_not():
            self._next()
            self._expect_keyword("exists")
            return ExistsSubquery(self._parse_parenthesised_query(), negated=True)

        scalar = self._parse_scalar()
        if self._at_keyword("is"):
            self._next()
            negated = False
            if self._at_keyword("not"):
                self._next()
                negated = True
            self._expect_keyword("null")
            return IsNull(scalar, negated=negated)
        if self._at_keyword("not"):
            self._next()
            self._expect_keyword("in")
            return InSubquery(scalar, self._parse_parenthesised_query(), negated=True)
        if self._at_keyword("in"):
            self._next()
            return InSubquery(scalar, self._parse_parenthesised_query(), negated=False)

        op_token = self._next()
        if op_token.kind != "op":
            raise SQLParseError(f"expected a comparison operator, got {op_token.value!r}")
        op = "<>" if op_token.value == "!=" else op_token.value
        right = self._parse_scalar()
        return SQLComparison(scalar, op, right)

    def _parse_parenthesised_query(self) -> SelectQuery:
        self._expect_punct("(")
        query = self.parse_query()
        self._expect_punct(")")
        return query

    # -- scalars ---------------------------------------------------------
    def _parse_scalar(self) -> ScalarExpression:
        token = self._next()
        if token.kind == "string":
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "number":
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "word":
            if token.keyword == "null":
                return Literal(Null.fresh("sql"))
            if token.keyword is not None:
                raise SQLParseError(f"unexpected keyword {token.value!r} in a scalar position")
            if self._at_punct("."):
                self._next()
                column_token = self._next()
                if column_token.kind != "word" or column_token.keyword is not None:
                    raise SQLParseError(f"expected a column name, got {column_token.value!r}")
                return ColumnRef(column_token.value, table=token.value)
            return ColumnRef(token.value)
        raise SQLParseError(f"expected a scalar expression, got {token.value!r}")


def parse_sql(text: str) -> SelectQuery:
    """Parse a SQL string of the supported subset into a :class:`SelectQuery`.

    Examples
    --------
    >>> query = parse_sql(
    ...     "SELECT o_id FROM Orders WHERE o_id NOT IN (SELECT ord FROM Pay)")
    >>> query.tables[0].name
    'Orders'
    """
    parser = _Parser(_tokenize(text))
    query = parser.parse_query()
    if not parser.at_end():
        raise SQLParseError("trailing input after a complete query")
    return query
