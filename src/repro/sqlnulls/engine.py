"""Execution of the SQL subset with the standard's three-valued null semantics.

The engine implements exactly the behaviour the paper criticises:

* any comparison with a ``NULL`` operand evaluates to *unknown*;
* ``AND`` / ``OR`` / ``NOT`` follow Kleene's (SQL's) three-valued logic;
* the ``WHERE`` clause keeps a row only when its condition is *true*
  (unknown rows are silently dropped);
* ``x IN (subquery)`` is the disjunction of ``x = e`` over the subquery's
  rows, ``x NOT IN (subquery)`` its negation — so a single null in the
  subquery turns a non-matching ``NOT IN`` into *unknown* and removes the
  row, which is the unpaid-orders bug of Section 1;
* ``EXISTS`` is two-valued (non-emptiness of the subquery result).

Bag semantics is used for intermediate results, matching SQL; ``DISTINCT``
deduplicates.  Marked nulls in the input database are treated as plain
(unmarked) SQL nulls.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..datamodel import Database, Relation
from ..datamodel.values import is_null
from .ast import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    ScalarExpression,
    SelectQuery,
    SQLAnd,
    SQLComparison,
    SQLCondition,
    SQLNot,
    SQLOr,
    TableRef,
)

ThreeValued = Optional[bool]
"""SQL truth value: ``True``, ``False`` or ``None`` (unknown)."""

Row = Tuple[Any, ...]


class SQLError(ValueError):
    """Raised for unresolvable column references or malformed queries."""


class _Scope:
    """Column bindings of one query level, chained to the enclosing scope."""

    def __init__(
        self,
        bindings: Dict[str, Tuple[Tuple[str, ...], Row]],
        parent: Optional["_Scope"] = None,
    ) -> None:
        self._bindings = bindings
        self._parent = parent

    def resolve(self, column: ColumnRef) -> Any:
        if column.table is not None:
            scope: Optional[_Scope] = self
            while scope is not None:
                if column.table in scope._bindings:
                    attributes, row = scope._bindings[column.table]
                    if column.name not in attributes:
                        raise SQLError(f"table {column.table!r} has no column {column.name!r}")
                    return row[attributes.index(column.name)]
                scope = scope._parent
            raise SQLError(f"unknown table alias {column.table!r}")

        scope = self
        while scope is not None:
            matches = [
                (attributes, row)
                for attributes, row in scope._bindings.values()
                if column.name in attributes
            ]
            if len(matches) > 1:
                raise SQLError(f"ambiguous column reference {column.name!r}")
            if matches:
                attributes, row = matches[0]
                return row[attributes.index(column.name)]
            scope = scope._parent
        raise SQLError(f"unknown column {column.name!r}")


class SQLEngine:
    """Evaluates :class:`SelectQuery` objects against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self._database = database

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(self, query: SelectQuery) -> List[Row]:
        """Run the query and return its rows (bag semantics, list order arbitrary)."""
        return self._execute(query, parent_scope=None)

    def execute_relation(self, query: SelectQuery, name: str = "Result") -> Relation:
        """Run the query and return a set-semantics :class:`Relation` of its rows."""
        rows = self.execute(query)
        attributes = self._output_attributes(query)
        if rows:
            arity = len(rows[0])
        else:
            arity = len(attributes)
        if len(attributes) != arity:
            attributes = tuple(f"#{i}" for i in range(arity))
        return Relation.create(name, rows, attributes=attributes or None, arity=arity or None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _output_attributes(self, query: SelectQuery) -> Tuple[str, ...]:
        if query.columns == "*":
            attributes: List[str] = []
            for table in query.tables:
                attributes.extend(self._database.schema[table.name].attributes)
            return tuple(attributes)
        names: List[str] = []
        for column in query.columns:  # type: ignore[union-attr]
            if isinstance(column, ColumnRef):
                names.append(column.name)
            else:
                names.append(f"expr{len(names)}")
        return tuple(names)

    def _execute(self, query: SelectQuery, parent_scope: Optional[_Scope]) -> List[Row]:
        if not query.tables:
            raise SQLError("FROM clause must mention at least one table")
        bindings_order: List[Tuple[str, Tuple[str, ...], List[Row]]] = []
        for table in query.tables:
            schema = self._database.schema[table.name]
            rows = list(self._database.relation(table.name).rows)
            bindings_order.append((table.binding, schema.attributes, rows))

        results: List[Row] = []
        self._cartesian(query, bindings_order, 0, {}, parent_scope, results)
        if query.distinct:
            seen: set = set()
            deduplicated: List[Row] = []
            for row in results:
                if row not in seen:
                    seen.add(row)
                    deduplicated.append(row)
            return deduplicated
        return results

    def _cartesian(
        self,
        query: SelectQuery,
        bindings_order: List[Tuple[str, Tuple[str, ...], List[Row]]],
        index: int,
        current: Dict[str, Tuple[Tuple[str, ...], Row]],
        parent_scope: Optional[_Scope],
        results: List[Row],
    ) -> None:
        if index == len(bindings_order):
            scope = _Scope(dict(current), parent_scope)
            if query.where is None or self._condition(query.where, scope) is True:
                results.append(self._project(query, scope, current, bindings_order))
            return
        binding, attributes, rows = bindings_order[index]
        for row in rows:
            current[binding] = (attributes, row)
            self._cartesian(query, bindings_order, index + 1, current, parent_scope, results)
        current.pop(binding, None)

    def _project(
        self,
        query: SelectQuery,
        scope: _Scope,
        current: Dict[str, Tuple[Tuple[str, ...], Row]],
        bindings_order: List[Tuple[str, Tuple[str, ...], List[Row]]],
    ) -> Row:
        if query.columns == "*":
            values: List[Any] = []
            for binding, _attributes, _rows in bindings_order:
                values.extend(current[binding][1])
            return tuple(values)
        return tuple(self._scalar(column, scope) for column in query.columns)  # type: ignore[union-attr]

    # -- scalar and condition evaluation ---------------------------------
    def _scalar(self, expression: ScalarExpression, scope: _Scope) -> Any:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, ColumnRef):
            return scope.resolve(expression)
        raise SQLError(f"unsupported scalar expression {expression!r}")

    def _compare(self, left: Any, op: str, right: Any) -> ThreeValued:
        if is_null(left) or is_null(right):
            return None
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise SQLError(f"unknown comparison operator {op!r}")

    def _condition(self, condition: SQLCondition, scope: _Scope) -> ThreeValued:
        if isinstance(condition, SQLComparison):
            return self._compare(
                self._scalar(condition.left, scope), condition.op, self._scalar(condition.right, scope)
            )
        if isinstance(condition, SQLAnd):
            result: ThreeValued = True
            for operand in condition.operands:
                value = self._condition(operand, scope)
                if value is False:
                    return False
                if value is None:
                    result = None
            return result
        if isinstance(condition, SQLOr):
            result = False
            for operand in condition.operands:
                value = self._condition(operand, scope)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result
        if isinstance(condition, SQLNot):
            value = self._condition(condition.operand, scope)
            if value is None:
                return None
            return not value
        if isinstance(condition, IsNull):
            value = self._scalar(condition.operand, scope)
            verdict = is_null(value)
            return (not verdict) if condition.negated else verdict
        if isinstance(condition, InSubquery):
            return self._in_subquery(condition, scope)
        if isinstance(condition, ExistsSubquery):
            rows = self._execute(condition.subquery, parent_scope=scope)
            verdict = bool(rows)
            return (not verdict) if condition.negated else verdict
        raise SQLError(f"unsupported condition {condition!r}")

    def _in_subquery(self, condition: InSubquery, scope: _Scope) -> ThreeValued:
        """SQL semantics of ``x [NOT] IN (subquery)``.

        ``x IN S`` is the Kleene disjunction of ``x = e`` over the elements
        ``e`` of ``S``; ``NOT IN`` is its negation.  With a null among the
        elements (or a null ``x``), a non-matching membership test is
        *unknown* rather than false — which is precisely how the paper's
        unpaid-orders query loses its answers.
        """
        value = self._scalar(condition.operand, scope)
        rows = self._execute(condition.subquery, parent_scope=scope)
        membership: ThreeValued = False
        for row in rows:
            if len(row) != 1:
                raise SQLError("IN subqueries must return a single column")
            verdict = self._compare(value, "=", row[0])
            if verdict is True:
                membership = True
                break
            if verdict is None:
                membership = None
        if condition.negated:
            if membership is None:
                return None
            return not membership
        return membership


def execute_sql(database: Database, query: SelectQuery, backend: str = "python") -> List[Row]:
    """Execute ``query`` against ``database`` (non-deprecated internal entry).

    ``backend`` selects the evaluator: ``"python"`` (this module's
    by-the-book three-valued engine, the oracle) or ``"sqlite"`` (the
    same query transliterated to SQL and run on SQLite through
    :mod:`repro.sqlnulls.backend` — marked nulls become real SQL
    ``NULL``\\ s, so output nulls come back as fresh marks).
    """
    if backend == "python":
        return SQLEngine(database).execute(query)
    if backend == "sqlite":
        from .backend import run_sql_sqlite

        return run_sql_sqlite(database, query)
    raise ValueError(f"unknown backend {backend!r}; expected 'python' or 'sqlite'")


def run_sql(database: Database, query: SelectQuery, backend: str = "python") -> List[Row]:
    """Deprecated convenience wrapper: use :meth:`repro.session.Session.sql`.

    ``repro.connect(db, engine="sqlite").sql(query)`` runs the same
    three-valued evaluation with session-owned backend state; see
    ``docs/api.md`` for the full migration map.
    """
    from .._deprecation import warn_deprecated as _warn_deprecated

    _warn_deprecated("run_sql()", "Session.sql()")
    return execute_sql(database, query, backend=backend)
