"""SQL's three-valued treatment of nulls — the "what went wrong" side.

This package contains a small SQL engine (AST, parser, evaluator) that
follows the SQL standard's null semantics: comparisons with ``NULL`` are
unknown, ``WHERE`` keeps only *true* rows, and ``NOT IN`` / ``IN`` over
subqueries propagate unknowns.  It exists to reproduce, mechanically, the
paper's introductory examples of SQL returning wrong answers on incomplete
databases, and to serve as the "practice" baseline in the benchmarks.
"""

from .rewriting import RewritingError, certain_answer_rewriting, is_positive_sql
from .ast import (
    ColumnRef,
    ExistsSubquery,
    InSubquery,
    IsNull,
    Literal,
    ScalarExpression,
    SelectQuery,
    SQLAnd,
    SQLComparison,
    SQLCondition,
    SQLNot,
    SQLOr,
    TableRef,
)
from .backend import compile_select, run_sql_sqlite
from .engine import SQLEngine, SQLError, execute_sql, run_sql
from .parser import SQLParseError, parse_sql

__all__ = [
    "ColumnRef",
    "ExistsSubquery",
    "InSubquery",
    "IsNull",
    "Literal",
    "SQLAnd",
    "SQLComparison",
    "SQLCondition",
    "SQLEngine",
    "SQLError",
    "SQLNot",
    "SQLOr",
    "SQLParseError",
    "RewritingError",
    "ScalarExpression",
    "SelectQuery",
    "TableRef",
    "certain_answer_rewriting",
    "compile_select",
    "execute_sql",
    "is_positive_sql",
    "parse_sql",
    "run_sql",
    "run_sql_sqlite",
]
