"""Abstract syntax for the SQL subset used to reproduce the paper's examples.

The paper's critique of SQL (Section 1) rests on how the SQL standard
evaluates queries over nulls: comparisons involving ``NULL`` are *unknown*,
the ``WHERE`` clause keeps only rows whose condition is *true*, and
``NOT IN`` quantifies a comparison over a subquery result — so a single
null in the subquery can make the whole condition unknown and silently
drop every row.  To reproduce this faithfully we model a small but
representative SQL subset:

* ``SELECT [DISTINCT] <columns> FROM <tables> [WHERE <condition>]``;
* conditions built from comparisons, ``AND`` / ``OR`` / ``NOT``,
  ``IS [NOT] NULL``, ``[NOT] IN (subquery)`` and ``[NOT] EXISTS (subquery)``;
* correlated subqueries (column references resolve against the enclosing
  scopes).

SQL nulls are *unmarked*: the engine treats every
:class:`repro.datamodel.Null` value simply as ``NULL``, which is exactly
the paper's remark that SQL's nulls are the special (Codd) case of marked
nulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference such as ``Pay.order`` or ``o_id``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A constant literal."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


ScalarExpression = Union[ColumnRef, Literal]


# ----------------------------------------------------------------------
# Conditions (three-valued)
# ----------------------------------------------------------------------
class SQLCondition:
    """Base class of WHERE-clause conditions."""


@dataclass(frozen=True)
class SQLComparison(SQLCondition):
    """``left op right`` with ``op ∈ {=, <>, <, <=, >, >=}``."""

    left: ScalarExpression
    op: str
    right: ScalarExpression

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class SQLAnd(SQLCondition):
    """Conjunction."""

    operands: Tuple[SQLCondition, ...]

    def __str__(self) -> str:
        return " AND ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class SQLOr(SQLCondition):
    """Disjunction."""

    operands: Tuple[SQLCondition, ...]

    def __str__(self) -> str:
        return " OR ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class SQLNot(SQLCondition):
    """Negation."""

    operand: SQLCondition

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class IsNull(SQLCondition):
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: ScalarExpression
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class InSubquery(SQLCondition):
    """``expr [NOT] IN (SELECT ...)`` — the star of the paper's examples."""

    operand: ScalarExpression
    subquery: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"{self.operand} {keyword} ({self.subquery})"


@dataclass(frozen=True)
class ExistsSubquery(SQLCondition):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} ({self.subquery})"


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """A FROM-clause item: a base table with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name under which the table's columns are visible."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT [DISTINCT] columns FROM tables [WHERE condition]``.

    ``columns`` is either the string ``"*"`` or a tuple of scalar
    expressions.  SQL bag semantics is the default; ``distinct=True``
    deduplicates the result.
    """

    columns: Union[str, Tuple[ScalarExpression, ...]]
    tables: Tuple[TableRef, ...]
    where: Optional[SQLCondition] = None
    distinct: bool = False

    def __str__(self) -> str:
        if self.columns == "*":
            cols = "*"
        else:
            cols = ", ".join(str(c) for c in self.columns)
        head = "SELECT DISTINCT" if self.distinct else "SELECT"
        text = f"{head} {cols} FROM {', '.join(str(t) for t in self.tables)}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text
