"""Conjunctive graph patterns over incomplete graphs.

A graph pattern is the graph analogue of a conjunctive query: a finite set
of edge atoms ``x -label-> y`` whose endpoints (and optionally labels) are
variables or constants, together with a tuple of output variables.  A
match is a homomorphism from the pattern into the graph; the answer is the
set of images of the output tuple.

As with relational conjunctive queries (paper, Sections 4 and 6), graph
patterns are monotone and generic, so naive evaluation over an incomplete
graph followed by dropping null-mentioning answers computes the certain
answers under both OWA and CWA
(:func:`naive_certain_answers_pattern`); the brute-force possible-world
intersection (:func:`certain_answers_pattern`) is retained as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datamodel import Relation, enumerate_valuations
from ..datamodel.values import is_null
from ..logic.formulas import Variable, is_variable
from ..semantics.worlds import default_domain
from .model import IncompleteGraph

Term = Union[Variable, Any]


@dataclass(frozen=True)
class EdgeAtom:
    """A pattern atom ``source -label-> target``.

    ``source`` and ``target`` are variables or constants; ``label`` may
    likewise be a variable (matching any label) or a constant.
    """

    source: Term
    label: Term
    target: Term

    def terms(self) -> Tuple[Term, Term, Term]:
        """The three terms of the atom, in ``(source, label, target)`` order."""
        return (self.source, self.label, self.target)

    def variables(self) -> Set[Variable]:
        """The variables occurring in the atom."""
        return {t for t in self.terms() if is_variable(t)}

    def __str__(self) -> str:
        return f"{self.source} -{self.label}-> {self.target}"


class GraphPattern:
    """A conjunctive graph pattern with output variables.

    Examples
    --------
    >>> from repro.logic import var
    >>> from repro.graphs import GraphPattern, EdgeAtom, IncompleteGraph
    >>> x, y, z = var("x"), var("y"), var("z")
    >>> pattern = GraphPattern([EdgeAtom(x, "knows", y), EdgeAtom(y, "knows", z)], output=(x, z))
    >>> g = IncompleteGraph(edges=[("a", "knows", "b"), ("b", "knows", "c")])
    >>> sorted(pattern.evaluate(g).rows)
    [('a', 'c')]
    """

    def __init__(
        self,
        atoms: Iterable[EdgeAtom],
        output: Sequence[Variable] = (),
        name: str = "Pattern",
    ) -> None:
        self.atoms: Tuple[EdgeAtom, ...] = tuple(atoms)
        if not self.atoms:
            raise ValueError("a graph pattern needs at least one edge atom")
        self.output: Tuple[Variable, ...] = tuple(output)
        self.name = name
        pattern_variables = self.variables()
        for variable in self.output:
            if variable not in pattern_variables:
                raise ValueError(f"output variable {variable} does not occur in the pattern")

    def variables(self) -> Set[Variable]:
        """All variables of the pattern."""
        result: Set[Variable] = set()
        for atom in self.atoms:
            result |= atom.variables()
        return result

    def is_boolean(self) -> bool:
        """``True`` iff the pattern has no output variables."""
        return not self.output

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        head = ", ".join(str(v) for v in self.output)
        return f"({head}) ← {body}" if self.output else body

    def __repr__(self) -> str:
        return f"GraphPattern({self.name!r}, atoms={len(self.atoms)}, output={len(self.output)})"

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def matches(self, graph: IncompleteGraph) -> Iterator[Dict[Variable, Any]]:
        """Enumerate all homomorphisms from the pattern into ``graph``.

        Values are compared syntactically, so on an incomplete graph this
        is naive matching (a null matches only itself).
        """
        edges = list(graph.edges())
        atoms = sorted(self.atoms, key=lambda a: sum(1 for t in a.terms() if is_variable(t)))

        def backtrack(index: int, assignment: Dict[Variable, Any]) -> Iterator[Dict[Variable, Any]]:
            if index == len(atoms):
                yield dict(assignment)
                return
            atom = atoms[index]
            for edge in edges:
                extension: Dict[Variable, Any] = {}
                consistent = True
                for term, value in zip(atom.terms(), edge):
                    if is_variable(term):
                        bound = assignment.get(term, extension.get(term, _UNBOUND))
                        if bound is _UNBOUND:
                            extension[term] = value
                        elif bound != value:
                            consistent = False
                            break
                    elif term != value:
                        consistent = False
                        break
                if not consistent:
                    continue
                assignment.update(extension)
                yield from backtrack(index + 1, assignment)
                for key in extension:
                    del assignment[key]

        yield from backtrack(0, {})

    def evaluate(self, graph: IncompleteGraph) -> Relation:
        """Naive evaluation: the images of the output tuple over all matches."""
        attributes = tuple(v.name for v in self.output) if self.output else ("match",)
        rows: Set[Tuple[Any, ...]] = set()
        for match in self.matches(graph):
            if self.output:
                rows.add(tuple(match[v] for v in self.output))
            else:
                rows.add(("true",))
        sorted_rows = sorted(rows, key=lambda r: tuple(str(v) for v in r))
        return Relation.create(self.name, sorted_rows, attributes=attributes) if sorted_rows else Relation.create(
            self.name, [], attributes=attributes)

    def evaluate_boolean(self, graph: IncompleteGraph) -> bool:
        """``True`` iff the pattern has at least one match in ``graph``."""
        for _match in self.matches(graph):
            return True
        return False


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


# ----------------------------------------------------------------------
# Certain answers
# ----------------------------------------------------------------------
def naive_certain_answers_pattern(pattern: GraphPattern, graph: IncompleteGraph) -> Relation:
    """Certain answers of a graph pattern by naive evaluation plus null filtering.

    Graph patterns are monotone and generic, so the paper's naive-evaluation
    theorems apply verbatim: evaluate naively, keep only answers without
    nulls.  Correct under both OWA and CWA.
    """
    answer = pattern.evaluate(graph)
    rows = [row for row in answer.rows if not any(is_null(v) for v in row)]
    return Relation(answer.schema, rows)


def certain_answers_pattern(
    pattern: GraphPattern,
    graph: IncompleteGraph,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Relation:
    """Intersection-based certain answers by explicit valuation enumeration.

    As for RPQs, monotonicity makes the OWA and CWA intersections coincide,
    so a single enumeration over valuation images serves both semantics.
    """
    if semantics not in ("cwa", "owa"):
        raise ValueError(f"unknown semantics {semantics!r}; use 'cwa' or 'owa'")
    if domain is None:
        domain = default_domain(graph.to_database(), extra_constants=extra_constants)
    certain: Optional[Set[Tuple[Any, ...]]] = None
    schema = pattern.evaluate(graph).schema
    for valuation in enumerate_valuations(graph.nulls(), domain):
        world = graph.apply_valuation(valuation)
        rows = set(pattern.evaluate(world).rows)
        certain = rows if certain is None else certain & rows
        if not certain:
            break
    if certain is None:
        certain = set(pattern.evaluate(graph).rows)
    return Relation(schema, certain)
