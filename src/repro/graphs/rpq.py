"""Regular path queries over (incomplete) graphs.

A regular path query (RPQ) selects the pairs of nodes ``(u, v)`` connected
by a directed path whose sequence of edge labels spells a word of a regular
language.  RPQs are the core query language of graph databases and the one
studied by the paper's Section 7 reference [14] (Barceló–Libkin–Reutter,
*Querying regular graph patterns*).

The reproduction mirrors the relational story of the paper:

* RPQs are *monotone* (adding edges or nodes never removes an answer) and
  *generic* (renaming values uniformly renames answers), so by the paper's
  equations (9)/(10) **naive evaluation works**: evaluating the RPQ over
  the incomplete graph as if nulls were ordinary values and then dropping
  answer pairs that mention nulls yields exactly the certain answers, under
  both OWA and CWA (:func:`naive_certain_answers_rpq`);
* the brute-force intersection over possible worlds
  (:func:`certain_answers_rpq`) is kept as ground truth for the tests and
  as the expensive side of the graph benchmarks.

Regular expressions are given either as an AST (:class:`Label`,
:class:`Concat`, :class:`Alt`, :class:`Star`, :class:`Plus`, :class:`Opt`)
or as text parsed by :func:`parse_rpq`, e.g. ``"knows . (friend | colleague)* . worksFor"``.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datamodel import Null, Relation, enumerate_valuations
from ..datamodel.values import is_null
from ..semantics.worlds import default_domain
from .model import IncompleteGraph


# ----------------------------------------------------------------------
# Regular-expression AST
# ----------------------------------------------------------------------
class RegularExpression:
    """Base class of regular expressions over edge labels."""

    def __or__(self, other: "RegularExpression") -> "Alt":
        return Alt(self, other)

    def __truediv__(self, other: "RegularExpression") -> "Concat":
        return Concat(self, other)

    def star(self) -> "Star":
        """Kleene star of this expression."""
        return Star(self)

    def plus(self) -> "Plus":
        """One-or-more repetitions of this expression."""
        return Plus(self)

    def optional(self) -> "Opt":
        """Zero-or-one occurrence of this expression."""
        return Opt(self)


class Label(RegularExpression):
    """A single edge label."""

    __slots__ = ("label",)

    def __init__(self, label: Any) -> None:
        self.label = label

    def __repr__(self) -> str:
        return f"Label({self.label!r})"

    def __str__(self) -> str:
        return str(self.label)


class Concat(RegularExpression):
    """Concatenation ``left . right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: RegularExpression, right: RegularExpression) -> None:
        self.left = left
        self.right = right

    def __str__(self) -> str:
        return f"({self.left} . {self.right})"


class Alt(RegularExpression):
    """Alternation ``left | right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: RegularExpression, right: RegularExpression) -> None:
        self.left = left
        self.right = right

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


class Star(RegularExpression):
    """Kleene star ``inner*``."""

    __slots__ = ("inner",)

    def __init__(self, inner: RegularExpression) -> None:
        self.inner = inner

    def __str__(self) -> str:
        return f"({self.inner})*"


class Plus(RegularExpression):
    """One or more repetitions ``inner+``."""

    __slots__ = ("inner",)

    def __init__(self, inner: RegularExpression) -> None:
        self.inner = inner

    def __str__(self) -> str:
        return f"({self.inner})+"


class Opt(RegularExpression):
    """Zero or one occurrence ``inner?``."""

    __slots__ = ("inner",)

    def __init__(self, inner: RegularExpression) -> None:
        self.inner = inner

    def __str__(self) -> str:
        return f"({self.inner})?"


# ----------------------------------------------------------------------
# Parser for the textual syntax
# ----------------------------------------------------------------------
class RPQParseError(ValueError):
    """Raised when an RPQ expression cannot be parsed."""


_OPERATORS = set("()|.*+?/")


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _OPERATORS:
            tokens.append(char)
            index += 1
            continue
        if char in "'\"":
            end = text.find(char, index + 1)
            if end == -1:
                raise RPQParseError(f"unterminated quoted label in {text!r}")
            tokens.append(text[index + 1 : end])
            index = end + 1
            continue
        start = index
        while index < len(text) and not text[index].isspace() and text[index] not in _OPERATORS:
            index += 1
        tokens.append(text[start:index])
    return tokens


class _Parser:
    def __init__(self, tokens: List[str], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._position = 0

    def peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise RPQParseError(f"unexpected end of expression in {self._text!r}")
        self._position += 1
        return token

    def parse(self) -> RegularExpression:
        expression = self.parse_alt()
        if self.peek() is not None:
            raise RPQParseError(f"unexpected token {self.peek()!r} in {self._text!r}")
        return expression

    def parse_alt(self) -> RegularExpression:
        expression = self.parse_concat()
        while self.peek() == "|":
            self.advance()
            expression = Alt(expression, self.parse_concat())
        return expression

    def parse_concat(self) -> RegularExpression:
        parts = [self.parse_postfix()]
        while True:
            token = self.peek()
            if token in (".", "/"):
                self.advance()
                parts.append(self.parse_postfix())
            elif token is not None and token not in ("|", ")", "*", "+", "?"):
                # juxtaposition also concatenates: "a b" == "a . b"
                parts.append(self.parse_postfix())
            else:
                break
        expression = parts[0]
        for part in parts[1:]:
            expression = Concat(expression, part)
        return expression

    def parse_postfix(self) -> RegularExpression:
        expression = self.parse_primary()
        while self.peek() in ("*", "+", "?"):
            operator = self.advance()
            if operator == "*":
                expression = Star(expression)
            elif operator == "+":
                expression = Plus(expression)
            else:
                expression = Opt(expression)
        return expression

    def parse_primary(self) -> RegularExpression:
        token = self.advance()
        if token == "(":
            expression = self.parse_alt()
            if self.advance() != ")":
                raise RPQParseError(f"missing closing parenthesis in {self._text!r}")
            return expression
        if token in _OPERATORS:
            raise RPQParseError(f"unexpected operator {token!r} in {self._text!r}")
        return Label(token)


def parse_rpq(text: str) -> "RegularPathQuery":
    """Parse a textual RPQ such as ``"knows . (friend | colleague)* . worksFor"``.

    Labels are bare identifiers or quoted strings; ``.`` (or ``/``, or plain
    juxtaposition) concatenates, ``|`` alternates, and the usual postfix
    ``*``, ``+``, ``?`` apply.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise RPQParseError("empty regular path query")
    return RegularPathQuery(_Parser(tokens, text).parse(), name=text)


# ----------------------------------------------------------------------
# NFA compilation (Thompson construction)
# ----------------------------------------------------------------------
class _NFA:
    """A nondeterministic finite automaton with epsilon moves over edge labels."""

    def __init__(self) -> None:
        self.transitions: List[Dict[Any, Set[int]]] = []
        self.epsilon: List[Set[int]] = []
        self.start = 0
        self.accept = 0

    def new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.transitions) - 1

    def add_transition(self, source: int, label: Any, target: int) -> None:
        self.transitions[source].setdefault(label, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].add(target)

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon[state]:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)


def _compile(expression: RegularExpression, nfa: _NFA) -> Tuple[int, int]:
    """Thompson construction; returns (start, accept) fragment states."""
    if isinstance(expression, Label):
        start, accept = nfa.new_state(), nfa.new_state()
        nfa.add_transition(start, expression.label, accept)
        return start, accept
    if isinstance(expression, Concat):
        left_start, left_accept = _compile(expression.left, nfa)
        right_start, right_accept = _compile(expression.right, nfa)
        nfa.add_epsilon(left_accept, right_start)
        return left_start, right_accept
    if isinstance(expression, Alt):
        start, accept = nfa.new_state(), nfa.new_state()
        left_start, left_accept = _compile(expression.left, nfa)
        right_start, right_accept = _compile(expression.right, nfa)
        nfa.add_epsilon(start, left_start)
        nfa.add_epsilon(start, right_start)
        nfa.add_epsilon(left_accept, accept)
        nfa.add_epsilon(right_accept, accept)
        return start, accept
    if isinstance(expression, Star):
        start, accept = nfa.new_state(), nfa.new_state()
        inner_start, inner_accept = _compile(expression.inner, nfa)
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, inner_start)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    if isinstance(expression, Plus):
        return _compile(Concat(expression.inner, Star(expression.inner)), nfa)
    if isinstance(expression, Opt):
        start, accept = nfa.new_state(), nfa.new_state()
        inner_start, inner_accept = _compile(expression.inner, nfa)
        nfa.add_epsilon(start, inner_start)
        nfa.add_epsilon(start, accept)
        nfa.add_epsilon(inner_accept, accept)
        return start, accept
    raise TypeError(f"unknown regular expression node {expression!r}")


# ----------------------------------------------------------------------
# The query object
# ----------------------------------------------------------------------
ANSWER_ATTRIBUTES = ("source", "target")


class RegularPathQuery:
    """A regular path query ``(x, y) : x -[L]-> y`` for a regular language ``L``.

    Examples
    --------
    >>> from repro.graphs import IncompleteGraph, parse_rpq
    >>> g = IncompleteGraph(edges=[("a", "r", "b"), ("b", "r", "c")])
    >>> q = parse_rpq("r . r")
    >>> sorted(q.evaluate(g).rows)
    [('a', 'c')]
    """

    def __init__(self, expression: RegularExpression, name: Optional[str] = None) -> None:
        if not isinstance(expression, RegularExpression):
            raise TypeError("expression must be a RegularExpression")
        self.expression = expression
        self.name = name if name is not None else str(expression)
        self._nfa = _NFA()
        self._start, self._accept = _compile(expression, self._nfa)

    def __repr__(self) -> str:
        return f"RegularPathQuery({self.name!r})"

    def __str__(self) -> str:
        return self.name

    # ------------------------------------------------------------------
    def labels(self) -> Set[Any]:
        """The edge labels mentioned by the expression."""
        result: Set[Any] = set()

        def walk(node: RegularExpression) -> None:
            if isinstance(node, Label):
                result.add(node.label)
            elif isinstance(node, (Concat, Alt)):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (Star, Plus, Opt)):
                walk(node.inner)

        walk(self.expression)
        return result

    # ------------------------------------------------------------------
    def evaluate(self, graph: IncompleteGraph) -> Relation:
        """Evaluate the RPQ on ``graph``, treating nulls as ordinary values.

        On a complete graph this is the standard RPQ semantics.  On an
        incomplete graph it is *naive evaluation*: a null edge label matches
        a query label only if they are (syntactically) equal, which for
        constant query labels means never; null nodes are traversed like
        any other node.
        """
        nfa = self._nfa
        adjacency = graph.successors()
        answers: Set[Tuple[Any, Any]] = set()
        initial = nfa.epsilon_closure({self._start})
        for start_node in graph.nodes():
            visited: Set[Tuple[Any, int]] = set()
            queue = deque((start_node, state) for state in initial)
            visited.update((start_node, state) for state in initial)
            if self._accept in initial:
                answers.add((start_node, start_node))
            while queue:
                node, state = queue.popleft()
                for label, target in adjacency.get(node, ()):
                    next_states = nfa.transitions[state].get(label)
                    if not next_states:
                        continue
                    for closure_state in nfa.epsilon_closure(next_states):
                        if (target, closure_state) in visited:
                            continue
                        visited.add((target, closure_state))
                        queue.append((target, closure_state))
                        if closure_state == self._accept:
                            answers.add((start_node, target))
        return Relation.create("Answer", sorted(answers, key=lambda p: (str(p[0]), str(p[1]))),
                               attributes=ANSWER_ATTRIBUTES) if answers else Relation.create(
            "Answer", [], attributes=ANSWER_ATTRIBUTES)

    def evaluate_boolean(self, graph: IncompleteGraph) -> bool:
        """``True`` iff the RPQ has at least one answer pair on ``graph``."""
        return bool(self.evaluate(graph).rows)


# ----------------------------------------------------------------------
# Certain answers
# ----------------------------------------------------------------------
def naive_certain_answers_rpq(query: RegularPathQuery, graph: IncompleteGraph) -> Relation:
    """Certain answers of an RPQ by naive evaluation (the paper's recipe, eq. (4)).

    RPQs are monotone (preserved under homomorphisms: a path maps to a
    path with the same label word) and generic, so by the paper's Section 6
    results naive evaluation followed by dropping null-mentioning answers
    computes exactly the certain answers — under both the OWA and the CWA
    interpretation of the incomplete graph.
    """
    answer = query.evaluate(graph)
    rows = [row for row in answer.rows if not any(is_null(v) for v in row)]
    return Relation(answer.schema, rows)


def certain_answers_rpq(
    query: RegularPathQuery,
    graph: IncompleteGraph,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Relation:
    """Intersection-based certain answers by explicit valuation enumeration.

    For ``semantics='cwa'`` the possible worlds are the valuation images
    ``v(G)``.  For ``semantics='owa'`` the worlds additionally include every
    extension of some ``v(G)``; because RPQs are monotone, extensions can
    only add answers, so the intersection over OWA worlds coincides with
    the intersection over the valuation images and the same enumeration is
    used.  This function is the exponential ground truth the naive shortcut
    is validated against.
    """
    if semantics not in ("cwa", "owa"):
        raise ValueError(f"unknown semantics {semantics!r}; use 'cwa' or 'owa'")
    if domain is None:
        domain = default_domain(graph.to_database(), extra_constants=extra_constants)
    certain: Optional[Set[Tuple[Any, Any]]] = None
    for valuation in enumerate_valuations(graph.nulls(), domain):
        world = graph.apply_valuation(valuation)
        rows = set(query.evaluate(world).rows)
        certain = rows if certain is None else certain & rows
        if not certain:
            break
    if certain is None:
        certain = set(query.evaluate(graph).rows)
    return Relation.create("Answer", sorted(certain, key=lambda p: (str(p[0]), str(p[1]))),
                           attributes=ANSWER_ATTRIBUTES) if certain else Relation.create(
        "Answer", [], attributes=ANSWER_ATTRIBUTES)
