"""Incomplete graph databases and certain answers for graph queries.

Section 7 of the paper ("Beyond relations: XML and graphs") points out that
for graph data "we know even less" about handling incompleteness, citing
regular-path-query work [14] and RDF incompleteness [56] as the starting
points.  This package carries the paper's programme over to edge-labelled
graphs:

* :mod:`repro.graphs.model` — incomplete graphs whose node identities and
  edge labels may be marked nulls, with a faithful relational encoding so
  the homomorphism / ordering / possible-world machinery of the relational
  core can be reused;
* :mod:`repro.graphs.rpq` — regular path queries (RPQs) with an NFA-based
  evaluator, naive evaluation over nulls, and certain answers (both the
  naive-evaluation shortcut justified by monotonicity + genericity, and the
  brute-force possible-world ground truth);
* :mod:`repro.graphs.patterns` — conjunctive graph patterns (the graph
  analogue of conjunctive queries) with homomorphism-based evaluation and
  certain answers;
* :mod:`repro.graphs.crpq` — conjunctive regular path queries, the query
  class of reference [14], combining both of the above.
"""

from .crpq import (
    ConjunctiveRPQ,
    PathAtom,
    certain_answers_crpq,
    naive_certain_answers_crpq,
)
from .model import GraphEdge, IncompleteGraph, graph_from_database, graph_to_database
from .patterns import EdgeAtom, GraphPattern, certain_answers_pattern, naive_certain_answers_pattern
from .rpq import (
    Alt,
    Concat,
    Label,
    Opt,
    Plus,
    RegularExpression,
    RegularPathQuery,
    RPQParseError,
    Star,
    certain_answers_rpq,
    naive_certain_answers_rpq,
    parse_rpq,
)

__all__ = [
    "Alt",
    "Concat",
    "ConjunctiveRPQ",
    "EdgeAtom",
    "GraphEdge",
    "GraphPattern",
    "IncompleteGraph",
    "Label",
    "Opt",
    "PathAtom",
    "Plus",
    "RPQParseError",
    "RegularExpression",
    "RegularPathQuery",
    "Star",
    "certain_answers_crpq",
    "certain_answers_pattern",
    "certain_answers_rpq",
    "graph_from_database",
    "graph_to_database",
    "naive_certain_answers_crpq",
    "naive_certain_answers_pattern",
    "naive_certain_answers_rpq",
    "parse_rpq",
]
