"""Incomplete graph databases.

An *incomplete graph* is a finite, directed, edge-labelled graph whose node
identities and edge labels are drawn from ``Const ∪ Null`` — exactly the
value model of the relational part of the library, so a marked null may
appear on several edges and must always be interpreted as the same value.
This mirrors the graph-data models surveyed by the paper's Section 7
references ([14] for graph patterns / regular path queries, [56] for
incomplete RDF, where blank nodes play the role of marked nulls).

The semantics is inherited from the relational case through a faithful
relational encoding (:func:`graph_to_database`): a world of an incomplete
graph is the graph obtained by applying a valuation to all nulls (CWA), or
any graph extending such an image (OWA).  All the machinery of
:mod:`repro.semantics`, :mod:`repro.homomorphisms` and
:mod:`repro.core.orderings` therefore applies to graphs unchanged.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..datamodel import Database, Null, Relation, Valuation
from ..datamodel.values import check_value, is_null

GraphEdge = Tuple[Any, Any, Any]
"""An edge is a triple ``(source node, label, target node)``."""

#: Relation names used by the relational encoding of a graph.
EDGE_RELATION = "Edge"
NODE_RELATION = "Node"


class IncompleteGraph:
    """A directed, edge-labelled graph over constants and marked nulls.

    The graph is immutable; transformation methods return new graphs.
    Nodes mentioned by an edge need not be listed explicitly, but isolated
    nodes must be.

    Examples
    --------
    >>> from repro.datamodel import Null
    >>> g = IncompleteGraph(edges=[("a", "knows", Null("x")), (Null("x"), "knows", "b")])
    >>> sorted(str(n) for n in g.nodes())
    ['a', 'b', '⊥x']
    >>> g.is_complete()
    False
    """

    __slots__ = ("_edges", "_nodes", "_hash")

    def __init__(
        self,
        edges: Iterable[Sequence[Any]] = (),
        nodes: Iterable[Any] = (),
    ) -> None:
        frozen_edges: Set[GraphEdge] = set()
        for edge in edges:
            edge = tuple(edge)
            if len(edge) != 3:
                raise ValueError(f"an edge must be (source, label, target), got {edge!r}")
            frozen_edges.add((check_value(edge[0]), check_value(edge[1]), check_value(edge[2])))
        all_nodes: Set[Any] = {check_value(n) for n in nodes}
        for source, _label, target in frozen_edges:
            all_nodes.add(source)
            all_nodes.add(target)
        self._edges: FrozenSet[GraphEdge] = frozenset(frozen_edges)
        self._nodes: FrozenSet[Any] = frozenset(all_nodes)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def edges(self) -> FrozenSet[GraphEdge]:
        """The set of ``(source, label, target)`` edges."""
        return self._edges

    def nodes(self) -> FrozenSet[Any]:
        """The set of nodes (including isolated ones)."""
        return self._nodes

    def labels(self) -> Set[Any]:
        """The set of edge labels occurring in the graph."""
        return {label for _s, label, _t in self._edges}

    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[GraphEdge]:
        return iter(self._edges)

    def __contains__(self, edge: object) -> bool:
        return edge in self._edges

    def __bool__(self) -> bool:
        return bool(self._edges) or bool(self._nodes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IncompleteGraph):
            return self._edges == other._edges and self._nodes == other._nodes
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._edges, self._nodes))
        return self._hash

    def __repr__(self) -> str:
        return f"IncompleteGraph(nodes={len(self._nodes)}, edges={len(self._edges)})"

    def sorted_edges(self) -> List[GraphEdge]:
        """Edges in a deterministic order (for rendering and tests)."""
        return sorted(self._edges, key=lambda e: tuple(str(v) for v in e))

    def to_text(self) -> str:
        """A human-readable rendering, one ``u -label-> v`` line per edge."""
        lines = [f"{s} -{label}-> {t}" for s, label, t in self.sorted_edges()]
        isolated = sorted(
            (str(n) for n in self._nodes if not any(n in (s, t) for s, _l, t in self._edges)),
        )
        lines.extend(f"{n} (isolated)" for n in isolated)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # nulls, constants, completeness
    # ------------------------------------------------------------------
    def nulls(self) -> Set[Null]:
        """All marked nulls occurring as nodes or labels."""
        values = set(self._nodes)
        for edge in self._edges:
            values.update(edge)
        return {v for v in values if is_null(v)}

    def constants(self) -> Set[Any]:
        """All constants occurring as nodes or labels."""
        values = set(self._nodes)
        for edge in self._edges:
            values.update(edge)
        return {v for v in values if not is_null(v)}

    def active_domain(self) -> Set[Any]:
        """All values (nodes and labels), constants and nulls alike."""
        return self.constants() | self.nulls()

    def is_complete(self) -> bool:
        """``True`` iff the graph mentions no nulls."""
        return not self.nulls()

    # ------------------------------------------------------------------
    # adjacency (used by the RPQ evaluator)
    # ------------------------------------------------------------------
    def successors(self) -> Dict[Any, List[Tuple[Any, Any]]]:
        """Adjacency map: node ``u`` → list of ``(label, v)`` with an edge ``u -label-> v``."""
        adjacency: Dict[Any, List[Tuple[Any, Any]]] = {node: [] for node in self._nodes}
        for source, label, target in self._edges:
            adjacency[source].append((label, target))
        return adjacency

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def map_values(self, function) -> "IncompleteGraph":
        """Apply ``function`` to every node and label."""
        return IncompleteGraph(
            edges=[(function(s), function(l), function(t)) for s, l, t in self._edges],
            nodes=[function(n) for n in self._nodes],
        )

    def apply_valuation(self, valuation: Valuation) -> "IncompleteGraph":
        """The graph ``v(G)`` with every null replaced by its image."""
        return self.map_values(valuation)

    def add_edges(self, edges: Iterable[Sequence[Any]]) -> "IncompleteGraph":
        """A graph extended with the given edges."""
        return IncompleteGraph(edges=list(self._edges) + [tuple(e) for e in edges], nodes=self._nodes)

    def union(self, other: "IncompleteGraph") -> "IncompleteGraph":
        """Node- and edge-wise union of two graphs."""
        return IncompleteGraph(
            edges=list(self._edges) + list(other._edges),
            nodes=list(self._nodes) + list(other._nodes),
        )

    def subgraph(self, nodes: Iterable[Any]) -> "IncompleteGraph":
        """The subgraph induced by ``nodes``."""
        keep = set(nodes)
        return IncompleteGraph(
            edges=[e for e in self._edges if e[0] in keep and e[2] in keep],
            nodes=[n for n in self._nodes if n in keep],
        )

    def contains_graph(self, other: "IncompleteGraph") -> bool:
        """``True`` iff every node and edge of ``other`` is present here."""
        return other._nodes <= self._nodes and other._edges <= self._edges

    # ------------------------------------------------------------------
    # relational encoding
    # ------------------------------------------------------------------
    def to_database(self) -> Database:
        """The relational encoding ``Node(id)``, ``Edge(source, label, target)``.

        The encoding is faithful: valuations, homomorphisms and the
        OWA/CWA orderings on the encoded database coincide with the
        corresponding notions on the graph, so all relational machinery of
        the library can be reused on graphs.
        """
        return graph_to_database(self)

    @classmethod
    def from_database(cls, database: Database) -> "IncompleteGraph":
        """Inverse of :meth:`to_database`."""
        return graph_from_database(database)


def graph_to_database(graph: IncompleteGraph) -> Database:
    """Encode ``graph`` as a database with ``Node``/``Edge`` relations."""
    node_relation = Relation.create(
        NODE_RELATION,
        [(node,) for node in graph.nodes()],
        attributes=("id",),
    ) if graph.nodes() else Relation.create(NODE_RELATION, [], attributes=("id",))
    edge_relation = Relation.create(
        EDGE_RELATION,
        list(graph.edges()),
        attributes=("source", "label", "target"),
    ) if graph.edges() else Relation.create(EDGE_RELATION, [], attributes=("source", "label", "target"))
    return Database.from_relations([node_relation, edge_relation])


def graph_from_database(database: Database) -> IncompleteGraph:
    """Decode a ``Node``/``Edge`` database back into an :class:`IncompleteGraph`."""
    if EDGE_RELATION not in database:
        raise KeyError(f"database has no {EDGE_RELATION!r} relation")
    edges = list(database.relation(EDGE_RELATION).rows)
    nodes: List[Any] = []
    if NODE_RELATION in database:
        nodes = [row[0] for row in database.relation(NODE_RELATION).rows]
    return IncompleteGraph(edges=edges, nodes=nodes)
