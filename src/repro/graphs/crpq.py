"""Conjunctive regular path queries (CRPQs) over incomplete graphs.

A CRPQ — the query class of the paper's Section 7 reference [14]
(Barceló–Libkin–Reutter, *Querying regular graph patterns*) — is a
conjunction of regular-path atoms ``x ─L→ y`` whose endpoints are variables
or constants and whose ``L`` is a regular language over edge labels, with a
tuple of output variables.  It generalises both conjunctive graph patterns
(every atom a single label) and plain RPQs (a single atom).

CRPQs are unions of (infinitely many) conjunctive queries, hence monotone
and generic, so the paper's naive-evaluation theorems carry over once more:
naive evaluation over the incomplete graph followed by dropping null
answers computes the certain answers, under OWA and CWA alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..datamodel import Relation, enumerate_valuations
from ..datamodel.values import is_null
from ..logic.formulas import Variable, is_variable
from ..semantics.worlds import default_domain
from .model import IncompleteGraph
from .rpq import RegularPathQuery, parse_rpq

Term = Union[Variable, Any]


@dataclass(frozen=True)
class PathAtom:
    """A CRPQ atom ``source ─[rpq]→ target``.

    ``source`` and ``target`` are variables or constants; ``rpq`` is a
    :class:`~repro.graphs.rpq.RegularPathQuery` or a textual expression
    accepted by :func:`~repro.graphs.rpq.parse_rpq`.
    """

    source: Term
    rpq: RegularPathQuery
    target: Term

    def __init__(self, source: Term, rpq: Union[RegularPathQuery, str], target: Term) -> None:
        if isinstance(rpq, str):
            rpq = parse_rpq(rpq)
        if not isinstance(rpq, RegularPathQuery):
            raise TypeError("the middle component of a PathAtom must be an RPQ or its text")
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "rpq", rpq)
        object.__setattr__(self, "target", target)

    def variables(self) -> Set[Variable]:
        """The endpoint variables of the atom."""
        return {t for t in (self.source, self.target) if is_variable(t)}

    def __str__(self) -> str:
        return f"{self.source} ─[{self.rpq}]→ {self.target}"


class ConjunctiveRPQ:
    """A conjunctive regular path query with output variables.

    Examples
    --------
    >>> from repro.logic import var
    >>> from repro.graphs import IncompleteGraph
    >>> x, y = var("x"), var("y")
    >>> g = IncompleteGraph(edges=[("a", "r", "b"), ("b", "r", "c"), ("c", "s", "d")])
    >>> q = ConjunctiveRPQ([PathAtom(x, "r . r", y), PathAtom(y, "s", var("z"))], output=(x,))
    >>> sorted(q.evaluate(g).rows)
    [('a',)]
    """

    def __init__(
        self,
        atoms: Sequence[PathAtom],
        output: Sequence[Variable] = (),
        name: str = "CRPQ",
    ) -> None:
        self.atoms: Tuple[PathAtom, ...] = tuple(atoms)
        if not self.atoms:
            raise ValueError("a CRPQ needs at least one path atom")
        self.output: Tuple[Variable, ...] = tuple(output)
        self.name = name
        declared = self.variables()
        for variable in self.output:
            if variable not in declared:
                raise ValueError(f"output variable {variable} does not occur in the query")

    def variables(self) -> Set[Variable]:
        """All endpoint variables of the query."""
        result: Set[Variable] = set()
        for atom in self.atoms:
            result |= atom.variables()
        return result

    def is_boolean(self) -> bool:
        """``True`` iff the query has no output variables."""
        return not self.output

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        head = ", ".join(str(v) for v in self.output)
        return f"({head}) ← {body}" if self.output else body

    def __repr__(self) -> str:
        return f"ConjunctiveRPQ({self.name!r}, atoms={len(self.atoms)}, output={len(self.output)})"

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def matches(self, graph: IncompleteGraph) -> Iterator[Dict[Variable, Any]]:
        """Enumerate the endpoint assignments satisfying every path atom.

        Each atom's reachable pairs are computed once with the RPQ
        evaluator; the conjunction is then solved by backtracking over those
        pair sets (smallest first).  Matching is naive over nulls.
        """
        atom_pairs: List[Tuple[PathAtom, Set[Tuple[Any, Any]]]] = [
            (atom, set(atom.rpq.evaluate(graph).rows)) for atom in self.atoms
        ]
        atom_pairs.sort(key=lambda item: len(item[1]))

        def backtrack(index: int, assignment: Dict[Variable, Any]) -> Iterator[Dict[Variable, Any]]:
            if index == len(atom_pairs):
                yield dict(assignment)
                return
            atom, pairs = atom_pairs[index]
            for source, target in pairs:
                extension: Dict[Variable, Any] = {}
                consistent = True
                for term, value in ((atom.source, source), (atom.target, target)):
                    if is_variable(term):
                        bound = assignment.get(term, extension.get(term, _UNBOUND))
                        if bound is _UNBOUND:
                            extension[term] = value
                        elif bound != value:
                            consistent = False
                            break
                    elif term != value:
                        consistent = False
                        break
                if not consistent:
                    continue
                assignment.update(extension)
                yield from backtrack(index + 1, assignment)
                for key in extension:
                    del assignment[key]

        yield from backtrack(0, {})

    def evaluate(self, graph: IncompleteGraph) -> Relation:
        """Naive evaluation: images of the output tuple over all matches."""
        attributes = tuple(v.name for v in self.output) if self.output else ("match",)
        rows: Set[Tuple[Any, ...]] = set()
        for assignment in self.matches(graph):
            if self.output:
                rows.add(tuple(assignment[v] for v in self.output))
            else:
                rows.add(("true",))
        sorted_rows = sorted(rows, key=lambda r: tuple(str(v) for v in r))
        return Relation.create(self.name, sorted_rows, attributes=attributes) if sorted_rows else Relation.create(
            self.name, [], attributes=attributes)

    def evaluate_boolean(self, graph: IncompleteGraph) -> bool:
        """``True`` iff the query has at least one match."""
        for _assignment in self.matches(graph):
            return True
        return False


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


# ----------------------------------------------------------------------
# Certain answers
# ----------------------------------------------------------------------
def naive_certain_answers_crpq(query: ConjunctiveRPQ, graph: IncompleteGraph) -> Relation:
    """Certain answers of a CRPQ by naive evaluation plus null filtering.

    CRPQs are monotone and generic, so the paper's eqs. (4)/(9) apply:
    the null-free naive answers are exactly the certain answers under both
    OWA and CWA.
    """
    answer = query.evaluate(graph)
    rows = [row for row in answer.rows if not any(is_null(v) for v in row)]
    return Relation(answer.schema, rows)


def certain_answers_crpq(
    query: ConjunctiveRPQ,
    graph: IncompleteGraph,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Relation:
    """Intersection-based certain answers by explicit valuation enumeration.

    Monotonicity makes the OWA and CWA intersections coincide, so one
    enumeration over valuation images serves both semantics; this is the
    exponential ground truth the naive shortcut is validated against.
    """
    if semantics not in ("cwa", "owa"):
        raise ValueError(f"unknown semantics {semantics!r}; use 'cwa' or 'owa'")
    if domain is None:
        domain = default_domain(graph.to_database(), extra_constants=extra_constants)
    schema = query.evaluate(graph).schema
    certain: Optional[Set[Tuple[Any, ...]]] = None
    for valuation in enumerate_valuations(graph.nulls(), domain):
        world = graph.apply_valuation(valuation)
        rows = set(query.evaluate(world).rows)
        certain = rows if certain is None else certain & rows
        if not certain:
            break
    if certain is None:
        certain = set(query.evaluate(graph).rows)
    return Relation(schema, certain)
