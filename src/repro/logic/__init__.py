"""First-order logic over relational vocabularies.

Contents:

* :mod:`repro.logic.formulas` — terms, formulas, active-domain evaluation
  (naive satisfaction on databases with nulls) and :class:`FOQuery`;
* :mod:`repro.logic.fragments` — CQ / UCQ / positive / Pos∀G classifiers;
* :mod:`repro.logic.diagrams` — positive diagrams, the δ-formulas of
  Section 5.2 and the database-as-query duality of Section 4;
* :mod:`repro.logic.containment` — conjunctive-query containment
  (Chandra–Merlin) and certain answers via containment;
* :mod:`repro.logic.translation` — relational algebra → calculus
  translation used to relate RA_cwa and Pos∀G.
"""

from .containment import (
    are_equivalent,
    certain_boolean_via_containment,
    homomorphism_witnesses_containment,
    is_contained,
    is_contained_boolean,
)
from .diagrams import (
    adom_closure,
    database_as_query,
    delta,
    delta_cwa,
    delta_owa,
    delta_wcwa,
    domain_closure,
    positive_diagram,
    tableau_of_query,
)
from .formulas import (
    And,
    Bottom,
    Equality,
    Exists,
    FOQuery,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelationAtom,
    Top,
    Variable,
    atom,
    conj,
    disj,
    equals,
    exists,
    forall,
    is_variable,
    term_value,
    var,
    variables,
)
from .fragments import (
    FormulaFragment,
    classify_formula,
    classify_query,
    is_conjunctive,
    is_existential_positive,
    is_pos_forall_guarded,
    is_positive,
    is_ucq,
)
from .translation import TranslationError, ra_to_calculus

__all__ = [
    "And",
    "Bottom",
    "Equality",
    "Exists",
    "FOQuery",
    "Forall",
    "Formula",
    "FormulaFragment",
    "Implies",
    "Not",
    "Or",
    "RelationAtom",
    "Top",
    "TranslationError",
    "Variable",
    "adom_closure",
    "are_equivalent",
    "atom",
    "certain_boolean_via_containment",
    "classify_formula",
    "classify_query",
    "conj",
    "database_as_query",
    "delta",
    "delta_cwa",
    "delta_owa",
    "delta_wcwa",
    "disj",
    "domain_closure",
    "equals",
    "exists",
    "forall",
    "homomorphism_witnesses_containment",
    "is_conjunctive",
    "is_contained",
    "is_contained_boolean",
    "is_existential_positive",
    "is_pos_forall_guarded",
    "is_positive",
    "is_ucq",
    "is_variable",
    "positive_diagram",
    "ra_to_calculus",
    "tableau_of_query",
    "term_value",
    "var",
    "variables",
]
