"""Conjunctive-query containment and its link to certain answers.

By the Chandra–Merlin theorem, a Boolean conjunctive query ``Q₁`` is
contained in ``Q₂`` iff there is a homomorphism from the tableau of ``Q₂``
to the tableau of ``Q₁`` — equivalently, iff the tableau of ``Q₁``
(naively) satisfies ``Q₂``.  Section 4 of the paper uses this duality to
explain *why* naive evaluation computes certain answers of conjunctive
queries under OWA:

    ``certain(Q, D)`` is true  iff  ``Q_D ⊆ Q``  iff  ``D ⊨ Q`` (naively),

where ``Q_D = ∃x̄ PosDiag(D)`` is the database viewed as a query.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..datamodel import Database
from ..datamodel.schema import DatabaseSchema
from ..homomorphisms import exists_homomorphism, find_homomorphism
from .diagrams import database_as_query, tableau_of_query
from .formulas import FOQuery
from .fragments import is_conjunctive


def is_contained_boolean(query1: FOQuery, query2: FOQuery, schema: DatabaseSchema) -> bool:
    """``Q₁ ⊆ Q₂`` for Boolean conjunctive queries over ``schema``.

    Decided by naive satisfaction of ``Q₂`` on the tableau of ``Q₁``
    (Chandra–Merlin).
    """
    if query1.head or query2.head:
        raise ValueError("is_contained_boolean expects Boolean queries; use is_contained")
    if not is_conjunctive(query1.formula) or not is_conjunctive(query2.formula):
        raise ValueError("containment is implemented for conjunctive queries")
    tableau, _ = tableau_of_query(query1, schema)
    return query2.formula.holds(tableau)


def is_contained(query1: FOQuery, query2: FOQuery, schema: DatabaseSchema) -> bool:
    """``Q₁ ⊆ Q₂`` for conjunctive queries with the same head arity.

    The head variables of ``Q₁`` are frozen into constants; containment
    holds iff evaluating ``Q₂`` on the frozen tableau returns the frozen
    head tuple.
    """
    if len(query1.head) != len(query2.head):
        raise ValueError("containment requires queries of the same arity")
    if not query1.head:
        return is_contained_boolean(query1, query2, schema)
    if not is_conjunctive(query1.formula) or not is_conjunctive(query2.formula):
        raise ValueError("containment is implemented for conjunctive queries")
    tableau, frozen_head = tableau_of_query(query1, schema, freeze_head=True)
    answers = query2.evaluate(tableau)
    return tuple(frozen_head) in answers.rows


def are_equivalent(query1: FOQuery, query2: FOQuery, schema: DatabaseSchema) -> bool:
    """Mutual containment of two conjunctive queries."""
    return is_contained(query1, query2, schema) and is_contained(query2, query1, schema)


def certain_boolean_via_containment(query: FOQuery, database: Database) -> bool:
    """Certain answer (OWA) of a Boolean CQ via the containment duality.

    ``certain_owa(Q, D)`` is true iff ``Q_D ⊆ Q`` iff ``D ⊨ Q`` — i.e. naive
    evaluation.  Both formulations are computed here and must agree; the
    function returns the containment-side verdict.
    """
    if query.head:
        raise ValueError("certain_boolean_via_containment expects a Boolean query")
    if not is_conjunctive(query.formula):
        raise ValueError("the containment duality applies to conjunctive queries")
    q_d = database_as_query(database)
    contained = is_contained_boolean(q_d, query, database.schema)
    return contained


def homomorphism_witnesses_containment(
    query1: FOQuery, query2: FOQuery, schema: DatabaseSchema
) -> Optional[object]:
    """A homomorphism from the tableau of ``Q₂`` to the tableau of ``Q₁``, if any.

    Its existence is equivalent to ``Q₁ ⊆ Q₂`` for Boolean CQs; returned for
    inspection in tests demonstrating the Chandra–Merlin duality.
    """
    tableau1, _ = tableau_of_query(query1, schema)
    tableau2, _ = tableau_of_query(query2, schema)
    return find_homomorphism(tableau2, tableau1)
