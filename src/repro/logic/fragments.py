"""Syntactic fragments of first-order logic used in the paper.

* **Conjunctive queries (CQ)** — ``∃, ∧`` over relational atoms and
  equalities (select-project-join).
* **Unions of conjunctive queries (UCQ) / existential positive** —
  ``∃, ∧, ∨``; equivalent to the positive relational algebra.  Naive
  evaluation computes certain answers for this class under OWA and CWA,
  and under OWA the class is optimal for FO (Section 2 and 6.2).
* **Positive formulas (Pos)** — no negation: ``∧, ∨, ∃, ∀``.  These form a
  representation system for the weak CWA.
* **Positive formulas with universal guards (Pos∀G)** — positive formulas
  closed under the rule: if ``φ(x̄, ȳ)`` is Pos∀G, all variables of ``x̄``
  distinct, and ``R`` has arity ``|x̄|``, then ``∀x̄ (R(x̄) → φ(x̄, ȳ))`` is
  Pos∀G.  The paper shows Pos∀G = RA_cwa and that CWA-naive evaluation is
  correct for it (Section 6.2); the key semantic property is preservation
  under strong onto homomorphisms.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from .formulas import (
    And,
    Bottom,
    Equality,
    Exists,
    FOQuery,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelationAtom,
    Top,
    Variable,
    is_variable,
)


class FormulaFragment(Enum):
    """Fragments ordered by how much naive evaluation can be trusted."""

    CQ = "cq"
    """Conjunctive query: ∃, ∧ over atoms."""

    UCQ = "ucq"
    """Union of conjunctive queries / existential positive: ∃, ∧, ∨."""

    POSITIVE = "positive"
    """Positive FO: ∧, ∨, ∃, ∀ (no negation)."""

    POS_FORALL_GUARDED = "pos_forall_guarded"
    """Positive FO with universally guarded ∀ (the paper's Pos∀G)."""

    FO = "fo"
    """Full first-order logic."""


_ATOMIC = (RelationAtom, Equality, Top, Bottom)


def is_conjunctive(formula: Formula) -> bool:
    """``True`` iff the formula is a conjunctive query (∃, ∧ over atoms)."""
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, And):
        return all(is_conjunctive(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return is_conjunctive(formula.body)
    return False


def is_ucq(formula: Formula) -> bool:
    """``True`` iff the formula is existential positive (∃, ∧, ∨ over atoms)."""
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_ucq(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return is_ucq(formula.body)
    return False


# Existential positive formulas are exactly the UCQs up to normalisation.
is_existential_positive = is_ucq


def is_positive(formula: Formula) -> bool:
    """``True`` iff the formula uses no negation or implication (∧, ∨, ∃, ∀)."""
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_positive(op) for op in formula.operands)
    if isinstance(formula, (Exists, Forall)):
        return is_positive(formula.body)
    return False


def _is_guarded_forall(formula: Forall) -> bool:
    """Check the Pos∀G rule: ``∀x̄ (R(x̄) → φ)`` with an atomic guard on distinct variables."""
    body = formula.body
    if not isinstance(body, Implies):
        return False
    guard = body.antecedent
    if not isinstance(guard, RelationAtom):
        return False
    guard_vars = [t for t in guard.terms if is_variable(t)]
    if len(guard.terms) != len(guard_vars):
        return False
    if len(set(guard_vars)) != len(guard_vars):
        return False
    if set(formula.variables) != set(guard_vars):
        return False
    return is_pos_forall_guarded(body.consequent)


def is_pos_forall_guarded(formula: Formula) -> bool:
    """``True`` iff the formula is in the paper's Pos∀G class.

    Pos∀G formulas are built from atoms with ``∧, ∨, ∃`` and the guarded
    universal rule ``∀x̄ (R(x̄) → φ(x̄, ȳ))`` where ``R`` is a relation
    symbol, the guard variables are distinct, and ``φ`` is again Pos∀G.
    An unguarded ``∀`` (plain positive universal quantification) is *not*
    accepted here even though it is positive — the class is exactly the one
    Section 6.2 relates to ``RA_cwa``.
    """
    if isinstance(formula, _ATOMIC):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_pos_forall_guarded(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return is_pos_forall_guarded(formula.body)
    if isinstance(formula, Forall):
        return _is_guarded_forall(formula)
    return False


def classify_formula(formula: Formula) -> FormulaFragment:
    """The smallest fragment of this module containing ``formula``."""
    if is_conjunctive(formula):
        return FormulaFragment.CQ
    if is_ucq(formula):
        return FormulaFragment.UCQ
    if is_pos_forall_guarded(formula):
        return FormulaFragment.POS_FORALL_GUARDED
    if is_positive(formula):
        return FormulaFragment.POSITIVE
    return FormulaFragment.FO


def classify_query(query: Union[FOQuery, Formula]) -> FormulaFragment:
    """Classify a query by the fragment of its formula."""
    formula = query.formula if isinstance(query, FOQuery) else query
    return classify_formula(formula)
