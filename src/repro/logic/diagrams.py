"""The duality between incomplete databases and logical formulas.

Section 4 of the paper views an incomplete database ``D`` as a query/formula
and Section 5.2 builds, for every ``D``, a formula ``δ_D`` whose complete
models are exactly the semantics of ``D``:

* under OWA, ``δ_D^owa = ∃x̄ PosDiag(D)`` where ``PosDiag(D)`` (the positive
  diagram) is the conjunction of the atoms of ``D`` with every null ``⊥_i``
  replaced by a variable ``x_i``; then ``Mod_C(δ_D^owa) = [[D]]_owa``;
* under CWA, ``δ_D^cwa`` adds, for every relation ``R``, the domain-closure
  conjunct ``∀ȳ (R(ȳ) → ⋁_{t̄ ∈ R^D} ȳ = t̄)``; then
  ``Mod_C(δ_D^cwa) = [[D]]_cwa``.

Conversely, a Boolean conjunctive query ``Q`` has a *tableau* (canonical
database) ``D_Q`` obtained by turning its variables into nulls; then
``Mod_C(Q) = [[D_Q]]_owa``, which is the duality used to reduce certain
answering to containment and to naive satisfaction (``D ⊨ Q``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datamodel import Database, Null, Relation
from ..datamodel.schema import DatabaseSchema
from .formulas import (
    And,
    Equality,
    Exists,
    FOQuery,
    Forall,
    Formula,
    Implies,
    Or,
    RelationAtom,
    Top,
    Variable,
    conj,
    disj,
)


def _null_variable_map(database: Database) -> Dict[Null, Variable]:
    """A fresh variable ``x_i`` for every null ``⊥_i`` of the database."""
    return {
        null: Variable(f"x_{null.name}")
        for null in sorted(database.nulls(), key=lambda n: n.name)
    }


def positive_diagram(database: Database) -> Tuple[Formula, List[Variable]]:
    """``PosDiag(D)``: the conjunction of the atoms of ``D`` with nulls as variables.

    Returns the (quantifier-free) conjunction together with the list of
    variables standing for the nulls, in a deterministic order.

    Examples
    --------
    For ``R = {(1,2), (2,⊥1), (⊥1,⊥2)}`` the diagram is
    ``R(1,2) ∧ R(2,x_1) ∧ R(x_1,x_2)`` (paper, Section 5.2).
    """
    mapping = _null_variable_map(database)

    def to_term(value):
        if isinstance(value, Null):
            return mapping[value]
        return value

    atoms: List[Formula] = []
    for rel in database.relations():
        for row in rel.sorted_rows():
            atoms.append(RelationAtom(rel.name, tuple(to_term(v) for v in row)))
    variables = [mapping[null] for null in sorted(mapping, key=lambda n: n.name)]
    return conj(*atoms), variables


def delta_owa(database: Database) -> Formula:
    """``δ_D`` under OWA: ``∃x̄ PosDiag(D)``, with ``Mod_C(δ_D) = [[D]]_owa``."""
    diagram, variables = positive_diagram(database)
    if not variables:
        return diagram
    return Exists(variables, diagram)


def domain_closure(database: Database) -> Formula:
    """The CWA closure conjunct: for every relation, every tuple equals a listed one.

    For a relation ``R`` with tuples ``t̄_1, …, t̄_n`` this is
    ``∀ȳ (R(ȳ) → ⋁_i ȳ = t̄_i)``; nulls in the ``t̄_i`` refer to the same
    variables used by :func:`positive_diagram`, so the conjunct must be
    used under the same quantifier prefix (see :func:`delta_cwa`).
    """
    mapping = _null_variable_map(database)

    def to_term(value):
        if isinstance(value, Null):
            return mapping[value]
        return value

    closures: List[Formula] = []
    for rel in database.relations():
        arity = rel.arity
        if arity == 0:
            continue
        ys = [Variable(f"y_{rel.name}_{i}") for i in range(arity)]
        disjuncts: List[Formula] = []
        for row in rel.sorted_rows():
            equalities = [Equality(y, to_term(value)) for y, value in zip(ys, row)]
            disjuncts.append(conj(*equalities))
        body = Implies(RelationAtom(rel.name, tuple(ys)), disj(*disjuncts))
        closures.append(Forall(ys, body))
    return conj(*closures)


def delta_cwa(database: Database) -> Formula:
    """``δ_D`` under CWA: positive diagram plus domain closure, existentially closed.

    ``Mod_C(δ_D^cwa) = [[D]]_cwa`` (paper, Section 5.2).
    """
    diagram, variables = positive_diagram(database)
    closure = domain_closure(database)
    body = conj(diagram, closure)
    if not variables:
        return body
    return Exists(variables, body)


def adom_closure(database: Database) -> Formula:
    """The weak-CWA closure: every active-domain element is one of D's values.

    Under the active-domain semantics of quantification, the positive
    formula ``∀y ⋁_{v ∈ values(D)} y = v`` says exactly that the complete
    database introduces no elements beyond those of ``v(D)`` (nulls refer to
    the same variables as :func:`positive_diagram`).  Tuples may still be
    added freely over the old elements — Reiter's weak closed-world
    assumption.
    """
    mapping = _null_variable_map(database)

    def to_term(value):
        if isinstance(value, Null):
            return mapping[value]
        return value

    values = sorted(database.active_domain(), key=lambda v: (str(type(v)), str(v)))
    if not values:
        return conj()
    y = Variable("y_adom")
    return Forall([y], disj(*(Equality(y, to_term(value)) for value in values)))


def delta_wcwa(database: Database) -> Formula:
    """``δ_D`` under the weak CWA: diagram plus active-domain closure.

    The formula is *positive* (no implication or negation), matching the
    paper's remark that the weak-CWA representation system uses positive FO
    formulas, and ``Mod_C(δ_D^wcwa) = [[D]]_wcwa``.
    """
    diagram, variables = positive_diagram(database)
    body = conj(diagram, adom_closure(database))
    if not variables:
        return body
    return Exists(variables, body)


def delta(database: Database, semantics: str = "owa") -> Formula:
    """Dispatch to :func:`delta_owa`, :func:`delta_cwa` or :func:`delta_wcwa`."""
    if semantics == "owa":
        return delta_owa(database)
    if semantics == "cwa":
        return delta_cwa(database)
    if semantics == "wcwa":
        return delta_wcwa(database)
    raise ValueError(f"unknown semantics {semantics!r}; expected 'owa', 'cwa' or 'wcwa'")


def database_as_query(database: Database, name: str = "Q_D") -> FOQuery:
    """The Boolean conjunctive query ``Q_D = ∃x̄ PosDiag(D)`` (Section 4)."""
    return FOQuery(delta_owa(database), (), name=name)


def tableau_of_query(
    query: FOQuery,
    schema: DatabaseSchema,
    freeze_head: bool = False,
) -> Tuple[Database, Tuple[object, ...]]:
    """The canonical database (tableau) of a conjunctive query.

    Every variable of the query becomes a marked null; relational atoms
    become facts.  For queries with free variables, ``freeze_head=True``
    turns the head variables into distinguished *frozen constants*
    (strings ``"_frozen_<var>"``), which is the standard construction for
    containment of non-Boolean CQs.  Equality atoms are not supported —
    normalise them away by substitution before calling.

    Returns the tableau database and the tuple corresponding to the query
    head (nulls or frozen constants, depending on ``freeze_head``).
    """
    from .fragments import is_conjunctive

    if not is_conjunctive(query.formula):
        raise ValueError("tableau_of_query expects a conjunctive query")

    variable_map: Dict[Variable, object] = {}

    def to_value(term):
        if isinstance(term, Variable):
            if term not in variable_map:
                if freeze_head and term in query.head:
                    variable_map[term] = f"_frozen_{term.name}"
                else:
                    variable_map[term] = Null(f"v_{term.name}")
            return variable_map[term]
        return term

    facts = []
    for sub in query.formula.walk():
        if isinstance(sub, Equality):
            raise ValueError(
                "tableau_of_query does not support equality atoms; substitute them away first"
            )
        if isinstance(sub, RelationAtom):
            facts.append((sub.name, tuple(to_value(t) for t in sub.terms)))
    tableau = Database.from_facts(schema, facts)
    head = tuple(to_value(v) for v in query.head)
    return tableau, head
