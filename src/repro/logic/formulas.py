"""First-order logic over relational vocabularies.

Relational calculus is the declarative counterpart of relational algebra
(paper, Section 2).  This module defines terms (variables and constants),
formulas (relational atoms, equality, the Boolean connectives and
quantifiers) and their evaluation on database instances under the
*active-domain* semantics: quantifiers range over ``adom(D)`` plus the
constants mentioned in the formula.

Evaluation is purely syntactic on values, so applying it to a database
with nulls is precisely *naive satisfaction* — the relation ``D ⊨ φ`` used
in Section 4 of the paper, where nulls behave as ordinary values.  The SQL
three-valued reading of logic lives in :mod:`repro.sqlnulls`, not here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..datamodel import Database, Relation
from ..datamodel.schema import RelationSchema
from ..datamodel.values import Null, is_null


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variable:
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = Union[Variable, Any]
"""A term is a variable or a constant (any non-``Variable`` value, including nulls)."""


def is_variable(term: Any) -> bool:
    """``True`` iff ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def term_value(term: Term, assignment: Mapping[Variable, Any]) -> Any:
    """The value of a term under an assignment (constants evaluate to themselves)."""
    if isinstance(term, Variable):
        try:
            return assignment[term]
        except KeyError:
            raise KeyError(f"unbound variable {term}") from None
    return term


def variables_in(terms: Iterable[Term]) -> Set[Variable]:
    """The variables among ``terms``."""
    return {t for t in terms if isinstance(t, Variable)}


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
class Formula:
    """Base class of first-order formulas."""

    def free_variables(self) -> Set[Variable]:
        """The free variables of the formula."""
        raise NotImplementedError

    def constants(self) -> Set[Any]:
        """The constants (including nulls used as constants) mentioned."""
        raise NotImplementedError

    def relation_names(self) -> Set[str]:
        """The relation symbols mentioned."""
        raise NotImplementedError

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas."""
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        """All subformulas, pre-order."""
        stack: List[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def holds(self, database: Database, assignment: Optional[Mapping[Variable, Any]] = None) -> bool:
        """Truth of the formula in ``database`` under ``assignment`` (active-domain semantics)."""
        domain = sorted(
            database.active_domain() | self.constants(), key=lambda v: (str(type(v)), str(v))
        )
        return self._eval(database, dict(assignment or {}), domain)

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        raise NotImplementedError

    # -- connective sugar ------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Top(Formula):
    """The formula ``⊤`` (always true)."""

    def free_variables(self) -> Set[Variable]:
        return set()

    def constants(self) -> Set[Any]:
        return set()

    def relation_names(self) -> Set[str]:
        return set()

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return True

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Bottom(Formula):
    """The formula ``⊥`` (always false)."""

    def free_variables(self) -> Set[Variable]:
        return set()

    def constants(self) -> Set[Any]:
        return set()

    def relation_names(self) -> Set[str]:
        return set()

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return False

    def __str__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class RelationAtom(Formula):
    """An atomic formula ``R(t₁, …, t_k)``."""

    name: str
    terms: Tuple[Term, ...]

    def __init__(self, name: str, terms: Sequence[Term]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "terms", tuple(terms))

    def free_variables(self) -> Set[Variable]:
        return variables_in(self.terms)

    def constants(self) -> Set[Any]:
        return {t for t in self.terms if not isinstance(t, Variable)}

    def relation_names(self) -> Set[str]:
        return {self.name}

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        row = tuple(term_value(t, assignment) for t in self.terms)
        return row in database.relation(self.name).rows

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Equality(Formula):
    """The atomic formula ``t₁ = t₂``."""

    left: Term
    right: Term

    def free_variables(self) -> Set[Variable]:
        return variables_in((self.left, self.right))

    def constants(self) -> Set[Any]:
        return {t for t in (self.left, self.right) if not isinstance(t, Variable)}

    def relation_names(self) -> Set[str]:
        return set()

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return term_value(self.left, assignment) == term_value(self.right, assignment)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def _union_all(sets: Iterable[Set]) -> Set:
    result: Set = set()
    for s in sets:
        result |= s
    return result


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        flat: List[Formula] = []
        for op in operands:
            if isinstance(op, And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))

    def free_variables(self) -> Set[Variable]:
        return _union_all(op.free_variables() for op in self.operands)

    def constants(self) -> Set[Any]:
        return _union_all(op.constants() for op in self.operands)

    def relation_names(self) -> Set[str]:
        return _union_all(op.relation_names() for op in self.operands)

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return all(op._eval(database, assignment, domain) for op in self.operands)

    def __str__(self) -> str:
        return " ∧ ".join(f"({op})" if isinstance(op, (Or, Implies)) else str(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    operands: Tuple[Formula, ...]

    def __init__(self, operands: Iterable[Formula]) -> None:
        flat: List[Formula] = []
        for op in operands:
            if isinstance(op, Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))

    def free_variables(self) -> Set[Variable]:
        return _union_all(op.free_variables() for op in self.operands)

    def constants(self) -> Set[Any]:
        return _union_all(op.constants() for op in self.operands)

    def relation_names(self) -> Set[str]:
        return _union_all(op.relation_names() for op in self.operands)

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return any(op._eval(database, assignment, domain) for op in self.operands)

    def __str__(self) -> str:
        return " ∨ ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> Set[Variable]:
        return self.operand.free_variables()

    def constants(self) -> Set[Any]:
        return self.operand.constants()

    def relation_names(self) -> Set[str]:
        return self.operand.relation_names()

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return not self.operand._eval(database, assignment, domain)

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``antecedent → consequent``."""

    antecedent: Formula
    consequent: Formula

    def free_variables(self) -> Set[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def constants(self) -> Set[Any]:
        return self.antecedent.constants() | self.consequent.constants()

    def relation_names(self) -> Set[str]:
        return self.antecedent.relation_names() | self.consequent.relation_names()

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        if self.antecedent._eval(database, assignment, domain):
            return self.consequent._eval(database, assignment, domain)
        return True

    def __str__(self) -> str:
        return f"({self.antecedent}) → ({self.consequent})"


class _Quantifier(Formula):
    """Shared machinery of ∃ and ∀."""

    symbol = "?"

    def __init__(self, variables: Union[Variable, Sequence[Variable]], body: Formula) -> None:
        if isinstance(variables, Variable):
            variables = (variables,)
        variables = tuple(variables)
        if not variables:
            raise ValueError("a quantifier must bind at least one variable")
        if len(set(variables)) != len(variables):
            raise ValueError("a quantifier must bind distinct variables")
        self.variables = variables
        self.body = body

    def free_variables(self) -> Set[Variable]:
        return self.body.free_variables() - set(self.variables)

    def constants(self) -> Set[Any]:
        return self.body.constants()

    def relation_names(self) -> Set[str]:
        return self.body.relation_names()

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        if type(self) is type(other):
            return self.variables == other.variables and self.body == other.body  # type: ignore[attr-defined]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.body))

    def _assignments(
        self, assignment: Dict[Variable, Any], domain: List[Any]
    ) -> Iterator[Dict[Variable, Any]]:
        for combo in itertools.product(domain, repeat=len(self.variables)):
            extended = dict(assignment)
            extended.update(zip(self.variables, combo))
            yield extended

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"{self.symbol}{names}. ({self.body})"


class Exists(_Quantifier):
    """Existential quantification ``∃x̄. φ`` (active-domain semantics)."""

    symbol = "∃"

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return any(self.body._eval(database, extended, domain) for extended in self._assignments(assignment, domain))


class Forall(_Quantifier):
    """Universal quantification ``∀x̄. φ`` (active-domain semantics)."""

    symbol = "∀"

    def _eval(self, database: Database, assignment: Dict[Variable, Any], domain: List[Any]) -> bool:
        return all(self.body._eval(database, extended, domain) for extended in self._assignments(assignment, domain))


# ----------------------------------------------------------------------
# Queries: formulas with an output tuple of free variables
# ----------------------------------------------------------------------
class FOQuery:
    """A relational-calculus query ``{ x̄ | φ(x̄) }``.

    Evaluation uses the active-domain semantics: candidate values for the
    free variables are drawn from ``adom(D)`` together with the constants
    of the formula.  Boolean queries have an empty tuple of free variables
    and return a 0-ary relation containing the empty tuple iff the formula
    holds.
    """

    def __init__(
        self,
        formula: Formula,
        head: Sequence[Variable] = (),
        name: str = "Q",
    ) -> None:
        head = tuple(head)
        missing = formula.free_variables() - set(head)
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"free variables not in the head: {names}")
        if len(set(head)) != len(head):
            raise ValueError("head variables must be distinct")
        self.formula = formula
        self.head = head
        self.name = name

    @property
    def arity(self) -> int:
        """Arity of the answer relation."""
        return len(self.head)

    def output_schema(self) -> RelationSchema:
        """The schema of the answer relation (attributes named after head variables)."""
        return RelationSchema(self.name, tuple(v.name for v in self.head) or ())

    def evaluate(self, database: Database) -> Relation:
        """Evaluate the query on ``database`` (naive satisfaction when nulls occur)."""
        domain = sorted(
            database.active_domain() | self.formula.constants(),
            key=lambda v: (str(type(v)), str(v)),
        )
        schema = self.output_schema()
        if not self.head:
            rows = [()] if self.formula.holds(database) else []
            return Relation(RelationSchema(self.name, ()), rows)
        rows = []
        for combo in itertools.product(domain, repeat=len(self.head)):
            assignment = dict(zip(self.head, combo))
            if self.formula.holds(database, assignment):
                rows.append(combo)
        return Relation(schema, rows)

    def boolean(self, database: Database) -> bool:
        """Truth value for Boolean queries (non-emptiness of the answer otherwise)."""
        return bool(self.evaluate(database))

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        return f"{{({head}) | {self.formula}}}"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def var(name: str) -> Variable:
    """Shorthand for :class:`Variable`."""
    return Variable(name)


def variables(names: str) -> Tuple[Variable, ...]:
    """Build several variables from a whitespace-separated string of names."""
    return tuple(Variable(name) for name in names.split())


def atom(name: str, *terms: Term) -> RelationAtom:
    """Shorthand for :class:`RelationAtom`."""
    return RelationAtom(name, terms)


def equals(left: Term, right: Term) -> Equality:
    """Shorthand for :class:`Equality`."""
    return Equality(left, right)


def exists(variables_: Union[Variable, Sequence[Variable]], body: Formula) -> Exists:
    """Shorthand for :class:`Exists`."""
    return Exists(variables_, body)


def forall(variables_: Union[Variable, Sequence[Variable]], body: Formula) -> Forall:
    """Shorthand for :class:`Forall`."""
    return Forall(variables_, body)


def conj(*operands: Formula) -> Formula:
    """Conjunction of the given formulas (``⊤`` when empty)."""
    if not operands:
        return Top()
    if len(operands) == 1:
        return operands[0]
    return And(operands)


def disj(*operands: Formula) -> Formula:
    """Disjunction of the given formulas (``⊥`` when empty)."""
    if not operands:
        return Bottom()
    if len(operands) == 1:
        return operands[0]
    return Or(operands)
