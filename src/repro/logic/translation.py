"""Translation from relational algebra to relational calculus (FO).

The translation realises the classical equivalence between the two query
languages and is used by the experiments to verify the paper's claims that

* positive relational algebra = UCQ (existential positive formulas), and
* ``RA_cwa`` queries translate into the ``Pos∀G`` class (Section 6.2):
  division ``Q ÷ Q'`` becomes a universally quantified implication whose
  antecedent is the translation of ``Q'`` — a relational atom whenever the
  divisor is a base relation.

Both sides are executable, so the equivalence is also checked semantically
on randomly generated complete databases (experiment E17).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from ..datamodel.schema import DatabaseSchema
from ..algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
)
from ..algebra.predicates import Attr, Comparison, Const, PAnd, PNot, POr, Predicate, PTrue
from .formulas import (
    And,
    Bottom,
    Equality,
    Exists,
    FOQuery,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelationAtom,
    Top,
    Variable,
    conj,
    disj,
)


class TranslationError(ValueError):
    """Raised when an RA feature has no FO counterpart in this translation."""


class _Translator:
    """Stateful fresh-variable supply for one translation run."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        self._counter = itertools.count(0)

    def fresh(self, prefix: str = "z") -> Variable:
        return Variable(f"{prefix}{next(self._counter)}")

    def fresh_tuple(self, arity: int, prefix: str = "z") -> Tuple[Variable, ...]:
        return tuple(self.fresh(prefix) for _ in range(arity))

    # ------------------------------------------------------------------
    def adom_formula(self, variable: Variable) -> Formula:
        """``variable ∈ adom``: some relation mentions it in some position."""
        disjuncts: List[Formula] = []
        for rel_schema in self._schema:
            for position in range(rel_schema.arity):
                terms = []
                bound: List[Variable] = []
                for i in range(rel_schema.arity):
                    if i == position:
                        terms.append(variable)
                    else:
                        fresh = self.fresh("a")
                        bound.append(fresh)
                        terms.append(fresh)
                atom = RelationAtom(rel_schema.name, tuple(terms))
                disjuncts.append(Exists(bound, atom) if bound else atom)
        return disj(*disjuncts)

    # ------------------------------------------------------------------
    def predicate_formula(self, predicate: Predicate, head: Sequence[Variable], expression: RAExpression) -> Formula:
        schema = expression.output_schema(self._schema)

        def term(t) -> object:
            if isinstance(t, Attr):
                return head[schema.index_of(t.ref)]
            if isinstance(t, Const):
                return t.value
            return t

        if isinstance(predicate, PTrue):
            return Top()
        if isinstance(predicate, Comparison):
            if predicate.op == "=":
                return Equality(term(predicate.left), term(predicate.right))
            if predicate.op == "!=":
                return Not(Equality(term(predicate.left), term(predicate.right)))
            raise TranslationError(
                f"order comparison {predicate.op!r} has no counterpart in the equality-only calculus"
            )
        if isinstance(predicate, PAnd):
            return conj(*(self.predicate_formula(op, head, expression) for op in predicate.operands))
        if isinstance(predicate, POr):
            return disj(*(self.predicate_formula(op, head, expression) for op in predicate.operands))
        if isinstance(predicate, PNot):
            return Not(self.predicate_formula(predicate.operand, head, expression))
        raise TranslationError(f"unsupported predicate {predicate!r}")

    # ------------------------------------------------------------------
    def translate(self, expression: RAExpression, head: Tuple[Variable, ...]) -> Formula:
        """A formula with free variables ``head`` defining ``expression``."""
        if isinstance(expression, RelationRef):
            return RelationAtom(expression.name, head)
        if isinstance(expression, ConstantRelation):
            rows = expression.relation.sorted_rows()
            if not rows:
                return Bottom()
            return disj(
                *(conj(*(Equality(h, value) for h, value in zip(head, row))) for row in rows)
            )
        if isinstance(expression, Delta):
            return conj(Equality(head[0], head[1]), self.adom_formula(head[0]))
        if isinstance(expression, ActiveDomain):
            return self.adom_formula(head[0])
        if isinstance(expression, Selection):
            child = self.translate(expression.child, head)
            condition = self.predicate_formula(expression.predicate, head, expression.child)
            return conj(child, condition)
        if isinstance(expression, Projection):
            child_schema = expression.child.output_schema(self._schema)
            child_head = self.fresh_tuple(child_schema.arity, "p")
            positions = [child_schema.index_of(a) for a in expression.attributes]
            child_formula = self.translate(expression.child, child_head)
            bindings = [Equality(h, child_head[p]) for h, p in zip(head, positions)]
            body = conj(child_formula, *bindings)
            return Exists(child_head, body) if child_head else body
        if isinstance(expression, Rename):
            return self.translate(expression.child, head)
        if isinstance(expression, Product):
            left_arity = expression.left.output_schema(self._schema).arity
            left = self.translate(expression.left, head[:left_arity])
            right = self.translate(expression.right, head[left_arity:])
            return conj(left, right)
        if isinstance(expression, NaturalJoin):
            return self._translate_join(expression, head)
        if isinstance(expression, Union_):
            return disj(self.translate(expression.left, head), self.translate(expression.right, head))
        if isinstance(expression, Intersection):
            return conj(self.translate(expression.left, head), self.translate(expression.right, head))
        if isinstance(expression, Difference):
            return conj(
                self.translate(expression.left, head),
                Not(self.translate(expression.right, head)),
            )
        if isinstance(expression, Division):
            return self._translate_division(expression, head)
        raise TranslationError(f"unsupported RA node {expression!r}")

    def _translate_join(self, expression: NaturalJoin, head: Tuple[Variable, ...]) -> Formula:
        left_schema = expression.left.output_schema(self._schema)
        right_schema = expression.right.output_schema(self._schema)
        shared = [name for name in right_schema.attributes if name in left_schema.attributes]
        join_pairs = [(left_schema.index_of(n), right_schema.index_of(n)) for n in shared]
        right_keep = [
            i for i, name in enumerate(right_schema.attributes) if name not in left_schema.attributes
        ]
        left_head = head[: left_schema.arity]
        keep_head = head[left_schema.arity :]
        right_head: List[Variable] = [None] * right_schema.arity  # type: ignore[list-item]
        for left_pos, right_pos in join_pairs:
            right_head[right_pos] = left_head[left_pos]
        for out_pos, right_pos in enumerate(right_keep):
            right_head[right_pos] = keep_head[out_pos]
        left = self.translate(expression.left, left_head)
        right = self.translate(expression.right, tuple(right_head))
        return conj(left, right)

    def _translate_division(self, expression: Division, head: Tuple[Variable, ...]) -> Formula:
        left_schema, _, keep_positions, divisor_positions = expression._division_plan(self._schema)
        divisor_arity = len(divisor_positions)
        divisor_vars = self.fresh_tuple(divisor_arity, "d")
        witness_vars = self.fresh_tuple(divisor_arity, "w")

        def left_head(b_vars: Sequence[Variable]) -> Tuple[Variable, ...]:
            assembled: List[Variable] = [None] * left_schema.arity  # type: ignore[list-item]
            for out_pos, position in enumerate(keep_positions):
                assembled[position] = head[out_pos]
            for b_pos, position in enumerate(divisor_positions):
                assembled[position] = b_vars[b_pos]
            return tuple(assembled)

        membership = Exists(list(witness_vars), self.translate(expression.left, left_head(witness_vars)))
        divisor = self.translate(expression.right, divisor_vars)
        universal = Forall(
            list(divisor_vars),
            Implies(divisor, self.translate(expression.left, left_head(divisor_vars))),
        )
        return conj(membership, universal)


def ra_to_calculus(expression: RAExpression, schema: DatabaseSchema, name: str = "Q") -> FOQuery:
    """Translate a relational-algebra expression into an equivalent FO query.

    The resulting query has head variables ``x0, …, x_{k-1}`` matching the
    expression's output arity and evaluates identically on complete
    databases (up to the answer relation's attribute names).
    """
    translator = _Translator(schema)
    arity = expression.output_schema(schema).arity
    head = tuple(Variable(f"x{i}") for i in range(arity))
    formula = translator.translate(expression, head)
    return FOQuery(formula, head, name=name)
