"""``explain(analyze=True)``: run the plan, keep per-operator facts.

:func:`instrument` rebuilds a physical-operator tree with every node
wrapped in a :class:`_Probe` that forwards ``rows(ctx)`` to the wrapped
operator while recording its output cardinality, wall time, call count
and memoization hits into an :class:`OpStats` node.  The probe tree
mirrors the original exactly — including *sharing*: an operator that
appears twice (common-subexpression reuse through ``op.key``) gets one
probe and one stats node, so memo hits show up as ``memo_hits`` on that
node rather than as phantom duplicate work.

The wrapped tree is a rebuild (``object.__new__`` + slot copy), never a
mutation: the session's plan cache keeps the pristine operators, and an
analyze run can never leak probes into cached plans.

:class:`AnalyzeReport` is the engine-agnostic result — the plan engine
fills ``root`` with the probe stats tree; the SQLite engine fills
``statements`` (per-statement timing) and ``spills`` (temp-table row
counts) instead, since there is no Python operator tree to probe there.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["AnalyzeReport", "OpStats", "instrument"]


class OpStats:
    """Per-operator analyze facts, mirroring one physical-tree node."""

    __slots__ = ("name", "details", "key", "rows", "seconds", "calls", "memo_hits", "children")

    def __init__(self, name: str, details: str, key: Optional[object]) -> None:
        self.name = name
        self.details = details
        self.key = key
        self.rows: Optional[int] = None   # None: never computed (memo-only or unreached)
        self.seconds = 0.0
        self.calls = 0
        self.memo_hits = 0
        self.children: List["OpStats"] = []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.name,
            "details": self.details,
            "rows": self.rows,
            "seconds": self.seconds,
            "calls": self.calls,
            "memo_hits": self.memo_hits,
            "children": [child.to_dict() for child in self.children],
        }


def _is_operator(value: Any) -> bool:
    # Matches the duck test Session._render_physical uses: physical
    # operators are the things with .rows and ._compute.
    return hasattr(value, "rows") and hasattr(value, "_compute")


def _describe(op: Any) -> str:
    """A short operand summary, same spirit as ``Session._render_physical``."""
    parts: List[str] = []
    seen = set()
    for klass in type(op).__mro__:
        for attr in getattr(klass, "__slots__", ()):
            if attr in seen or attr == "key" or attr.startswith("_"):
                continue
            seen.add(attr)
            try:
                value = getattr(op, attr)
            except AttributeError:
                continue
            if _is_operator(value):
                continue
            if isinstance(value, (tuple, list)) and any(_is_operator(v) for v in value):
                continue
            if callable(value):
                parts.append(f"{attr}={getattr(value, '__name__', repr(value))}")
            else:
                text = repr(value)
                if len(text) > 40:
                    text = text[:37] + "..."
                parts.append(f"{attr}={text}")
    return ", ".join(parts)


class _Probe:
    """Wraps one physical operator; quacks like it; records its work.

    ``rows(ctx)`` re-implements the memo check so a hit on the wrapped
    operator's ``key`` is *counted* (``memo_hits``) rather than timed as
    a recompute — the memo holds the probe's own prior output, because
    probes store under the same key the operator would.
    """

    __slots__ = ("op", "stats")

    def __init__(self, op: Any, stats: OpStats) -> None:
        self.op = op
        self.stats = stats

    def rows(self, ctx: Any) -> Any:
        key = self.op.key
        if key is not None:
            cached = ctx.memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
                return cached
        t0 = time.perf_counter()
        result = self.op._compute(ctx)
        elapsed = time.perf_counter() - t0
        stats = self.stats
        stats.calls += 1
        stats.seconds += elapsed
        stats.rows = len(result)
        if key is not None:
            ctx.memo[key] = result
        return result

    def _compute(self, ctx: Any) -> Any:
        return self.op._compute(ctx)

    def __getattr__(self, name: str) -> Any:
        # Anything a parent operator reads off its child (predicates,
        # positions, .name on a Scan) comes straight from the wrapped op.
        return getattr(self.op, name)


def instrument(root: Any) -> Tuple[Any, OpStats]:
    """Rebuild ``root`` with every operator probed; return (tree, stats).

    Child operators are found the way the rest of the codebase finds
    them — slot attributes (and tuples/lists of them) that pass the
    operator duck test — and replaced with probes on a *fresh copy* of
    the parent, so the original tree is untouched.  ``seen`` keys on
    ``id(op)`` to preserve DAG sharing: one shared subplan → one probe →
    one stats node.
    """
    seen: Dict[int, _Probe] = {}

    def wrap(op: Any) -> _Probe:
        probe = seen.get(id(op))
        if probe is not None:
            return probe
        clone = object.__new__(type(op))
        slots = []
        slot_seen = set()
        for klass in type(op).__mro__:
            for attr in getattr(klass, "__slots__", ()):
                if attr not in slot_seen:
                    slot_seen.add(attr)
                    slots.append(attr)
        child_names: List[str] = []
        for attr in slots:
            try:
                value = getattr(op, attr)
            except AttributeError:
                continue
            if _is_operator(value):
                child_names.append(attr)
                object.__setattr__(clone, attr, wrap(value))
            elif isinstance(value, tuple) and any(_is_operator(v) for v in value):
                child_names.append(attr)
                object.__setattr__(
                    clone, attr, tuple(wrap(v) if _is_operator(v) else v for v in value)
                )
            elif isinstance(value, list) and any(_is_operator(v) for v in value):
                child_names.append(attr)
                object.__setattr__(
                    clone, attr, [wrap(v) if _is_operator(v) else v for v in value]
                )
            else:
                object.__setattr__(clone, attr, value)
        stats = OpStats(type(op).__name__, _describe(op), getattr(op, "key", None))
        for attr in child_names:
            value = getattr(clone, attr)
            if isinstance(value, (tuple, list)):
                stats.children.extend(v.stats for v in value if isinstance(v, _Probe))
            else:
                stats.children.append(value.stats)
        probe = _Probe(clone, stats)
        seen[id(op)] = probe
        return probe

    wrapped = wrap(root)
    return wrapped, wrapped.stats


class AnalyzeReport:
    """What ``Query.explain(analyze=True)`` hands back, renderable."""

    __slots__ = ("engine", "rows", "seconds", "root", "statements", "spills", "notes")

    def __init__(
        self,
        engine: str,
        rows: int,
        seconds: float,
        root: Optional[OpStats] = None,
        statements: Optional[List[Dict[str, Any]]] = None,
        spills: Optional[Dict[str, int]] = None,
        notes: Optional[List[str]] = None,
    ) -> None:
        self.engine = engine
        self.rows = rows
        self.seconds = seconds
        self.root = root
        self.statements = statements if statements is not None else []
        self.spills = spills if spills is not None else {}
        self.notes = notes if notes is not None else []

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "rows": self.rows,
            "seconds": self.seconds,
            "plan": self.root.to_dict() if self.root is not None else None,
            "statements": list(self.statements),
            "spills": dict(self.spills),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [
            f"Analyze ({self.engine} engine): {self.rows} rows in "
            f"{self.seconds * 1e3:.3f} ms"
        ]
        if self.root is not None:
            self._render_node(self.root, 0, lines, set())
        for stmt in self.statements:
            kind = stmt.get("kind", "statement")
            lines.append(
                f"  [{kind}] {stmt['sql']}  ({stmt['seconds'] * 1e3:.3f} ms)"
            )
        for table, count in sorted(self.spills.items()):
            lines.append(f"  spill {table}: {count} rows")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def _render_node(
        self, node: OpStats, indent: int, lines: List[str], emitted: set
    ) -> None:
        pad = "  " * (indent + 1)
        if id(node) in emitted:
            lines.append(f"{pad}{node.name} (shared subplan, see above)")
            return
        emitted.add(id(node))
        facts: List[str] = []
        if node.rows is not None:
            facts.append(f"rows={node.rows}")
        facts.append(f"time={node.seconds * 1e3:.3f}ms")
        facts.append(f"calls={node.calls}")
        if node.memo_hits:
            facts.append(f"memo_hits={node.memo_hits}")
        detail = f" [{node.details}]" if node.details else ""
        lines.append(f"{pad}{node.name}{detail}  ({', '.join(facts)})")
        for child in node.children:
            self._render_node(child, indent + 1, lines, emitted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalyzeReport(engine={self.engine!r}, rows={self.rows})"
