"""Spans: a ``contextvars``-based tracer with pluggable sinks.

A :class:`Span` is one timed region of a query's life — a session entry
point, a plan lowering, a backend statement, a retry attempt, a worker
chunk.  Spans nest through a context variable (the ambient *current
span*), so the physical execution of a query traced from
``Query.certain()`` hangs off that entry span without any layer passing
handles around.

Design constraints, in order:

* **No-op short circuit.**  Tracing defaults to *off*; the cost of the
  disabled path is one ``ContextVar.get()`` and a branch per
  instrumentation point (:func:`span` returns a shared no-op context
  manager).  This mirrors ``repro.resilience.active_budget`` — and is
  what keeps the ``--compare`` benchmark gate green with tracing compiled
  in everywhere.
* **Pluggable sinks.**  The default sink is an in-memory ring buffer
  (:class:`RingBufferSink`; bounded, thread-safe under the GIL); setting
  ``REPRO_TRACE=/path/to/file`` makes sessions default to a process-wide
  :class:`JSONLSink` writing one JSON object per span.
* **Cross-process travel.**  ``workers=`` children cannot share a sink
  with the parent; they trace into a local ring buffer, serialize it with
  :func:`serialize_spans` and ship it back alongside the chunk result,
  where :meth:`Tracer.absorb` re-emits the spans with fresh ids under the
  parent's chunk span.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional

from .metrics import MetricsRegistry, _METRICS

__all__ = [
    "JSONLSink",
    "RingBufferSink",
    "Span",
    "Tracer",
    "current_span",
    "current_tracer",
    "entry_scope",
    "env_tracer",
    "obs_scope",
    "serialize_spans",
    "span",
]

#: Environment variable selecting a process-wide JSONL file sink.
TRACE_ENV_VAR = "REPRO_TRACE"

_DEFAULT_RING_SIZE = 2048


class Span:
    """One named, timed, attributed region; ``parent_id`` encodes nesting."""

    __slots__ = ("name", "attrs", "start", "duration", "span_id", "parent_id", "status")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: int = 0,
        parent_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.start = 0.0          # wall-clock (time.time) start stamp
        self.duration = 0.0       # seconds (perf_counter delta)
        self.span_id = span_id
        self.parent_id = parent_id
        self.status = "ok"

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (``with span(...) as sp: sp.set(rows=n)``)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"id={self.span_id}, parent={self.parent_id}, {self.status})"
        )


class RingBufferSink:
    """Keep the most recent ``maxlen`` spans in memory (the default sink).

    ``deque.append`` is atomic under the GIL, so frozen-session threads
    share one ring without locks; old spans fall off the far end.
    """

    def __init__(self, maxlen: int = _DEFAULT_RING_SIZE) -> None:
        self._ring: "deque[Span]" = deque(maxlen=maxlen)

    def emit(self, span: Span) -> None:
        self._ring.append(span)

    def spans(self) -> List[Span]:
        """The buffered spans, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()


class JSONLSink:
    """Append one JSON object per span to ``path`` (``REPRO_TRACE`` sink).

    Values that are not JSON-native are written through ``repr`` — the
    file is for humans and scripts, not for round-tripping.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), default=repr)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            self._file.close()


class Tracer:
    """Create, nest and emit spans into one sink."""

    def __init__(self, sink: Optional[Any] = None) -> None:
        self.sink = sink if sink is not None else RingBufferSink()
        # itertools.count.__next__ is atomic in CPython; ids are unique
        # per tracer, which is all nesting needs.
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs: Any) -> "_SpanScope":
        """A context manager opening a child of the ambient current span."""
        return _SpanScope(self, name, attrs)

    def record(
        self,
        name: str,
        duration: float = 0.0,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Emit a pre-timed span (no ``with`` block ran for it).

        Used for after-the-fact instrumentation — per-operator timings
        collected by the analyze probes, retry attempts, chunk arrivals.
        ``parent_id=None`` hangs the span off the ambient current span.
        """
        if parent_id is None:
            current = _SPAN.get()
            parent_id = current.span_id if current is not None else None
        span_obj = Span(name, attrs, next(self._ids), parent_id)
        span_obj.start = time.time() - duration
        span_obj.duration = duration
        self.sink.emit(span_obj)
        return span_obj

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration marker span under the ambient current span."""
        return self.record(name, 0.0, **attrs)

    def absorb(
        self,
        serialized: Iterable[Dict[str, Any]],
        parent_id: Optional[int] = None,
    ) -> None:
        """Re-emit spans serialized in another process under this tracer.

        Span ids are remapped onto this tracer's sequence; child-internal
        parent links are preserved, and the children's top-level spans are
        re-parented onto ``parent_id`` (or the ambient current span).
        """
        serialized = list(serialized)
        if not serialized:
            return
        if parent_id is None:
            current = _SPAN.get()
            parent_id = current.span_id if current is not None else None
        mapping = {data["span_id"]: next(self._ids) for data in serialized}
        for data in serialized:
            span_obj = Span(
                data["name"],
                dict(data["attrs"]),
                mapping[data["span_id"]],
                mapping.get(data["parent_id"], parent_id),
            )
            span_obj.start = data["start"]
            span_obj.duration = data["duration"]
            span_obj.status = data["status"]
            self.sink.emit(span_obj)

    def spans(self) -> List[Span]:
        """The sink's buffered spans (ring sinks only)."""
        getter = getattr(self.sink, "spans", None)
        if getter is None:
            raise TypeError(f"{type(self.sink).__name__} does not buffer spans")
        return getter()


def serialize_spans(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's buffered spans as picklable dicts (for worker children)."""
    return [span_obj.to_dict() for span_obj in tracer.spans()]


# ----------------------------------------------------------------------
# Ambient tracer / current span
# ----------------------------------------------------------------------
_TRACER: "ContextVar[Optional[Tracer]]" = ContextVar("repro_tracer", default=None)
_SPAN: "ContextVar[Optional[Span]]" = ContextVar("repro_span", default=None)


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer of the current context, or ``None`` (tracing off)."""
    return _TRACER.get()


def current_span() -> Optional[Span]:
    """The innermost open span of the current context, if any."""
    return _SPAN.get()


class _SpanScope:
    """``with tracer.span(name): ...`` — times, nests, emits."""

    __slots__ = ("_tracer", "_span", "_token", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        parent = _SPAN.get()
        self._span = Span(
            name, attrs, next(tracer._ids), parent.span_id if parent is not None else None
        )
        self._token = None
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._span.start = time.time()
        self._token = _SPAN.set(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._span.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.status = exc_type.__name__
        _SPAN.reset(self._token)
        self._tracer.sink.emit(self._span)
        return False


class _NoopScope:
    """Shared, stateless stand-in for a span scope when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return _NOOP_SPAN

    def __exit__(self, *exc_info: Any) -> bool:
        return False


class _NoopSpan:
    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()
_NOOP = _NoopScope()


def span(name: str, **attrs: Any) -> Any:
    """Open a span on the ambient tracer; a shared no-op when tracing is off.

    This is the one-liner deep layers use::

        with span("backend.evaluate", relation=name) as sp:
            ...
            sp.set(rows=len(result))

    Disabled cost: one ``ContextVar.get()``, one branch, one shared
    object's trivial ``__enter__``/``__exit__``.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return _NOOP
    return _SpanScope(tracer, name, attrs)


# ----------------------------------------------------------------------
# Scopes arming the ambient tracer + registry
# ----------------------------------------------------------------------
class obs_scope:
    """Arm ``tracer`` and/or ``registry`` as the ambient observability context.

    Either may be ``None`` (or a disabled registry): only what is given
    is armed, and with neither the scope is a shared-cost no-op.  Worker
    children use this to trace into their local buffers.
    """

    __slots__ = ("_tracer", "_registry", "_tokens")

    def __init__(
        self, tracer: Optional[Tracer], registry: Optional[MetricsRegistry]
    ) -> None:
        self._tracer = tracer
        self._registry = (
            registry if registry is not None and registry.enabled else None
        )
        self._tokens: List[Any] = []

    def __enter__(self) -> "obs_scope":
        if self._tracer is not None:
            self._tokens.append((_TRACER, _TRACER.set(self._tracer)))
        if self._registry is not None:
            self._tokens.append((_METRICS, _METRICS.set(self._registry)))
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        while self._tokens:
            var, token = self._tokens.pop()
            var.reset(token)
        return False


class _EntryScope:
    """The session entry-point scope: arm context, count, time, span.

    One of these wraps every ``Query.certain()`` / ``possible()`` /
    ``boolean()`` / ``answer_object()`` / ``cursor()`` call: it arms the
    session's tracer and registry as ambient, counts the entry
    (``query.certain``), observes its wall time
    (``query.certain.seconds``) and — when tracing is on — opens the
    entry span everything below nests under.
    """

    __slots__ = (
        "_tracer",
        "_registry",
        "_name",
        "_m_token",
        "_t_token",
        "_s_token",
        "_span",
        "_t0",
    )

    def __init__(
        self,
        tracer: Optional[Tracer],
        registry: Optional[MetricsRegistry],
        name: str,
    ) -> None:
        self._tracer = tracer
        self._registry = registry
        self._name = name
        self._m_token = None
        self._t_token = None
        self._s_token = None
        self._span: Optional[Span] = None
        self._t0 = 0.0

    def __enter__(self) -> Any:
        if self._registry is not None:
            self._m_token = _METRICS.set(self._registry)
        tracer = self._tracer
        if tracer is not None:
            self._t_token = _TRACER.set(tracer)
            parent = _SPAN.get()
            span_obj = Span(
                self._name,
                None,
                next(tracer._ids),
                parent.span_id if parent is not None else None,
            )
            span_obj.start = time.time()
            self._span = span_obj
            self._s_token = _SPAN.set(span_obj)
        self._t0 = time.perf_counter()
        return self._span if self._span is not None else _NOOP_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        elapsed = time.perf_counter() - self._t0
        span_obj = self._span
        if span_obj is not None:
            span_obj.duration = elapsed
            if exc_type is not None:
                span_obj.status = exc_type.__name__
            _SPAN.reset(self._s_token)
            _TRACER.reset(self._t_token)
            self._tracer.sink.emit(span_obj)
        if self._registry is not None:
            _METRICS.reset(self._m_token)
            self._registry.count_and_observe(self._name, elapsed)
        return False


def entry_scope(
    tracer: Optional[Tracer], registry: Optional[MetricsRegistry], name: str
) -> Any:
    """The scope sessions wrap their entry points in; no-op when all off."""
    if registry is not None and not registry.enabled:
        registry = None
    if tracer is None and registry is None:
        return _NOOP
    return _EntryScope(tracer, registry, name)


# ----------------------------------------------------------------------
# The REPRO_TRACE process-default tracer
# ----------------------------------------------------------------------
_env_tracer: Optional[Tracer] = None
_env_tracer_path: Optional[str] = None
_env_lock = threading.Lock()


def env_tracer() -> Optional[Tracer]:
    """The process-wide JSONL tracer selected by ``REPRO_TRACE``, or ``None``.

    Sessions constructed without an explicit ``tracer=`` fall back to
    this, so exporting one environment variable turns on tracing for a
    whole process.  The tracer (and its open file) is created once per
    path and shared.
    """
    path = os.environ.get(TRACE_ENV_VAR)
    if not path:
        return None
    global _env_tracer, _env_tracer_path
    with _env_lock:
        if _env_tracer is None or _env_tracer_path != path:
            _env_tracer = Tracer(JSONLSink(path))
            _env_tracer_path = path
        return _env_tracer
