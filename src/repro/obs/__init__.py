"""repro.obs: zero-dependency tracing, metrics and analyze instrumentation.

Three pieces, importable with no dependency on the rest of ``repro`` (so
every layer — resilience, planner, backends, serve — can reach in without
cycles):

* :mod:`repro.obs.trace` — contextvars-based spans (``Tracer``,
  ``span()``, ring-buffer / JSONL sinks, cross-process serialization);
* :mod:`repro.obs.metrics` — per-session ``MetricsRegistry`` with
  lock-free per-thread shards (counters, gauges, wall-time histograms);
* :mod:`repro.obs.analyze` — probe-based per-operator instrumentation
  behind ``Query.explain(analyze=True)``.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from .analyze import AnalyzeReport, OpStats, instrument
from .metrics import DISABLED_METRICS, MetricsRegistry, current_metrics, metrics_scope
from .trace import (
    JSONLSink,
    RingBufferSink,
    Span,
    Tracer,
    current_span,
    current_tracer,
    entry_scope,
    env_tracer,
    obs_scope,
    serialize_spans,
    span,
)

__all__ = [
    "AnalyzeReport",
    "DISABLED_METRICS",
    "JSONLSink",
    "MetricsRegistry",
    "OpStats",
    "RingBufferSink",
    "Span",
    "Tracer",
    "current_metrics",
    "current_span",
    "current_tracer",
    "entry_scope",
    "env_tracer",
    "instrument",
    "metrics_scope",
    "obs_scope",
    "serialize_spans",
    "span",
]
