"""``MetricsRegistry``: counters, gauges and wall-time histograms.

One registry per :class:`repro.session.Session` (``Session.metrics()``
reads it); :class:`repro.serve.Server` merges its frozen session's
registry into ``Server.stats()``.  The design constraints, in order:

* **Lock-free hot path.**  A frozen session is shared by many threads
  without locks — the registry must keep that property.  Every thread
  records into its own *shard* (a plain per-thread dict, created once per
  thread per registry); under the GIL a ``dict[name] += value`` on a
  thread-private dict can neither race nor lose increments.  Shards are
  only ever *read* by other threads, at :meth:`snapshot` time, which sums
  them.  A shard outlives its thread, so counts from finished threads are
  never lost.
* **Negligible disabled cost.**  ``connect(metrics=False)`` builds a
  disabled registry: every recording method is one attribute check and a
  return.  The benchmark gate (``gate:obs``) holds the enabled-but-idle
  session to within a few percent of the disabled one.
* **Zero dependencies.**  Histograms are the five-number kind — count,
  sum, min, max — not bucketed; that is enough to read p0/p100/mean
  latencies off a service without dragging in a metrics library.

Deep library layers that have no session reference reach the ambient
registry through :func:`current_metrics` (a :class:`contextvars.ContextVar`
armed by the session's query entry points, mirroring
``repro.resilience.active_budget``): fetch once per call, pay one branch
per use when none is armed.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "DISABLED_METRICS",
    "MetricsRegistry",
    "current_metrics",
    "metrics_scope",
]


class _Shard:
    """One thread's private slice of a registry (never shared for writes)."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        # name -> [count, sum, min, max]
        self.histograms: Dict[str, List[float]] = {}


class MetricsRegistry:
    """Counters, gauges and wall-time histograms with per-thread shards."""

    __slots__ = (
        "_enabled",
        "_local",
        "_shards",
        "_shards_lock",
        "_gauges",
        "_gauges_lock",
    )

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._local = threading.local()
        self._shards: List[_Shard] = []
        self._shards_lock = threading.Lock()
        # Gauges are last-write-wins and low-frequency (pool depths, not
        # per-row events); a small lock keeps them simple.
        self._gauges: Dict[str, float] = {}
        self._gauges_lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything at all."""
        return self._enabled

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            self._local.shard = shard
            with self._shards_lock:
                self._shards.append(shard)
        return shard

    # -- recording (hot path) ------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value`` (thread-shard, lock-free)."""
        if not self._enabled:
            return
        counters = self._shard().counters
        counters[name] = counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one sample of the wall-time histogram ``name``."""
        if not self._enabled:
            return
        histograms = self._shard().histograms
        entry = histograms.get(name)
        if entry is None:
            histograms[name] = [1, seconds, seconds, seconds]
            return
        entry[0] += 1
        entry[1] += seconds
        if seconds < entry[2]:
            entry[2] = seconds
        if seconds > entry[3]:
            entry[3] = seconds

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self._enabled:
            return
        with self._gauges_lock:
            self._gauges[name] = value

    def count_and_observe(self, name: str, seconds: float) -> None:
        """Bump counter ``name`` and record ``name + ".seconds"`` in one shot.

        The session entry-point pattern; fetching the thread shard once
        for both updates keeps the per-query fixed cost down.
        """
        if not self._enabled:
            return
        shard = self._shard()
        counters = shard.counters
        counters[name] = counters.get(name, 0) + 1
        histograms = shard.histograms
        entry = histograms.get(name + ".seconds")
        if entry is None:
            histograms[name + ".seconds"] = [1, seconds, seconds, seconds]
            return
        entry[0] += 1
        entry[1] += seconds
        if seconds < entry[2]:
            entry[2] = seconds
        if seconds > entry[3]:
            entry[3] = seconds

    def merge_counts(self, deltas: Mapping[str, float]) -> None:
        """Fold counter deltas in (e.g. shipped back from a worker child)."""
        if not self._enabled or not deltas:
            return
        counters = self._shard().counters
        for name, value in deltas.items():
            counters[name] = counters.get(name, 0) + value

    # -- reading (aggregates across shards) ----------------------------
    def counter_value(self, name: str) -> float:
        """The summed value of counter ``name`` across all thread shards."""
        with self._shards_lock:
            shards = list(self._shards)
        return sum(shard.counters.get(name, 0) for shard in shards)

    def counters(self) -> Dict[str, float]:
        """All counters, summed across shards."""
        with self._shards_lock:
            shards = list(self._shards)
        totals: Dict[str, float] = {}
        for shard in shards:
            for name, value in list(shard.counters.items()):
                totals[name] = totals.get(name, 0) + value
        return totals

    def gauges(self) -> Dict[str, float]:
        with self._gauges_lock:
            return dict(self._gauges)

    def histograms(self) -> Dict[str, Dict[str, float]]:
        """All histograms as ``{name: {count, sum, min, max, mean}}``."""
        with self._shards_lock:
            shards = list(self._shards)
        merged: Dict[str, List[float]] = {}
        for shard in shards:
            for name, entry in list(shard.histograms.items()):
                count, total, low, high = entry
                acc = merged.get(name)
                if acc is None:
                    merged[name] = [count, total, low, high]
                else:
                    acc[0] += count
                    acc[1] += total
                    if low < acc[2]:
                        acc[2] = low
                    if high > acc[3]:
                        acc[3] = high
        return {
            name: {
                "count": count,
                "sum": total,
                "min": low,
                "max": high,
                "mean": total / count if count else 0.0,
            }
            for name, (count, total, low, high) in merged.items()
        }

    def snapshot(self) -> Dict[str, Any]:
        """One coherent-enough view: counters, gauges, histograms.

        "Coherent enough": a counter bumped *while* the snapshot is taken
        may or may not be included, but no increment is ever lost — the
        next snapshot sees it.
        """
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }


#: Shared no-op registry: every recording call is one check and a return.
DISABLED_METRICS = MetricsRegistry(enabled=False)


_METRICS: "ContextVar[Optional[MetricsRegistry]]" = ContextVar(
    "repro_metrics", default=None
)


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambient registry of the current context, or ``None``.

    Deep loops fetch this once per call and keep the result in a local;
    when it is ``None`` the metrics machinery costs one branch per use.
    """
    return _METRICS.get()


class metrics_scope:
    """Make ``registry`` the ambient registry for the duration of the block.

    ``None`` (or a disabled registry) is accepted and leaves the ambient
    registry untouched, so callers need no conditional around ``with``.
    """

    __slots__ = ("_registry", "_token")

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = (
            registry if registry is not None and registry._enabled else None
        )
        self._token = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        if self._registry is not None:
            self._token = _METRICS.set(self._registry)
        return self._registry

    def __exit__(self, *exc_info: Any) -> bool:
        if self._token is not None:
            _METRICS.reset(self._token)
            self._token = None
        return False
