"""Incomplete database instances (naive databases).

A database instance assigns a relation (naive table) to every relation
symbol of a schema.  It is *complete* when no relation mentions a null and
a *Codd database* when every null occurs at most once across the whole
instance (paper, Section 2).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .relations import Relation, Row
from .schema import DatabaseSchema, RelationSchema
from .values import Null, is_null

Fact = Tuple[str, Row]
"""A fact is a pair ``(relation name, tuple)``."""


class Database:
    """An incomplete relational database instance.

    The instance is immutable: all transformation methods return new
    databases.  Relations missing from the provided mapping are interpreted
    as empty relations over the schema.

    Examples
    --------
    >>> from repro.datamodel import Null, Relation, DatabaseSchema
    >>> schema = DatabaseSchema.from_arities({"R": 2, "S": 1})
    >>> db = Database(schema, {"R": [(1, Null("x"))], "S": [(2,)]})
    >>> db.is_complete()
    False
    >>> sorted(db.facts())
    [('R', (1, Null('x'))), ('S', (2,))]
    """

    __slots__ = ("_schema", "_relations", "_hash", "_analysis_cache", "_content_digest")

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._schema = schema
        rels: Dict[str, Relation] = {}
        provided = dict(relations or {})
        for rel_schema in schema:
            data = provided.pop(rel_schema.name, None)
            rels[rel_schema.name] = _coerce_relation(rel_schema, data)
        if provided:
            unknown = ", ".join(sorted(provided))
            raise KeyError(f"relations not declared in the schema: {unknown}")
        self._relations = rels
        self._hash: Optional[int] = None
        self._analysis_cache: Optional[Dict[str, Any]] = None
        self._content_digest: Optional[str] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_relations(cls, relations: Iterable[Relation]) -> "Database":
        """Build a database (and its schema) from a collection of relations."""
        relations = list(relations)
        schema = DatabaseSchema(rel.schema for rel in relations)
        return cls(schema, {rel.name: rel for rel in relations})

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Sequence[Any]]]) -> "Database":
        """Build a database from a ``{name: rows}`` mapping, inferring arities."""
        relations = [Relation.create(name, list(rows)) for name, rows in data.items()]
        return cls.from_relations(relations)

    @classmethod
    def from_facts(cls, schema: DatabaseSchema, facts: Iterable[Fact]) -> "Database":
        """Build a database over ``schema`` from ``(relation, tuple)`` facts."""
        grouped: Dict[str, List[Row]] = {name: [] for name in schema.names()}
        for name, row in facts:
            if name not in grouped:
                raise KeyError(f"unknown relation {name!r}")
            grouped[name].append(tuple(row))
        return cls(schema, grouped)

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Database":
        """The empty instance over ``schema``."""
        return cls(schema, {})

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._schema

    def relation(self, name: str) -> Relation:
        """The relation assigned to ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def relations(self) -> List[Relation]:
        """All relations, in schema order."""
        return [self._relations[name] for name in self._schema.names()]

    def facts(self) -> List[Fact]:
        """All facts ``(relation name, tuple)`` of the instance."""
        result: List[Fact] = []
        for name in self._schema.names():
            result.extend((name, row) for row in self._relations[name])
        return result

    def __getstate__(self):
        # The analysis cache is per-process scratch (it may hold backend
        # connections, e.g. the SQLite handle of engine="sqlite") and the
        # hash is cheap to recompute: ship only the actual data, so worlds
        # stay picklable for the workers= process pools.
        return (self._schema, self._relations)

    def __setstate__(self, state) -> None:
        self._schema, self._relations = state
        self._hash = None
        self._analysis_cache = None
        self._content_digest = None

    def analysis_cache(self) -> Dict[str, Any]:
        """A per-instance scratch cache for derived, immutable artifacts.

        Databases are immutable, so analyses that depend only on the
        instance (sorted fact lists, search orderings, ...) can be computed
        once and reused across calls.  Callers own their key namespace.
        """
        if self._analysis_cache is None:
            self._analysis_cache = {}
        return self._analysis_cache

    def _compute_content_digest(self) -> str:
        """The O(rows) digest computation behind :meth:`content_digest`.

        Kept separate so tests (and profilers) can count how often the
        expensive walk actually runs.
        """
        import hashlib

        digest = hashlib.sha256()
        for name in sorted(self._schema.names()):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x1f")
            for row in sorted(repr(row) for row in self._relations[name].rows):
                digest.update(row.encode("utf-8"))
                digest.update(b"\x1e")
            digest.update(b"\x1f")
        return digest.hexdigest()

    def content_digest(self) -> str:
        """A sha256 fingerprint of the instance's facts, cached per object.

        Databases are immutable — every transformation returns a *new*
        instance with an empty cache — so the digest never needs explicit
        invalidation: a mutated database is a different object, and
        ``Session``'s backend ``replace_database`` points at that new
        object.  Consumers that fingerprint the same instance repeatedly
        (the :class:`~repro.resilience.ResumeToken` stamp/validation path
        hashes the database once per ``certain(budget=)`` call) therefore
        pay the O(rows) walk at most once per instance.
        """
        cached = self._content_digest
        if cached is None:
            cached = self._compute_content_digest()
            self._content_digest = cached
        return cached

    def size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def __len__(self) -> int:
        return self.size()

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._schema == other._schema and self._relations == other._relations
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._schema, frozenset(self._relations.items())))
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"

    def to_table(self) -> str:
        """Render every relation as an ASCII table."""
        return "\n\n".join(rel.to_table() for rel in self.relations())

    # ------------------------------------------------------------------
    # nulls, constants, completeness
    # ------------------------------------------------------------------
    def nulls(self) -> Set[Null]:
        """``Null(D)``: all marked nulls occurring in the instance."""
        result: Set[Null] = set()
        for rel in self._relations.values():
            result |= rel.nulls()
        return result

    def constants(self) -> Set[Any]:
        """``Const(D)``: all constants occurring in the instance."""
        result: Set[Any] = set()
        for rel in self._relations.values():
            result |= rel.constants()
        return result

    def active_domain(self) -> Set[Any]:
        """``adom(D) = Const(D) ∪ Null(D)``."""
        return self.constants() | self.nulls()

    def is_complete(self) -> bool:
        """``True`` iff no relation mentions a null."""
        return all(rel.is_complete() for rel in self._relations.values())

    def is_codd(self) -> bool:
        """``True`` iff every null occurs at most once across the instance."""
        seen: Set[Null] = set()
        for rel in self._relations.values():
            for null, count in rel.null_occurrences().items():
                if count > 1 or null in seen:
                    return False
                seen.add(null)
        return True

    def complete_part(self) -> "Database":
        """``D_cmpl``: the instance retaining only tuples without nulls."""
        return self.map_relations(lambda rel: rel.complete_part())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def map_values(self, function: Callable[[Any], Any]) -> "Database":
        """Apply ``function`` to every value of every tuple."""
        return self.map_relations(lambda rel: rel.map_values(function))

    def map_relations(self, function: Callable[[Relation], Relation]) -> "Database":
        """Apply ``function`` to every relation (must preserve schema name/arity)."""
        new_relations = {}
        for name, rel in self._relations.items():
            new_rel = function(rel)
            if new_rel.name != name or new_rel.arity != rel.arity:
                raise ValueError("map_relations must preserve relation names and arities")
            new_relations[name] = new_rel
        return Database(self._schema, new_relations)

    def with_relation(self, relation: Relation) -> "Database":
        """Replace one relation (the schema must already declare it)."""
        if relation.name not in self._relations:
            raise KeyError(f"unknown relation {relation.name!r}")
        expected = self._schema[relation.name]
        if relation.arity != expected.arity:
            raise ValueError(
                f"relation {relation.name} must have arity {expected.arity}"
            )
        new_relations = dict(self._relations)
        new_relations[relation.name] = relation
        return Database(self._schema, new_relations)

    def add_facts(self, facts: Iterable[Fact]) -> "Database":
        """A database extended with the given facts."""
        grouped: Dict[str, List[Row]] = {}
        for name, row in facts:
            grouped.setdefault(name, []).append(tuple(row))
        new_relations = dict(self._relations)
        for name, rows in grouped.items():
            if name not in new_relations:
                raise KeyError(f"unknown relation {name!r}")
            new_relations[name] = new_relations[name].add_rows(rows)
        return Database(self._schema, new_relations)

    def union(self, other: "Database") -> "Database":
        """Relation-wise union of two instances over the same schema."""
        if self._schema != other._schema:
            raise ValueError("can only union databases over the same schema")
        return Database(
            self._schema,
            {name: self._relations[name].union(other._relations[name]) for name in self._schema.names()},
        )

    def contains_database(self, other: "Database") -> bool:
        """``True`` iff every fact of ``other`` is a fact of this instance."""
        if self._schema != other._schema:
            return False
        return all(
            other._relations[name].rows <= self._relations[name].rows
            for name in self._schema.names()
        )


def _coerce_relation(rel_schema: RelationSchema, data: Any) -> Relation:
    if data is None:
        return Relation.empty(rel_schema)
    if isinstance(data, Relation):
        if data.arity != rel_schema.arity:
            raise ValueError(
                f"relation {rel_schema.name} must have arity {rel_schema.arity}, "
                f"got {data.arity}"
            )
        if data.schema != rel_schema:
            return Relation(rel_schema, data.rows)
        return data
    return Relation(rel_schema, data)


def facts_with_nulls(database: Database) -> List[Fact]:
    """The facts of ``database`` that mention at least one null."""
    return [(name, row) for name, row in database.facts() if any(is_null(v) for v in row)]
