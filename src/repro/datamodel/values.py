"""Values appearing in incomplete databases: constants and marked nulls.

The paper (Section 2) assumes two countably infinite, disjoint sets of
values:

* ``Const`` -- ordinary constants such as numbers and strings; and
* ``Null``  -- *marked* (a.k.a. naive) nulls, written ``⊥``, ``⊥'``,
  ``⊥_1``, ... .  A marked null may occur several times in a database, and
  every occurrence must be replaced by the *same* constant by a valuation.
  SQL's nulls (Codd nulls) are the special case in which every null occurs
  at most once.

In this library a *constant* is any hashable Python object that is not an
instance of :class:`Null` (strings, integers, floats, tuples of constants,
...).  Nulls are explicit :class:`Null` objects.  Two nulls are equal iff
they carry the same name, so the same marked null can be mentioned in
several tuples and relations and still denote a single unknown value.
"""

from __future__ import annotations

import itertools
import sys
import threading
import weakref
from typing import Any, Iterable, Iterator, Optional


class Null:
    """A marked (naive) null value ``⊥_name``.

    Parameters
    ----------
    name:
        The identifier of the null.  Two :class:`Null` objects with the same
        name are the same null (they compare and hash equal).  If no name is
        given a globally fresh one is generated.

    Examples
    --------
    >>> x = Null("x")
    >>> y = Null("x")
    >>> x == y
    True
    >>> x == Null("y")
    False
    >>> x.is_null
    True
    """

    __slots__ = ("_name", "_hash", "__weakref__")

    _counter = itertools.count(1)
    _counter_lock = threading.Lock()

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            name = f"n{self._fresh_index()}"
        if not isinstance(name, str) or not name:
            raise TypeError("a null's name must be a non-empty string")
        self._name = name
        self._hash = hash(("repro.Null", name))

    @classmethod
    def _fresh_index(cls) -> int:
        with cls._counter_lock:
            return next(cls._counter)

    @classmethod
    def fresh(cls, prefix: str = "n") -> "Null":
        """Return a null whose name has never been handed out before."""
        return cls(f"{prefix}{cls._fresh_index()}")

    @property
    def name(self) -> str:
        """The identifier of this null."""
        return self._name

    @property
    def is_null(self) -> bool:
        """Always ``True``; provided for symmetric use with constants."""
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Null):
            return self._name == other._name
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Null):
            return self._name != other._name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Null({self._name!r})"

    def __str__(self) -> str:
        return f"⊥{self._name}"


def is_null(value: Any) -> bool:
    """Return ``True`` iff ``value`` is a marked null."""
    return isinstance(value, Null)


def is_constant(value: Any) -> bool:
    """Return ``True`` iff ``value`` is a constant (i.e. not a null).

    ``None`` is rejected outright: the library never uses ``None`` as a
    data value, precisely to avoid confusing Python's null-ish object with
    database nulls.
    """
    if value is None:
        return False
    return not isinstance(value, Null)


def check_value(value: Any) -> Any:
    """Validate that ``value`` may be stored in a relation.

    A storable value is either a :class:`Null` or a hashable constant
    different from ``None``.  Returns the value unchanged so the function
    can be used in comprehensions.
    """
    if value is None:
        raise TypeError(
            "None cannot be stored in a relation; use repro.Null() for "
            "missing values"
        )
    if isinstance(value, Null):
        return value
    try:
        hash(value)
    except TypeError as exc:  # pragma: no cover - defensive
        raise TypeError(f"constants must be hashable, got {value!r}") from exc
    return value


def nulls_in(values: Iterable[Any]) -> Iterator[Null]:
    """Yield the nulls occurring in ``values`` (with duplicates)."""
    for value in values:
        if isinstance(value, Null):
            yield value


def constants_in(values: Iterable[Any]) -> Iterator[Any]:
    """Yield the constants occurring in ``values`` (with duplicates)."""
    for value in values:
        if not isinstance(value, Null):
            yield value


# ----------------------------------------------------------------------
# Value interning
# ----------------------------------------------------------------------
# Relations store the same constants and nulls many times over (every fact
# of every intermediate result).  Interning canonicalises them so that the
# hash-based operators of the evaluation engine compare values by identity
# on the fast path of ``==``/dict lookups and share storage:
#
# * strings go through :func:`sys.intern`;
# * nulls are pooled by name (weakly, so transient fresh nulls can be
#   collected) — two ``Null("x")`` objects become one canonical object;
# * every other constant (ints, tuples, ...) is returned unchanged.
_NULL_POOL: "weakref.WeakValueDictionary[str, Null]" = weakref.WeakValueDictionary()
_NULL_POOL_LOCK = threading.Lock()


def intern_null(null: Null) -> Null:
    """The canonical :class:`Null` object for ``null``'s name."""
    canonical = _NULL_POOL.get(null._name)
    if canonical is not None:
        return canonical
    with _NULL_POOL_LOCK:
        return _NULL_POOL.setdefault(null._name, null)


def intern_value(value: Any) -> Any:
    """Canonicalise a storable value (see module notes on interning)."""
    if type(value) is str:
        return sys.intern(value)
    if isinstance(value, Null):
        return intern_null(value)
    return value


class ConstantPool:
    """A deterministic source of fresh constants.

    The paper works with the countably infinite set ``Const``.  Several
    constructions ("replace nulls with distinct constants outside a finite
    set ``C``", possible-world enumeration, genericity arguments) need a
    supply of constants that do not occur in a given database.  A
    :class:`ConstantPool` provides such a supply deterministically so tests
    and benchmarks are reproducible.

    Parameters
    ----------
    forbidden:
        Constants that must never be produced (typically the active domain
        of the databases under consideration).
    prefix:
        Prefix of generated string constants.
    """

    def __init__(self, forbidden: Iterable[Any] = (), prefix: str = "c") -> None:
        self._forbidden = {v for v in forbidden if not isinstance(v, Null)}
        self._prefix = prefix
        self._next = 0

    def forbid(self, values: Iterable[Any]) -> None:
        """Add more constants that the pool must avoid."""
        self._forbidden.update(v for v in values if not isinstance(v, Null))

    def fresh(self) -> str:
        """Return a constant not in the forbidden set and never returned before."""
        while True:
            candidate = f"{self._prefix}{self._next}"
            self._next += 1
            if candidate not in self._forbidden:
                self._forbidden.add(candidate)
                return candidate

    def take(self, count: int) -> list:
        """Return ``count`` distinct fresh constants."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.fresh() for _ in range(count)]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.fresh()
