"""Conditional tables (c-tables) and their conditions.

A conditional table (paper, Section 2) is a table whose tuples ``t_i`` are
annotated with *local conditions* ``c_i`` and which carries a *global
condition* ``c``; conditions are Boolean combinations of equalities
``x = y`` with ``x, y ∈ Const ∪ Null``.  Under the closed-world semantics
the table represents::

    [[T]]_cwa = { { v(t_i) | v(c_i) is true } | v a valuation with v(c) true }

Conditional tables form a *strong representation system* for full
relational algebra under CWA (Imieliński–Lipski); the algebra acting on
them lives in :mod:`repro.algebra.ctable_algebra`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .relations import Relation, Row
from .schema import RelationSchema
from .valuation import Valuation, enumerate_valuations
from .values import Null, check_value, is_null


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
class Condition:
    """Base class of condition expressions over ``Const ∪ Null``."""

    def evaluate(self, valuation: Valuation) -> bool:
        """Truth value of the condition once nulls are replaced by ``valuation``.

        The valuation must cover every null mentioned by the condition;
        uncovered nulls are compared symbolically (two distinct uncovered
        nulls are considered *not* equal), which matches the convention
        used while simplifying intermediate c-tables.
        """
        raise NotImplementedError

    def nulls(self) -> Set[Null]:
        """The nulls mentioned by the condition."""
        raise NotImplementedError

    def substitute(self, valuation: Valuation) -> "Condition":
        """Replace covered nulls by constants, keeping the condition symbolic."""
        raise NotImplementedError

    def simplify(self) -> "Condition":
        """Constant-fold the condition (without solving it)."""
        return self

    # -- connective helpers -------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other)).simplify()

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other)).simplify()

    def __invert__(self) -> "Condition":
        return Not(self).simplify()


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The condition that always holds."""

    def evaluate(self, valuation: Valuation) -> bool:
        return True

    def nulls(self) -> Set[Null]:
        return set()

    def substitute(self, valuation: Valuation) -> Condition:
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """The condition that never holds."""

    def evaluate(self, valuation: Valuation) -> bool:
        return False

    def nulls(self) -> Set[Null]:
        return set()

    def substitute(self, valuation: Valuation) -> Condition:
        return self

    def __str__(self) -> str:
        return "false"


TRUE = TrueCondition()
FALSE = FalseCondition()


@dataclass(frozen=True)
class Eq(Condition):
    """The atomic condition ``left = right`` with ``left, right ∈ Const ∪ Null``."""

    left: Any
    right: Any

    def __post_init__(self) -> None:
        check_value(self.left)
        check_value(self.right)

    def evaluate(self, valuation: Valuation) -> bool:
        left = valuation(self.left) if is_null(self.left) else self.left
        right = valuation(self.right) if is_null(self.right) else self.right
        return left == right

    def nulls(self) -> Set[Null]:
        return {v for v in (self.left, self.right) if is_null(v)}

    def substitute(self, valuation: Valuation) -> Condition:
        return Eq(valuation(self.left), valuation(self.right)).simplify()

    def simplify(self) -> Condition:
        if not is_null(self.left) and not is_null(self.right):
            return TRUE if self.left == self.right else FALSE
        if is_null(self.left) and is_null(self.right) and self.left == self.right:
            return TRUE
        return self

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def Neq(left: Any, right: Any) -> Condition:
    """The condition ``left ≠ right`` (sugar for ``¬(left = right)``)."""
    return Not(Eq(left, right)).simplify()


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a condition."""

    operand: Condition

    def evaluate(self, valuation: Valuation) -> bool:
        return not self.operand.evaluate(valuation)

    def nulls(self) -> Set[Null]:
        return self.operand.nulls()

    def substitute(self, valuation: Valuation) -> Condition:
        return Not(self.operand.substitute(valuation)).simplify()

    def simplify(self) -> Condition:
        inner = self.operand.simplify()
        if isinstance(inner, TrueCondition):
            return FALSE
        if isinstance(inner, FalseCondition):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)

    def __str__(self) -> str:
        if isinstance(self.operand, Eq):
            return f"{self.operand.left} ≠ {self.operand.right}"
        return f"¬({self.operand})"


def _flatten(cls: type, operands: Iterable[Condition]) -> Tuple[Condition, ...]:
    flat: List[Condition] = []
    for op in operands:
        if isinstance(op, cls):
            flat.extend(op.operands)  # type: ignore[attr-defined]
        else:
            flat.append(op)
    return tuple(flat)


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of conditions (empty conjunction is ``true``)."""

    operands: Tuple[Condition, ...]

    def __init__(self, operands: Iterable[Condition]) -> None:
        object.__setattr__(self, "operands", _flatten(And, operands))

    def evaluate(self, valuation: Valuation) -> bool:
        return all(op.evaluate(valuation) for op in self.operands)

    def nulls(self) -> Set[Null]:
        result: Set[Null] = set()
        for op in self.operands:
            result |= op.nulls()
        return result

    def substitute(self, valuation: Valuation) -> Condition:
        return And(tuple(op.substitute(valuation) for op in self.operands)).simplify()

    def simplify(self) -> Condition:
        simplified: List[Condition] = []
        for op in self.operands:
            op = op.simplify()
            if isinstance(op, FalseCondition):
                return FALSE
            if isinstance(op, TrueCondition):
                continue
            simplified.append(op)
        if not simplified:
            return TRUE
        if len(simplified) == 1:
            return simplified[0]
        return And(tuple(simplified))

    def __str__(self) -> str:
        return " ∧ ".join(f"({op})" if isinstance(op, Or) else str(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of conditions (empty disjunction is ``false``)."""

    operands: Tuple[Condition, ...]

    def __init__(self, operands: Iterable[Condition]) -> None:
        object.__setattr__(self, "operands", _flatten(Or, operands))

    def evaluate(self, valuation: Valuation) -> bool:
        return any(op.evaluate(valuation) for op in self.operands)

    def nulls(self) -> Set[Null]:
        result: Set[Null] = set()
        for op in self.operands:
            result |= op.nulls()
        return result

    def substitute(self, valuation: Valuation) -> Condition:
        return Or(tuple(op.substitute(valuation) for op in self.operands)).simplify()

    def simplify(self) -> Condition:
        simplified: List[Condition] = []
        for op in self.operands:
            op = op.simplify()
            if isinstance(op, TrueCondition):
                return TRUE
            if isinstance(op, FalseCondition):
                continue
            simplified.append(op)
        if not simplified:
            return FALSE
        if len(simplified) == 1:
            return simplified[0]
        return Or(tuple(simplified))

    def __str__(self) -> str:
        return " ∨ ".join(str(op) for op in self.operands)


def conjunction(conditions: Iterable[Condition]) -> Condition:
    """The conjunction of ``conditions`` (simplified)."""
    return And(tuple(conditions)).simplify()


def disjunction(conditions: Iterable[Condition]) -> Condition:
    """The disjunction of ``conditions`` (simplified)."""
    return Or(tuple(conditions)).simplify()


def row_equality(left: Sequence[Any], right: Sequence[Any]) -> Condition:
    """The condition asserting component-wise equality of two rows."""
    if len(left) != len(right):
        raise ValueError("rows must have the same length")
    return conjunction(Eq(a, b) for a, b in zip(left, right))


# ----------------------------------------------------------------------
# Conditional tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConditionalRow:
    """A tuple together with its local condition."""

    values: Row
    condition: Condition = TRUE

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(check_value(v) for v in self.values))

    @staticmethod
    def _from_trusted(values: Row, condition: Condition) -> "ConditionalRow":
        """Build a row from an already-validated value tuple (engine internal)."""
        row = object.__new__(ConditionalRow)
        object.__setattr__(row, "values", values)
        object.__setattr__(row, "condition", condition)
        return row

    def nulls(self) -> Set[Null]:
        """Nulls appearing in the tuple or its condition."""
        return {v for v in self.values if is_null(v)} | self.condition.nulls()

    def __str__(self) -> str:
        return f"{self.values}  if  {self.condition}"


class ConditionalTable:
    """A conditional table (c-table) with local and global conditions.

    Examples
    --------
    The paper's disjunction example, where the table represents either
    ``{0}`` or ``{1}`` depending on the value of the null ``⊥``:

    >>> from repro.datamodel import Null
    >>> bot = Null("b")
    >>> table = ConditionalTable.create(
    ...     "C", [((1,), Eq(bot, 1)), ((0,), Eq(bot, 0))],
    ...     global_condition=Or((Eq(bot, 0), Eq(bot, 1))))
    >>> worlds = table.possible_worlds(domain=[0, 1, 2])
    >>> sorted(sorted(rows) for rows in worlds)
    [[(0,)], [(1,)]]
    """

    __slots__ = ("_schema", "_rows", "_global")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[ConditionalRow] = (),
        global_condition: Condition = TRUE,
    ) -> None:
        self._schema = schema
        checked: List[ConditionalRow] = []
        for row in rows:
            if len(row.values) != schema.arity:
                raise ValueError(
                    f"tuple {row.values!r} does not match arity {schema.arity} of {schema.name}"
                )
            checked.append(row)
        self._rows: Tuple[ConditionalRow, ...] = tuple(checked)
        self._global = global_condition

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        rows: Iterable[Tuple[Sequence[Any], Condition]],
        attributes: Optional[Sequence[str]] = None,
        global_condition: Condition = TRUE,
    ) -> "ConditionalTable":
        """Build a c-table from ``(tuple, condition)`` pairs."""
        rows = [(tuple(values), cond) for values, cond in rows]
        if attributes is not None:
            schema = RelationSchema(name, tuple(attributes))
        else:
            if not rows:
                raise ValueError("cannot infer the arity of an empty c-table; pass attributes")
            schema = RelationSchema.with_arity(name, len(rows[0][0]))
        return cls(schema, [ConditionalRow(values, cond) for values, cond in rows], global_condition)

    @classmethod
    def from_relation(cls, relation: Relation) -> "ConditionalTable":
        """Lift a naive table to a c-table with all-true conditions."""
        return cls(relation.schema, [ConditionalRow(row, TRUE) for row in relation.rows])

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The table schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self._schema.arity

    @property
    def rows(self) -> Tuple[ConditionalRow, ...]:
        """The conditional rows."""
        return self._rows

    @property
    def global_condition(self) -> Condition:
        """The global condition of the table."""
        return self._global

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[ConditionalRow]:
        return iter(self._rows)

    def nulls(self) -> Set[Null]:
        """All nulls mentioned in tuples, local conditions or the global condition."""
        result: Set[Null] = set(self._global.nulls())
        for row in self._rows:
            result |= row.nulls()
        return result

    def constants(self) -> Set[Any]:
        """All constants mentioned in the tuples."""
        return {v for row in self._rows for v in row.values if not is_null(v)}

    def __repr__(self) -> str:
        return (
            f"ConditionalTable({self.name}/{self.arity}, {len(self._rows)} rows, "
            f"global={self._global})"
        )

    def __str__(self) -> str:
        lines = [f"{self.name} (global: {self._global})"]
        lines.extend(f"  {row}" for row in self._rows)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def instantiate(self, valuation: Valuation) -> Optional[Relation]:
        """The world ``{v(t_i) | v(c_i)}`` produced by ``valuation``.

        Returns ``None`` when the global condition is violated (the
        valuation produces no world at all).
        """
        if not self._global.evaluate(valuation):
            return None
        rows = [
            valuation.apply_row(row.values)
            for row in self._rows
            if row.condition.evaluate(valuation)
        ]
        return Relation(self._schema, rows)

    def possible_worlds(self, domain: Iterable[Any]) -> Set[FrozenSet[Row]]:
        """All worlds of ``[[T]]_cwa`` when nulls range over the finite ``domain``.

        Each world is returned as a frozen set of rows (the schema is fixed),
        so the result is directly comparable across representations.
        """
        worlds: Set[FrozenSet[Row]] = set()
        for valuation in enumerate_valuations(self.nulls(), domain):
            world = self.instantiate(valuation)
            if world is not None:
                worlds.add(frozenset(world.rows))
        return worlds

    def certain_rows(self, domain: Iterable[Any]) -> Set[Row]:
        """Rows present in every world (intersection-based certainty)."""
        worlds = self.possible_worlds(domain)
        if not worlds:
            return set()
        result = set(next(iter(worlds)))
        for world in worlds:
            result &= world
        return result

    def possible_rows(self, domain: Iterable[Any]) -> Set[Row]:
        """Rows present in at least one world."""
        result: Set[Row] = set()
        for world in self.possible_worlds(domain):
            result |= world
        return result

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_global(self, condition: Condition) -> "ConditionalTable":
        """The table with its global condition strengthened by ``condition``."""
        return ConditionalTable(self._schema, self._rows, conjunction((self._global, condition)))

    def rename(self, new_name: str) -> "ConditionalTable":
        """The same table under a different relation name."""
        return ConditionalTable(self._schema.rename(new_name), self._rows, self._global)

    def simplified(self) -> "ConditionalTable":
        """Drop rows whose condition simplifies to ``false``; fold conditions."""
        global_condition = self._global.simplify()
        if isinstance(global_condition, FalseCondition):
            return ConditionalTable(self._schema, (), FALSE)
        rows = []
        for row in self._rows:
            condition = row.condition.simplify()
            if isinstance(condition, FalseCondition):
                continue
            rows.append(ConditionalRow(row.values, condition))
        return ConditionalTable(self._schema, rows, global_condition)
