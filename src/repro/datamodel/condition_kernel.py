"""A hash-consed kernel for c-table conditions.

The Imieliński–Lipski algebra (:mod:`repro.algebra.ctable_algebra`)
builds Boolean conditions row pair by row pair; dense joins construct the
same equalities, conjunctions and negations over and over, and the seed
implementation re-runs :meth:`Condition.simplify` on every composition.
This module makes the condition DAG cheap to build and reuse — the same
treatment probabilistic-database engines give their lineage formulas:

* **Interning (hash-consing).**  :meth:`ConditionKernel.intern` maps every
  condition to a canonical, simplified instance; structurally equal
  conditions become the *same* object, so composition memo tables can be
  keyed by identity instead of re-hashing whole subtrees.
* **Memoized connectives.**  :meth:`ConditionKernel.and_` /
  :meth:`ConditionKernel.or_` memoize pairwise composition under
  ``(id(a), id(b))``; :meth:`ConditionKernel.not_` caches the negation on
  the node itself.  Flattening, ``true``/``false`` elimination and
  duplicate removal happen at construction, so the result of a kernel
  constructor never needs a separate ``simplify()`` pass.
* **Cached nulls.**  :func:`kernel_nulls` computes the set of nulls
  mentioned by a condition once per node (shared frozensets, no repeated
  set unions); the cache is structural, hence shared by all kernels.
* **Unsatisfiability check.**  A union-find over the equality atoms of a
  conjunction detects conditions like ``x = 1 ∧ x = 2`` or
  ``x = y ∧ y = 1 ∧ x ≠ 1`` at construction time, collapsing them to
  ``FALSE`` before they are expanded further (e.g. before a membership
  disjunction is built on top of them).

The kernel produces plain :class:`~repro.datamodel.conditional.Condition`
nodes, so everything downstream (``evaluate``, ``substitute``,
``possible_worlds``, structural equality) keeps working; it only
guarantees that what it returns is already simplified and canonical.

Kernel state lives on :class:`ConditionKernel` instances: every
:class:`~repro.session.Session` owns one, so two sessions never share
intern or memo tables, and :func:`repro.connect` can bound each one
independently through ``kernel_watermark=``.  The original module-level
API (``kernel_eq``, ``kernel_and``, ``clear_condition_kernel``, ...)
remains as a thin shim over the process-default instance
:data:`DEFAULT_KERNEL`, which backs all legacy non-session entry points.

Canonical nodes are held strongly by a kernel's intern table, which keeps
the identity keys of its memo tables stable; :meth:`ConditionKernel.clear`
drops every table at once (mainly for tests and benchmarks), and
:meth:`ConditionKernel.evict` reclaims the conditions a whole usage epoch
never touched.  A kernel constructed with ``watermark=n`` runs that
eviction automatically whenever its intern table grows past ``n``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .conditional import (
    FALSE,
    TRUE,
    And,
    Condition,
    Eq,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
)
from .values import intern_value, is_null

# Structural nulls cache: a pure function of the condition tree, hence one
# shared attribute regardless of which kernel canonized the node.
_NULLS = "_kernel_nulls"

_EMPTY_NULLS: FrozenSet[Any] = frozenset()

#: Distinct per-node attribute suffixes, one per kernel instance, so the
#: canonical marks / negation caches / touch stamps of different kernels
#: (different sessions) can never be confused for one another.
_KERNEL_IDS = itertools.count(1)


class ConditionKernel:
    """Hash-consing state for one evaluation context (typically a Session).

    Parameters
    ----------
    watermark:
        When set, :meth:`evict` runs automatically as soon as the intern
        table grows past this many canonical nodes: conditions created or
        reused in the epoch now ending survive (hot conditions keep their
        identity), cold ones are reclaimed.  After each sweep the next
        trigger point is ``max(watermark, 2 * kept)`` so a working set
        larger than the watermark cannot thrash the sweep on every insert.
    memo_limit:
        Bound on *each* of the ∧/∨ memo tables.  The intern watermark
        alone does not bound a long-lived session: the memo tables grow
        with every distinct operand *pair* and shrink only when a sweep
        happens to scrub their entries.  Past the limit the oldest half of
        the overflowing table is dropped (insertion order ≈ recency for
        memo hits in a composition-heavy workload) — purely a cache trim,
        results are recomputed on demand.  Defaults to ``8 * watermark``
        when a watermark is set, else unbounded.
    """

    __slots__ = (
        "_intern",
        "_and2",
        "_or2",
        "_epoch",
        "_use_epoch",
        "_watermark",
        "_trigger",
        "_memo_limit",
        "auto_evictions",
        "memo_trims",
        "_mark_attr",
        "_neg_attr",
        "_touch_attr",
        "_confidence",
        "_frozen",
    )

    def __init__(
        self,
        watermark: Optional[int] = None,
        memo_limit: Optional[int] = None,
        _legacy_attrs: bool = False,
    ) -> None:
        # canonical structural key -> canonical node (strong refs: identity
        # keys in the memo tables below stay valid exactly as long as these
        # entries live)
        self._intern: Dict[Tuple[Any, ...], Condition] = {}
        # (id(a), id(b)) -> (a, b, result); the operands are stored in the
        # value so their ids cannot be recycled while the entry exists
        self._and2: Dict[Tuple[int, int], Tuple[Condition, Condition, Condition]] = {}
        self._or2: Dict[Tuple[int, int], Tuple[Condition, Condition, Condition]] = {}
        # Epoch of the intern tables.  Canonical marks and negation caches
        # record the epoch they were written under; clearing bumps it, so
        # nodes surviving from an earlier generation re-intern instead of
        # short-circuiting on a stale mark (which would silently break
        # "structurally equal conditions are the same object" across a
        # clear).
        self._epoch = 0
        # Usage epoch for the eviction policy.  Every creation or reuse of
        # a canonical node stamps it with the current usage epoch;
        # :meth:`evict` keeps exactly the nodes stamped in the epoch now
        # ending (plus their operand closure) and starts the next one.
        # Unlike ``_epoch``, bumping this never invalidates surviving nodes.
        self._use_epoch = 0
        if watermark is not None and watermark < 1:
            raise ValueError(f"kernel watermark must be >= 1, got {watermark!r}")
        if memo_limit is not None and memo_limit < 2:
            raise ValueError(f"kernel memo_limit must be >= 2, got {memo_limit!r}")
        self._watermark = watermark
        self._trigger = watermark
        if memo_limit is None and watermark is not None:
            memo_limit = 8 * watermark
        self._memo_limit = memo_limit
        self.auto_evictions = 0
        self.memo_trims = 0
        if _legacy_attrs:
            # The process-default kernel keeps the attribute names the
            # module-global implementation used, so nodes canonized before
            # this refactor (or by pickled/copied code paths) stay valid.
            suffix = ""
        else:
            suffix = f"_{next(_KERNEL_IDS)}"
        self._mark_attr = "_kernel_canonical" + suffix
        self._neg_attr = "_kernel_negation" + suffix
        self._touch_attr = "_kernel_touch" + suffix
        # id(model) -> (model, {id(condition): (condition, probability)});
        # per-model confidence memos for repro.prob (the model is stored in
        # the entry so its id cannot be recycled while the entry exists,
        # the same discipline as the pair memos above).
        self._confidence: Dict[int, Tuple[Any, Dict[int, Tuple[Condition, float]]]] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> Optional[int]:
        """The intern-table size past which :meth:`evict` runs automatically."""
        return self._watermark

    @property
    def memo_limit(self) -> Optional[int]:
        """The per-memo-table size past which the oldest half is dropped."""
        return self._memo_limit

    @property
    def epoch(self) -> int:
        """The eviction epoch: bumped by :meth:`clear` and :meth:`evict`.

        Anything that caches interned-condition identity across calls
        (plan caches, resumption tokens) records this and treats a
        mismatch as "the cache is stale" — surviving nodes are re-marked
        lazily, but nodes held *outside* the kernel may no longer be
        canonical.
        """
        return self._epoch

    def _trim_memo(
        self, table: Dict[Tuple[int, int], Tuple[Condition, Condition, Condition]]
    ) -> None:
        """Drop the oldest half of ``table`` when it outgrows the limit.

        Dicts preserve insertion order, so the first half of the keys is
        the coldest by creation time; a trimmed pair simply recomputes
        (``conjunction``/``disjunction`` stay correct without the memo).
        """
        limit = self._memo_limit
        if limit is None or len(table) <= limit:
            return
        for key in list(itertools.islice(iter(table), len(table) // 2)):
            del table[key]
        self.memo_trims += 1

    #: Most probability models tracked per kernel before the oldest is
    #: dropped; one session rarely juggles more than a couple of models.
    _CONFIDENCE_MODELS = 8

    def confidence_memo(self, model: Any) -> Optional[Dict[int, Tuple[Condition, float]]]:
        """The shared confidence memo for ``model``, or ``None`` when frozen.

        The memo maps ``id(condition) -> (condition, probability)`` —
        identity keys are valid because the condition is pinned in the
        value, the same discipline as the and/or pair memos.  A frozen
        kernel returns ``None`` so confidence evaluation memoizes
        per-call instead of mutating shared state; that keeps frozen
        sessions lock-free.
        """
        if self._frozen:
            return None
        entry = self._confidence.get(id(model))
        if entry is None or entry[0] is not model:
            entry = (model, {})
            self._confidence[id(model)] = entry
            while len(self._confidence) > self._CONFIDENCE_MODELS:
                del self._confidence[next(iter(self._confidence))]
        return entry[1]

    def frozen_confidence_memo(
        self, model: Any
    ) -> Optional[Dict[int, Tuple[Condition, float]]]:
        """The memo warmed for ``model`` before :meth:`freeze`, read-only.

        ``None`` when the model was never warmed.  Callers must not write
        into it — frozen-session confidence queries layer a per-call memo
        on top.
        """
        entry = self._confidence.get(id(model))
        if entry is not None and entry[0] is model:
            return entry[1]
        return None

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has made the kernel read-only."""
        return self._frozen

    def freeze(self) -> None:
        """Make the kernel read-only so it can be shared across threads.

        A frozen kernel serves interned hits without touch-stamping,
        canonizes misses without publishing them into the intern table
        (the result is still simplified and canonical *per call*, it just
        loses cross-call identity sharing), skips all memo writes, and
        refuses :meth:`clear`/:meth:`evict`.  Nothing reachable from the
        kernel is mutated after freezing, which under the GIL makes
        concurrent use safe without locks.  Warm the working set before
        freezing.  Freezing is one-way.
        """
        self._frozen = True

    def clear(self) -> None:
        """Drop the intern table and every memo table (tests/benchmarks)."""
        if self._frozen:
            from ..resilience import InvalidRequestError

            raise InvalidRequestError("cannot clear a frozen condition kernel")
        self._epoch += 1
        self._use_epoch += 1
        self._intern.clear()
        self._and2.clear()
        self._or2.clear()
        self._confidence.clear()
        self._trigger = self._watermark

    def stats(self) -> Dict[str, int]:
        """Sizes of the kernel tables (for tests and diagnostics)."""
        return {
            "interned": len(self._intern),
            "and_memo": len(self._and2),
            "or_memo": len(self._or2),
            "confidence_memo": sum(
                len(memo) for _, memo in self._confidence.values()
            ),
        }

    def evict(self) -> Dict[str, int]:
        """End the current usage epoch, evicting conditions it never touched.

        Long-running services call
        :meth:`repro.engine.planner.PlanCache.clear` as their one
        cache-reset point; dropping the *whole* kernel there throws away
        the very conditions the next query is about to rebuild.  This
        eviction keeps every condition created or reused since the
        previous eviction — the working set of the epoch now ending —
        together with its transitive operands (a retained conjunction must
        never reference an evicted atom), and drops the rest:

        * evicted nodes lose their canonical mark (and cached negation),
          so a structurally equal condition built later re-interns cleanly;
        * memo entries whose operands or result were evicted are dropped,
          so the tables cannot resurrect (or keep alive) evicted nodes.

        Returns ``{"kept": ..., "evicted": ...}`` intern-table counts.
        Conditions only *used* in an epoch survive it, so a hot condition
        lives across arbitrarily many evictions while a condition
        untouched for one full epoch is reclaimed.
        """
        if self._frozen:
            from ..resilience import InvalidRequestError

            raise InvalidRequestError("cannot evict from a frozen condition kernel")
        ending = self._use_epoch
        mark_attr = self._mark_attr
        neg_attr = self._neg_attr
        touch_attr = self._touch_attr
        retained: set = set()
        stack: List[Condition] = [
            node for node in self._intern.values() if getattr(node, touch_attr, None) == ending
        ]
        while stack:
            node = stack.pop()
            if id(node) in retained:
                continue
            retained.add(id(node))
            if isinstance(node, Not):
                stack.append(node.operand)
            elif isinstance(node, (And, Or)):
                stack.extend(node.operands)
            negation = getattr(node, neg_attr, None)
            if negation is not None and negation[0] == self._epoch:
                stack.append(negation[1])
        survivors: Dict[Tuple[Any, ...], Condition] = {}
        evicted = 0
        for key, node in self._intern.items():
            if id(node) in retained:
                survivors[key] = node
            else:
                evicted += 1
                object.__setattr__(node, mark_attr, None)
                if getattr(node, neg_attr, None) is not None:
                    object.__setattr__(node, neg_attr, None)
        self._intern.clear()
        self._intern.update(survivors)

        epoch = self._epoch

        def _live(condition: Condition) -> bool:
            if isinstance(condition, (TrueCondition, FalseCondition)):
                return True
            return getattr(condition, mark_attr, None) == epoch

        for table in (self._and2, self._or2):
            dead = [
                key
                for key, (a, b, result) in table.items()
                if not (_live(a) and _live(b) and _live(result))
            ]
            for key in dead:
                del table[key]
        # Confidence memos key conditions by identity; after an eviction the
        # evicted identities can never be looked up again, so the whole
        # per-model memo is dead weight.  Recomputing is always sound.
        self._confidence.clear()
        self._use_epoch += 1
        return {"kept": len(self._intern), "evicted": evicted}

    # ------------------------------------------------------------------
    # canonization plumbing
    # ------------------------------------------------------------------
    def _touch(self, node: Condition) -> None:
        if self._frozen:
            return  # touch stamps drive eviction, which a frozen kernel refuses
        if getattr(node, self._touch_attr, None) != self._use_epoch:
            object.__setattr__(node, self._touch_attr, self._use_epoch)

    def _canonize(self, key: Tuple[Any, ...], node: Condition) -> Condition:
        existing = self._intern.get(key)
        if existing is not None:
            self._touch(existing)
            return existing
        if self._frozen:
            # Read-only: the fresh node is simplified and private to this
            # call — mark it (it is not shared yet) but never publish it
            # into the intern table, which concurrent readers are walking.
            object.__setattr__(node, self._mark_attr, self._epoch)
            return node
        object.__setattr__(node, self._mark_attr, self._epoch)
        self._touch(node)
        self._intern[key] = node
        if self._trigger is not None and len(self._intern) > self._trigger:
            # The size watermark (ROADMAP "condition kernel growth"): end
            # the usage epoch right here.  Everything composed so far in
            # this epoch — including the operands of whatever condition is
            # being built at this very moment — carries the current touch
            # stamp, so in-flight compositions survive the sweep.
            self.evict()
            self.auto_evictions += 1
            self._trigger = max(self._watermark or 1, 2 * len(self._intern))
        return node

    # ------------------------------------------------------------------
    # Constructors: always return canonical, simplified nodes
    # ------------------------------------------------------------------
    def eq(self, left: Any, right: Any) -> Condition:
        """Canonical ``left = right``, constant-folded."""
        left = intern_value(left)
        right = intern_value(right)
        left_null = is_null(left)
        right_null = is_null(right)
        if not left_null and not right_null:
            return TRUE if left == right else FALSE
        if left_null and right_null and left == right:
            return TRUE
        key = ("eq", left, right)
        existing = self._intern.get(key)
        if existing is not None:
            self._touch(existing)
            return existing
        return self._canonize(key, Eq(left, right))

    def not_(self, operand: Condition) -> Condition:
        """Canonical negation (double negation and constants eliminated)."""
        if operand is TRUE:
            return FALSE
        if operand is FALSE:
            return TRUE
        operand = self.intern(operand)
        cached = getattr(operand, self._neg_attr, None)
        if cached is not None and cached[0] == self._epoch:
            self._touch(cached[1])
            return cached[1]
        if isinstance(operand, TrueCondition):
            result: Condition = FALSE
        elif isinstance(operand, FalseCondition):
            result = TRUE
        elif isinstance(operand, Not):
            result = operand.operand  # already canonical
        else:
            result = self._canonize(("not", id(operand)), Not(operand))
        if not self._frozen:  # the operand may be a shared interned node
            object.__setattr__(operand, self._neg_attr, (self._epoch, result))
        return result

    def conjunction(self, operands: Iterable[Condition]) -> Condition:
        """Canonical conjunction: flattened, deduplicated, unsat-checked."""
        flat: List[Condition] = []
        seen: set = set()
        for op in operands:
            op = self.intern(op)
            if isinstance(op, FalseCondition):
                return FALSE
            if isinstance(op, TrueCondition):
                continue
            if isinstance(op, And):
                members: Tuple[Condition, ...] = op.operands
            else:
                members = (op,)
            for member in members:
                marker = id(member)
                if marker not in seen:
                    seen.add(marker)
                    flat.append(member)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        if _equalities_unsatisfiable(flat):
            return FALSE
        key = ("and", tuple(id(op) for op in flat))
        existing = self._intern.get(key)
        if existing is not None:
            self._touch(existing)
            return existing
        return self._canonize(key, And(tuple(flat)))

    def disjunction(self, operands: Iterable[Condition]) -> Condition:
        """Canonical disjunction: flattened, deduplicated, constants removed."""
        flat: List[Condition] = []
        seen: set = set()
        for op in operands:
            op = self.intern(op)
            if isinstance(op, TrueCondition):
                return TRUE
            if isinstance(op, FalseCondition):
                continue
            if isinstance(op, Or):
                members: Tuple[Condition, ...] = op.operands
            else:
                members = (op,)
            for member in members:
                marker = id(member)
                if marker not in seen:
                    seen.add(marker)
                    flat.append(member)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        key = ("or", tuple(id(op) for op in flat))
        existing = self._intern.get(key)
        if existing is not None:
            self._touch(existing)
            return existing
        return self._canonize(key, Or(tuple(flat)))

    def and_(self, a: Condition, b: Condition) -> Condition:
        """Memoized binary conjunction of canonical conditions."""
        if a is TRUE:
            return self.intern(b)
        if b is TRUE:
            return self.intern(a)
        if a is FALSE or b is FALSE:
            return FALSE
        key = (id(a), id(b))
        hit = self._and2.get(key)
        if hit is not None:
            self._touch(a)
            self._touch(b)
            self._touch(hit[2])
            return hit[2]
        result = self.conjunction((a, b))
        if not self._frozen:
            self._and2[key] = (a, b, result)
            self._trim_memo(self._and2)
        return result

    def or_(self, a: Condition, b: Condition) -> Condition:
        """Memoized binary disjunction of canonical conditions."""
        if a is FALSE:
            return self.intern(b)
        if b is FALSE:
            return self.intern(a)
        if a is TRUE or b is TRUE:
            return TRUE
        key = (id(a), id(b))
        hit = self._or2.get(key)
        if hit is not None:
            self._touch(a)
            self._touch(b)
            self._touch(hit[2])
            return hit[2]
        result = self.disjunction((a, b))
        if not self._frozen:
            self._or2[key] = (a, b, result)
            self._trim_memo(self._or2)
        return result

    def row_equality(self, left: Sequence[Any], right: Sequence[Any]) -> Condition:
        """Canonical component-wise equality of two rows."""
        if len(left) != len(right):
            raise ValueError("rows must have the same length")
        return self.conjunction(self.eq(a, b) for a, b in zip(left, right))

    # ------------------------------------------------------------------
    # Interning of externally built conditions
    # ------------------------------------------------------------------
    def intern(self, condition: Condition) -> Condition:
        """The canonical, simplified form of an arbitrary condition.

        Idempotent and cheap on already-canonical nodes (a marker attribute
        recording the current table epoch short-circuits); on foreign
        conditions — including survivors of :meth:`clear` and nodes
        canonized by *another* kernel, whose marks live under a different
        attribute — it rebuilds bottom-up through the kernel constructors,
        which is where simplification happens.
        """
        if condition is TRUE or condition is FALSE:
            return condition
        if getattr(condition, self._mark_attr, None) == self._epoch:
            self._touch(condition)
            return condition
        if isinstance(condition, TrueCondition):
            return TRUE
        if isinstance(condition, FalseCondition):
            return FALSE
        if isinstance(condition, Eq):
            return self.eq(condition.left, condition.right)
        if isinstance(condition, Not):
            return self.not_(self.intern(condition.operand))
        if isinstance(condition, And):
            return self.conjunction(self.intern(op) for op in condition.operands)
        if isinstance(condition, Or):
            return self.disjunction(self.intern(op) for op in condition.operands)
        raise TypeError(f"unsupported condition {condition!r}")

    def nulls(self, condition: Condition) -> FrozenSet[Any]:
        """The nulls mentioned by ``condition`` (structural, kernel-shared)."""
        return kernel_nulls(condition)


# ----------------------------------------------------------------------
# The process-default kernel and the original module-level API
# ----------------------------------------------------------------------
#: The process-default kernel: backs the module-level ``kernel_*`` shims
#: and every legacy (non-session) evaluation path.  Sessions create their
#: own instances through :func:`repro.connect`.
DEFAULT_KERNEL = ConditionKernel(_legacy_attrs=True)

# Bound-method aliases: the historical functional API, now a shim over the
# default instance.  Session-aware code should use the kernel instance it
# was handed instead.
kernel_eq = DEFAULT_KERNEL.eq
kernel_not = DEFAULT_KERNEL.not_
kernel_and = DEFAULT_KERNEL.and_
kernel_or = DEFAULT_KERNEL.or_
kernel_conjunction = DEFAULT_KERNEL.conjunction
kernel_disjunction = DEFAULT_KERNEL.disjunction
kernel_row_equality = DEFAULT_KERNEL.row_equality
intern_condition = DEFAULT_KERNEL.intern


def clear_condition_kernel() -> None:
    """Drop the default kernel's intern and memo tables (tests/benchmarks)."""
    DEFAULT_KERNEL.clear()


def kernel_stats() -> Dict[str, int]:
    """Sizes of the default kernel's tables (for tests and diagnostics)."""
    return DEFAULT_KERNEL.stats()


def evict_condition_kernel() -> Dict[str, int]:
    """Run an epoch eviction on the default kernel; see :meth:`ConditionKernel.evict`."""
    return DEFAULT_KERNEL.evict()


# ----------------------------------------------------------------------
# Cached nulls (structural — shared by every kernel)
# ----------------------------------------------------------------------
def kernel_nulls(condition: Condition) -> FrozenSet[Any]:
    """The nulls mentioned by ``condition``, cached on the node itself."""
    cached = getattr(condition, _NULLS, None)
    if cached is not None:
        return cached
    if isinstance(condition, (TrueCondition, FalseCondition)):
        result = _EMPTY_NULLS
    elif isinstance(condition, Eq):
        left_null = is_null(condition.left)
        right_null = is_null(condition.right)
        if left_null and right_null:
            result = frozenset((condition.left, condition.right))
        elif left_null:
            result = frozenset((condition.left,))
        elif right_null:
            result = frozenset((condition.right,))
        else:
            result = _EMPTY_NULLS
    elif isinstance(condition, Not):
        result = kernel_nulls(condition.operand)
    elif isinstance(condition, (And, Or)):
        parts = [kernel_nulls(op) for op in condition.operands]
        nonempty = [p for p in parts if p]
        if not nonempty:
            result = _EMPTY_NULLS
        elif len(nonempty) == 1:
            result = nonempty[0]
        else:
            result = frozenset().union(*nonempty)
    else:
        raise TypeError(f"unsupported condition {condition!r}")
    object.__setattr__(condition, _NULLS, result)
    return result


# ----------------------------------------------------------------------
# Union-find unsatisfiability check for equality conjunctions
# ----------------------------------------------------------------------
def _equalities_unsatisfiable(operands: Sequence[Condition]) -> bool:
    """``True`` when the ``Eq``/``¬Eq`` atoms among ``operands`` conflict.

    Sound but deliberately incomplete: positive equalities are merged with
    a union-find whose classes remember at most one constant; a conflict
    (two distinct constants forced equal, or a disequality inside one
    class) proves the whole conjunction unsatisfiable.  Atoms nested under
    ``Or`` are ignored — the check never reports a satisfiable condition
    as unsatisfiable.
    """
    parent: Dict[Any, Any] = {}
    constant_of: Dict[Any, Any] = {}

    def find(value: Any) -> Any:
        root = parent.setdefault(value, value)
        if root == value:
            if not is_null(value):
                constant_of.setdefault(value, value)
            return value
        # path compression
        path = []
        while parent[root] != root:
            path.append(root)
            root = parent[root]
        for node in path:
            parent[node] = root
        parent[value] = root
        return root

    equalities = [op for op in operands if type(op) is Eq]
    if not equalities:
        return False
    for eq in equalities:
        left_root = find(eq.left)
        right_root = find(eq.right)
        if left_root == right_root:
            continue
        left_const = constant_of.get(left_root)
        right_const = constant_of.get(right_root)
        if left_const is not None and right_const is not None and left_const != right_const:
            return True
        parent[left_root] = right_root
        if right_const is None and left_const is not None:
            constant_of[right_root] = left_const
    for op in operands:
        if type(op) is Not and type(op.operand) is Eq:
            atom = op.operand
            if find(atom.left) == find(atom.right):
                return True
    return False
