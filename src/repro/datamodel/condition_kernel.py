"""A hash-consed kernel for c-table conditions.

The Imieliński–Lipski algebra (:mod:`repro.algebra.ctable_algebra`)
builds Boolean conditions row pair by row pair; dense joins construct the
same equalities, conjunctions and negations over and over, and the seed
implementation re-runs :meth:`Condition.simplify` on every composition.
This module makes the condition DAG cheap to build and reuse — the same
treatment probabilistic-database engines give their lineage formulas:

* **Interning (hash-consing).**  :func:`intern_condition` maps every
  condition to a canonical, simplified instance; structurally equal
  conditions become the *same* object, so composition memo tables can be
  keyed by identity instead of re-hashing whole subtrees.
* **Memoized connectives.**  :func:`kernel_and` / :func:`kernel_or`
  memoize pairwise composition under ``(id(a), id(b))``; :func:`kernel_not`
  caches the negation on the node itself.  Flattening, ``true``/``false``
  elimination and duplicate removal happen at construction, so the result
  of a kernel constructor never needs a separate ``simplify()`` pass.
* **Cached nulls.**  :func:`kernel_nulls` computes the set of nulls
  mentioned by a condition once per canonical node (shared frozensets,
  no repeated set unions).
* **Unsatisfiability check.**  A union-find over the equality atoms of a
  conjunction detects conditions like ``x = 1 ∧ x = 2`` or
  ``x = y ∧ y = 1 ∧ x ≠ 1`` at construction time, collapsing them to
  ``FALSE`` before they are expanded further (e.g. before a membership
  disjunction is built on top of them).

The kernel produces plain :class:`~repro.datamodel.conditional.Condition`
nodes, so everything downstream (``evaluate``, ``substitute``,
``possible_worlds``, structural equality) keeps working; it only
guarantees that what it returns is already simplified and canonical.

Canonical nodes are held strongly by the intern table, which keeps the
identity keys of the memo tables stable; :func:`clear_condition_kernel`
drops every table at once (mainly for tests and benchmarks).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from .conditional import (
    FALSE,
    TRUE,
    And,
    Condition,
    Eq,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
)
from .values import intern_value, is_null

# canonical structural key -> canonical node (strong refs: identity keys in
# the memo tables below stay valid exactly as long as these entries live)
_INTERN: Dict[Tuple[Any, ...], Condition] = {}
# (id(a), id(b)) -> (a, b, result); the operands are stored in the value so
# their ids cannot be recycled while the entry exists
_AND2: Dict[Tuple[int, int], Tuple[Condition, Condition, Condition]] = {}
_OR2: Dict[Tuple[int, int], Tuple[Condition, Condition, Condition]] = {}

# attribute names used for per-node caches (set with object.__setattr__
# because condition dataclasses are frozen)
_MARK = "_kernel_canonical"
_NULLS = "_kernel_nulls"
_NEG = "_kernel_negation"
_TOUCH = "_kernel_touch"

_EMPTY_NULLS: FrozenSet[Any] = frozenset()

# Epoch of the intern tables.  Canonical marks and negation caches record
# the epoch they were written under; clearing bumps it, so nodes surviving
# from an earlier generation re-intern instead of short-circuiting on a
# stale mark (which would silently break "structurally equal conditions
# are the same object" across a clear).
_EPOCH = 0

# Usage epoch for the eviction policy.  Every creation or reuse of a
# canonical node stamps it with the current usage epoch;
# :func:`evict_condition_kernel` keeps exactly the nodes stamped in the
# epoch now ending (plus their operand closure) and starts the next one.
# Unlike ``_EPOCH``, bumping this never invalidates surviving nodes.
_USE_EPOCH = 0


def clear_condition_kernel() -> None:
    """Drop the intern table and every memo table (tests/benchmarks)."""
    global _EPOCH, _USE_EPOCH
    _EPOCH += 1
    _USE_EPOCH += 1
    _INTERN.clear()
    _AND2.clear()
    _OR2.clear()


def kernel_stats() -> Dict[str, int]:
    """Sizes of the kernel tables (for tests and diagnostics)."""
    return {"interned": len(_INTERN), "and_memo": len(_AND2), "or_memo": len(_OR2)}


def evict_condition_kernel() -> Dict[str, int]:
    """End the current usage epoch, evicting conditions it never touched.

    Long-running services call :func:`repro.engine.clear_plan_cache` as
    their one cache-reset point; dropping the *whole* kernel there throws
    away the very conditions the next query is about to rebuild.  This
    eviction keeps every condition created or reused since the previous
    eviction — the working set of the epoch now ending — together with
    its transitive operands (a retained conjunction must never reference
    an evicted atom), and drops the rest:

    * evicted nodes lose their canonical mark (and cached negation), so
      a structurally equal condition built later re-interns cleanly;
    * memo entries whose operands or result were evicted are dropped, so
      the tables cannot resurrect (or keep alive) evicted nodes.

    Returns ``{"kept": ..., "evicted": ...}`` intern-table counts.
    Conditions only *used* in an epoch survive it, so a hot condition
    lives across arbitrarily many evictions while a condition untouched
    for one full epoch is reclaimed.
    """
    global _USE_EPOCH
    ending = _USE_EPOCH
    retained: set = set()
    stack: List[Condition] = [
        node for node in _INTERN.values() if getattr(node, _TOUCH, None) == ending
    ]
    while stack:
        node = stack.pop()
        if id(node) in retained:
            continue
        retained.add(id(node))
        if isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.extend(node.operands)
        negation = getattr(node, _NEG, None)
        if negation is not None and negation[0] == _EPOCH:
            stack.append(negation[1])
    survivors: Dict[Tuple[Any, ...], Condition] = {}
    evicted = 0
    for key, node in _INTERN.items():
        if id(node) in retained:
            survivors[key] = node
        else:
            evicted += 1
            object.__setattr__(node, _MARK, None)
            if getattr(node, _NEG, None) is not None:
                object.__setattr__(node, _NEG, None)
    _INTERN.clear()
    _INTERN.update(survivors)

    def _live(condition: Condition) -> bool:
        if isinstance(condition, (TrueCondition, FalseCondition)):
            return True
        return getattr(condition, _MARK, None) == _EPOCH

    for table in (_AND2, _OR2):
        dead = [
            key
            for key, (a, b, result) in table.items()
            if not (_live(a) and _live(b) and _live(result))
        ]
        for key in dead:
            del table[key]
    _USE_EPOCH += 1
    return {"kept": len(_INTERN), "evicted": evicted}


def _touch(node: Condition) -> None:
    if getattr(node, _TOUCH, None) != _USE_EPOCH:
        object.__setattr__(node, _TOUCH, _USE_EPOCH)


def _canonize(key: Tuple[Any, ...], node: Condition) -> Condition:
    existing = _INTERN.get(key)
    if existing is not None:
        _touch(existing)
        return existing
    object.__setattr__(node, _MARK, _EPOCH)
    _touch(node)
    _INTERN[key] = node
    return node


# ----------------------------------------------------------------------
# Constructors: always return canonical, simplified nodes
# ----------------------------------------------------------------------
def kernel_eq(left: Any, right: Any) -> Condition:
    """Canonical ``left = right``, constant-folded."""
    left = intern_value(left)
    right = intern_value(right)
    left_null = is_null(left)
    right_null = is_null(right)
    if not left_null and not right_null:
        return TRUE if left == right else FALSE
    if left_null and right_null and left == right:
        return TRUE
    key = ("eq", left, right)
    existing = _INTERN.get(key)
    if existing is not None:
        _touch(existing)
        return existing
    return _canonize(key, Eq(left, right))


def kernel_not(operand: Condition) -> Condition:
    """Canonical negation (double negation and constants eliminated)."""
    if operand is TRUE:
        return FALSE
    if operand is FALSE:
        return TRUE
    operand = intern_condition(operand)
    cached = getattr(operand, _NEG, None)
    if cached is not None and cached[0] == _EPOCH:
        _touch(cached[1])
        return cached[1]
    if isinstance(operand, TrueCondition):
        result: Condition = FALSE
    elif isinstance(operand, FalseCondition):
        result = TRUE
    elif isinstance(operand, Not):
        result = operand.operand  # already canonical
    else:
        result = _canonize(("not", id(operand)), Not(operand))
    object.__setattr__(operand, _NEG, (_EPOCH, result))
    return result


def kernel_conjunction(operands: Iterable[Condition]) -> Condition:
    """Canonical conjunction: flattened, deduplicated, unsat-checked."""
    flat: List[Condition] = []
    seen: set = set()
    for op in operands:
        op = intern_condition(op)
        if isinstance(op, FalseCondition):
            return FALSE
        if isinstance(op, TrueCondition):
            continue
        if isinstance(op, And):
            members: Tuple[Condition, ...] = op.operands
        else:
            members = (op,)
        for member in members:
            marker = id(member)
            if marker not in seen:
                seen.add(marker)
                flat.append(member)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    if _equalities_unsatisfiable(flat):
        return FALSE
    key = ("and", tuple(id(op) for op in flat))
    existing = _INTERN.get(key)
    if existing is not None:
        _touch(existing)
        return existing
    return _canonize(key, And(tuple(flat)))


def kernel_disjunction(operands: Iterable[Condition]) -> Condition:
    """Canonical disjunction: flattened, deduplicated, constants removed."""
    flat: List[Condition] = []
    seen: set = set()
    for op in operands:
        op = intern_condition(op)
        if isinstance(op, TrueCondition):
            return TRUE
        if isinstance(op, FalseCondition):
            continue
        if isinstance(op, Or):
            members: Tuple[Condition, ...] = op.operands
        else:
            members = (op,)
        for member in members:
            marker = id(member)
            if marker not in seen:
                seen.add(marker)
                flat.append(member)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    key = ("or", tuple(id(op) for op in flat))
    existing = _INTERN.get(key)
    if existing is not None:
        _touch(existing)
        return existing
    return _canonize(key, Or(tuple(flat)))


def kernel_and(a: Condition, b: Condition) -> Condition:
    """Memoized binary conjunction of canonical conditions."""
    if a is TRUE:
        return intern_condition(b)
    if b is TRUE:
        return intern_condition(a)
    if a is FALSE or b is FALSE:
        return FALSE
    key = (id(a), id(b))
    hit = _AND2.get(key)
    if hit is not None:
        _touch(a)
        _touch(b)
        _touch(hit[2])
        return hit[2]
    result = kernel_conjunction((a, b))
    _AND2[key] = (a, b, result)
    return result


def kernel_or(a: Condition, b: Condition) -> Condition:
    """Memoized binary disjunction of canonical conditions."""
    if a is FALSE:
        return intern_condition(b)
    if b is FALSE:
        return intern_condition(a)
    if a is TRUE or b is TRUE:
        return TRUE
    key = (id(a), id(b))
    hit = _OR2.get(key)
    if hit is not None:
        _touch(a)
        _touch(b)
        _touch(hit[2])
        return hit[2]
    result = kernel_disjunction((a, b))
    _OR2[key] = (a, b, result)
    return result


def kernel_row_equality(left: Sequence[Any], right: Sequence[Any]) -> Condition:
    """Canonical component-wise equality of two rows."""
    if len(left) != len(right):
        raise ValueError("rows must have the same length")
    return kernel_conjunction(kernel_eq(a, b) for a, b in zip(left, right))


# ----------------------------------------------------------------------
# Interning of externally built conditions
# ----------------------------------------------------------------------
def intern_condition(condition: Condition) -> Condition:
    """The canonical, simplified form of an arbitrary condition.

    Idempotent and cheap on already-canonical nodes (a marker attribute
    recording the current table epoch short-circuits); on foreign
    conditions — including survivors of :func:`clear_condition_kernel`,
    whose marks are from an older epoch — it rebuilds bottom-up through
    the kernel constructors, which is where simplification happens.
    """
    if condition is TRUE or condition is FALSE:
        return condition
    if getattr(condition, _MARK, None) == _EPOCH:
        _touch(condition)
        return condition
    if isinstance(condition, TrueCondition):
        return TRUE
    if isinstance(condition, FalseCondition):
        return FALSE
    if isinstance(condition, Eq):
        return kernel_eq(condition.left, condition.right)
    if isinstance(condition, Not):
        return kernel_not(intern_condition(condition.operand))
    if isinstance(condition, And):
        return kernel_conjunction(intern_condition(op) for op in condition.operands)
    if isinstance(condition, Or):
        return kernel_disjunction(intern_condition(op) for op in condition.operands)
    raise TypeError(f"unsupported condition {condition!r}")


# ----------------------------------------------------------------------
# Cached nulls
# ----------------------------------------------------------------------
def kernel_nulls(condition: Condition) -> FrozenSet[Any]:
    """The nulls mentioned by ``condition``, cached on the canonical node."""
    cached = getattr(condition, _NULLS, None)
    if cached is not None:
        return cached
    if isinstance(condition, (TrueCondition, FalseCondition)):
        result = _EMPTY_NULLS
    elif isinstance(condition, Eq):
        left_null = is_null(condition.left)
        right_null = is_null(condition.right)
        if left_null and right_null:
            result = frozenset((condition.left, condition.right))
        elif left_null:
            result = frozenset((condition.left,))
        elif right_null:
            result = frozenset((condition.right,))
        else:
            result = _EMPTY_NULLS
    elif isinstance(condition, Not):
        result = kernel_nulls(condition.operand)
    elif isinstance(condition, (And, Or)):
        parts = [kernel_nulls(op) for op in condition.operands]
        nonempty = [p for p in parts if p]
        if not nonempty:
            result = _EMPTY_NULLS
        elif len(nonempty) == 1:
            result = nonempty[0]
        else:
            result = frozenset().union(*nonempty)
    else:
        raise TypeError(f"unsupported condition {condition!r}")
    object.__setattr__(condition, _NULLS, result)
    return result


# ----------------------------------------------------------------------
# Union-find unsatisfiability check for equality conjunctions
# ----------------------------------------------------------------------
def _equalities_unsatisfiable(operands: Sequence[Condition]) -> bool:
    """``True`` when the ``Eq``/``¬Eq`` atoms among ``operands`` conflict.

    Sound but deliberately incomplete: positive equalities are merged with
    a union-find whose classes remember at most one constant; a conflict
    (two distinct constants forced equal, or a disequality inside one
    class) proves the whole conjunction unsatisfiable.  Atoms nested under
    ``Or`` are ignored — the check never reports a satisfiable condition
    as unsatisfiable.
    """
    parent: Dict[Any, Any] = {}
    constant_of: Dict[Any, Any] = {}

    def find(value: Any) -> Any:
        root = parent.setdefault(value, value)
        if root == value:
            if not is_null(value):
                constant_of.setdefault(value, value)
            return value
        # path compression
        path = []
        while parent[root] != root:
            path.append(root)
            root = parent[root]
        for node in path:
            parent[node] = root
        parent[value] = root
        return root

    equalities = [op for op in operands if type(op) is Eq]
    if not equalities:
        return False
    for eq in equalities:
        left_root = find(eq.left)
        right_root = find(eq.right)
        if left_root == right_root:
            continue
        left_const = constant_of.get(left_root)
        right_const = constant_of.get(right_root)
        if left_const is not None and right_const is not None and left_const != right_const:
            return True
        parent[left_root] = right_root
        if right_const is None and left_const is not None:
            constant_of[right_root] = left_const
    for op in operands:
        if type(op) is Not and type(op.operand) is Eq:
            atom = op.operand
            if find(atom.left) == find(atom.right):
                return True
    return False
