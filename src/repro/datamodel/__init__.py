"""Data model substrate: values, relations, schemas, databases, valuations, c-tables.

This package implements the paper's Section 2 data model:

* constants and marked (naive) nulls (:mod:`repro.datamodel.values`);
* relation and database schemas (:mod:`repro.datamodel.schema`);
* naive tables / Codd tables and complete relations
  (:mod:`repro.datamodel.relations`);
* incomplete database instances (:mod:`repro.datamodel.database`);
* valuations of nulls and their enumeration
  (:mod:`repro.datamodel.valuation`);
* conditional tables with local and global conditions
  (:mod:`repro.datamodel.conditional`).
"""

from .conditional import (
    FALSE,
    TRUE,
    And,
    Condition,
    ConditionalRow,
    ConditionalTable,
    Eq,
    FalseCondition,
    Neq,
    Not,
    Or,
    TrueCondition,
    conjunction,
    disjunction,
    row_equality,
)
from .condition_kernel import (
    DEFAULT_KERNEL,
    ConditionKernel,
    clear_condition_kernel,
    evict_condition_kernel,
    intern_condition,
    kernel_and,
    kernel_conjunction,
    kernel_disjunction,
    kernel_eq,
    kernel_not,
    kernel_nulls,
    kernel_or,
    kernel_row_equality,
    kernel_stats,
)
from .database import Database, Fact, facts_with_nulls
from .relations import Relation, Row, drop_null_rows, rows_with_nulls
from .schema import DatabaseSchema, RelationSchema
from .valuation import (
    Valuation,
    count_valuations,
    enumerate_valuations,
    fresh_valuation,
)
from .values import (
    ConstantPool,
    Null,
    constants_in,
    intern_null,
    intern_value,
    is_constant,
    is_null,
    nulls_in,
)

__all__ = [
    "And",
    "Condition",
    "ConditionKernel",
    "DEFAULT_KERNEL",
    "ConditionalRow",
    "ConditionalTable",
    "ConstantPool",
    "Database",
    "DatabaseSchema",
    "Eq",
    "FALSE",
    "Fact",
    "FalseCondition",
    "Neq",
    "Not",
    "Null",
    "Or",
    "Relation",
    "RelationSchema",
    "Row",
    "TRUE",
    "TrueCondition",
    "Valuation",
    "clear_condition_kernel",
    "evict_condition_kernel",
    "conjunction",
    "constants_in",
    "count_valuations",
    "disjunction",
    "drop_null_rows",
    "enumerate_valuations",
    "facts_with_nulls",
    "fresh_valuation",
    "intern_condition",
    "intern_null",
    "intern_value",
    "is_constant",
    "is_null",
    "kernel_and",
    "kernel_conjunction",
    "kernel_disjunction",
    "kernel_eq",
    "kernel_not",
    "kernel_nulls",
    "kernel_or",
    "kernel_row_equality",
    "kernel_stats",
    "nulls_in",
    "row_equality",
    "rows_with_nulls",
]
