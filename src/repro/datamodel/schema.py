"""Relational schemas.

A relational schema (paper, Section 2) is a set of relation names with
associated arities.  This module additionally supports named attributes,
which the relational-algebra layer uses for selections, projections and
the division operator, and which the SQL layer uses to resolve column
references.  Attribute names are optional: a schema declared only with an
arity gets positional attribute names ``#0, #1, ...``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union


def _positional_names(arity: int) -> Tuple[str, ...]:
    return tuple(f"#{i}" for i in range(arity))


@dataclass(frozen=True)
class RelationSchema:
    """The schema of a single relation: a name plus an ordered attribute list.

    Examples
    --------
    >>> RelationSchema("Order", ("o_id", "product")).arity
    2
    >>> RelationSchema.with_arity("R", 3).attributes
    ('#0', '#1', '#2')
    """

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation name must be non-empty")
        attrs = tuple(self.attributes)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attribute names in {self.name}: {attrs}")
        object.__setattr__(self, "attributes", attrs)

    @classmethod
    def with_arity(cls, name: str, arity: int) -> "RelationSchema":
        """Build a schema with positional attribute names ``#0 .. #arity-1``."""
        if arity < 0:
            raise ValueError("arity must be non-negative")
        return cls(name, _positional_names(arity))

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def index_of(self, attribute: Union[str, int]) -> int:
        """Resolve an attribute name or position to a position."""
        if isinstance(attribute, int):
            if not 0 <= attribute < self.arity:
                raise KeyError(
                    f"position {attribute} out of range for {self.name}/{self.arity}"
                )
            return attribute
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(f"unknown attribute {attribute!r} of relation {self.name}") from None

    def rename(self, new_name: str) -> "RelationSchema":
        """Return a copy of the schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def project(self, attributes: Sequence[Union[str, int]], name: Optional[str] = None) -> "RelationSchema":
        """Schema of the projection onto ``attributes`` (in the given order)."""
        positions = [self.index_of(a) for a in attributes]
        attrs = tuple(self.attributes[p] for p in positions)
        return RelationSchema(name or self.name, attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """A collection of relation schemas indexed by relation name.

    Examples
    --------
    >>> schema = DatabaseSchema([
    ...     RelationSchema("Order", ("o_id", "product")),
    ...     RelationSchema("Pay", ("p_id", "order", "amount")),
    ... ])
    >>> schema["Order"].arity
    2
    >>> sorted(schema.names())
    ['Order', 'Pay']
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for rel in relations:
            self.add(rel)

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "DatabaseSchema":
        """Build a schema from a ``{relation name: arity}`` mapping."""
        return cls(RelationSchema.with_arity(name, arity) for name, arity in arities.items())

    @classmethod
    def from_attributes(cls, attributes: Mapping[str, Sequence[str]]) -> "DatabaseSchema":
        """Build a schema from a ``{relation name: attribute list}`` mapping."""
        return cls(RelationSchema(name, tuple(attrs)) for name, attrs in attributes.items())

    def add(self, relation: RelationSchema) -> None:
        """Add a relation schema; re-adding an identical schema is a no-op."""
        existing = self._relations.get(relation.name)
        if existing is not None and existing != relation:
            raise ValueError(
                f"relation {relation.name!r} already declared with a different schema"
            )
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseSchema):
            return self._relations == other._relations
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def names(self) -> List[str]:
        """Relation names in insertion order."""
        return list(self._relations)

    def arity(self, name: str) -> int:
        """Arity of relation ``name``."""
        return self[name].arity

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """The sub-schema consisting of the given relation names."""
        return DatabaseSchema(self[name] for name in names)

    def merge(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas; identical duplicate declarations are allowed."""
        merged = DatabaseSchema(self)
        for rel in other:
            merged.add(rel)
        return merged

    def __repr__(self) -> str:
        rels = ", ".join(str(rel) for rel in self)
        return f"DatabaseSchema({rels})"
