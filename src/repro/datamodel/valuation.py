"""Valuations of nulls.

A *valuation* (paper, Section 2) is a mapping ``v : Null(D) → Const``
assigning a constant to every null.  It extends to tuples, relations and
databases by replacing every null with its image.  Valuations are the
building block of both the open-world and the closed-world semantics:

* ``[[D]]_cwa = { v(D)      | v a valuation }``
* ``[[D]]_owa = { D' ⊇ v(D) | v a valuation }``

This module also provides *partial* application (useful for the chase and
for conditional-table conditions) and enumeration of all valuations over a
finite constant domain, which the possible-world machinery in
:mod:`repro.semantics.worlds` relies on.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from .database import Database
from .relations import Relation
from .values import Null, is_null


class Valuation:
    """An assignment of constants to (some) nulls.

    A valuation is *total* for a database when it covers every null of the
    database; applying a non-total valuation replaces only the covered
    nulls (which is what the chase and c-table machinery need).

    Examples
    --------
    >>> from repro.datamodel import Null
    >>> v = Valuation({Null("x"): 1, Null("y"): 2})
    >>> v(Null("x"))
    1
    >>> v.apply_row((Null("x"), 7, Null("y")))
    (1, 7, 2)
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Null, Any]] = None) -> None:
        self._mapping: Dict[Null, Any] = {}
        for null, value in (mapping or {}).items():
            if not isinstance(null, Null):
                raise TypeError(f"valuations map nulls to constants, got key {null!r}")
            if is_null(value) or value is None:
                raise TypeError(
                    f"valuations must assign constants, got {value!r} for {null}"
                )
            self._mapping[null] = value

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __call__(self, value: Any) -> Any:
        """Image of a single value: nulls are mapped, constants untouched."""
        if isinstance(value, Null):
            return self._mapping.get(value, value)
        return value

    def __getitem__(self, null: Null) -> Any:
        return self._mapping[null]

    def get(self, null: Null, default: Any = None) -> Any:
        """The image of ``null`` or ``default`` when it is not covered."""
        return self._mapping.get(null, default)

    def __contains__(self, null: object) -> bool:
        return null in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Null]:
        return iter(self._mapping)

    def items(self) -> Iterable[Tuple[Null, Any]]:
        """Iterate over ``(null, constant)`` pairs."""
        return self._mapping.items()

    def domain(self) -> Set[Null]:
        """The set of nulls covered by the valuation."""
        return set(self._mapping)

    def image(self) -> Set[Any]:
        """The set of constants used by the valuation."""
        return set(self._mapping.values())

    def as_dict(self) -> Dict[Null, Any]:
        """A copy of the underlying mapping."""
        return dict(self._mapping)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Valuation):
            return self._mapping == other._mapping
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}→{v!r}" for k, v in sorted(self._mapping.items(), key=lambda kv: kv[0].name))
        return f"Valuation({{{inner}}})"

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Apply the valuation to a tuple."""
        return tuple(self(v) for v in row)

    def apply_relation(self, relation: Relation) -> Relation:
        """Apply the valuation to every tuple of a relation."""
        return relation.map_values(self)

    def apply(self, database: Database) -> Database:
        """Apply the valuation to every relation of a database: ``v(D)``."""
        return database.map_values(self)

    def is_total_for(self, database: Database) -> bool:
        """``True`` iff every null of ``database`` is covered."""
        return database.nulls() <= self.domain()

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def extend(self, mapping: Mapping[Null, Any]) -> "Valuation":
        """A valuation additionally covering ``mapping``.

        Conflicting reassignments of an already-covered null are rejected;
        this keeps composition of chase steps sound.
        """
        merged = dict(self._mapping)
        for null, value in mapping.items():
            if null in merged and merged[null] != value:
                raise ValueError(
                    f"conflicting assignment for {null}: {merged[null]!r} vs {value!r}"
                )
            merged[null] = value
        return Valuation(merged)

    def restrict(self, nulls: Iterable[Null]) -> "Valuation":
        """The valuation restricted to the given nulls."""
        wanted = set(nulls)
        return Valuation({n: c for n, c in self._mapping.items() if n in wanted})

    @classmethod
    def identity(cls) -> "Valuation":
        """The empty valuation (leaves every value unchanged)."""
        return cls({})


def fresh_valuation(database: Database, avoid: Iterable[Any] = (), prefix: str = "f") -> Valuation:
    """A valuation sending every null of ``database`` to a distinct fresh constant.

    This realises the paper's observation that for every finite ``C ⊂ Const``
    there is a valuation ``v`` with ``v(D) ≈_C D``: replace nulls with
    distinct constants outside ``C`` (here, outside ``avoid`` and the
    constants already present in ``database``).
    """
    from .values import ConstantPool

    pool = ConstantPool(forbidden=set(avoid) | database.constants(), prefix=prefix)
    nulls = sorted(database.nulls(), key=lambda n: n.name)
    return Valuation({null: pool.fresh() for null in nulls})


def enumerate_valuations(nulls: Iterable[Null], domain: Iterable[Any]) -> Iterator[Valuation]:
    """Enumerate every valuation of ``nulls`` into the finite ``domain``.

    The number of valuations is ``|domain| ** |nulls|``; callers are
    responsible for keeping both small.  The enumeration order is
    deterministic (nulls sorted by name, domain in the given order).
    """
    nulls = sorted(set(nulls), key=lambda n: n.name)
    domain = list(domain)
    if not nulls:
        yield Valuation({})
        return
    if not domain:
        return
    for combo in itertools.product(domain, repeat=len(nulls)):
        yield Valuation(dict(zip(nulls, combo)))


def count_valuations(nulls: Iterable[Null], domain: Iterable[Any]) -> int:
    """The number of valuations :func:`enumerate_valuations` would yield."""
    num_nulls = len(set(nulls))
    domain_size = len(list(domain))
    if num_nulls == 0:
        return 1
    return domain_size ** num_nulls
