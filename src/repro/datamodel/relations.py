"""Relations over constants and nulls: naive tables and Codd tables.

Following the paper (Section 2), an incomplete relation assigns to a
``k``-ary relation symbol a finite subset of ``(Const ∪ Null)^k``.  Such
relations are *naive tables*; if every null occurs at most once in the
whole table we speak of a *Codd table* (the model of SQL's nulls).  A
*complete* relation mentions no nulls at all.

Relations use set semantics (no duplicate tuples), matching the paper's
formal model.  The SQL layer (:mod:`repro.sqlnulls`) layers bag semantics
on top where it matters for faithfulness to SQL.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .schema import RelationSchema
from .values import Null, check_value, intern_value, is_null

Row = Tuple[Any, ...]


def _freeze_row(row: Sequence[Any], arity: int, relation_name: str) -> Row:
    values = tuple(intern_value(check_value(v)) for v in row)
    if len(values) != arity:
        raise ValueError(
            f"tuple {values!r} has arity {len(values)}, "
            f"but relation {relation_name} has arity {arity}"
        )
    return values


class Relation:
    """An incomplete relation (naive table) with set semantics.

    Parameters
    ----------
    schema:
        Either a :class:`~repro.datamodel.schema.RelationSchema` or a plain
        relation name, in which case the arity is inferred from the first
        tuple (and must be supplied via ``arity`` for empty relations).
    rows:
        The tuples of the relation.  Each value must be a constant or a
        :class:`~repro.datamodel.values.Null`.

    Examples
    --------
    >>> from repro.datamodel import Null
    >>> r = Relation.create("R", [(1, 2), (2, Null("x"))])
    >>> len(r)
    2
    >>> r.is_complete()
    False
    >>> sorted(n.name for n in r.nulls())
    ['x']
    """

    __slots__ = ("_schema", "_rows", "_hash", "_indexes")

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()) -> None:
        if not isinstance(schema, RelationSchema):
            raise TypeError("schema must be a RelationSchema; use Relation.create for shortcuts")
        self._schema = schema
        self._rows: FrozenSet[Row] = frozenset(
            _freeze_row(row, schema.arity, schema.name) for row in rows
        )
        self._hash: Optional[int] = None
        self._indexes: Optional[Dict[Tuple[int, ...], Dict[Row, List[Row]]]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        rows: Iterable[Sequence[Any]],
        attributes: Optional[Sequence[str]] = None,
        arity: Optional[int] = None,
    ) -> "Relation":
        """Convenience constructor inferring the schema from the data.

        ``attributes`` takes precedence over ``arity``; if neither is given
        the arity is taken from the first row (the row list must then be
        non-empty).
        """
        rows = [tuple(row) for row in rows]
        if attributes is not None:
            schema = RelationSchema(name, tuple(attributes))
        else:
            if arity is None:
                if not rows:
                    raise ValueError(
                        "cannot infer the arity of an empty relation; "
                        "pass attributes=... or arity=..."
                    )
                arity = len(rows[0])
            schema = RelationSchema.with_arity(name, arity)
        return cls(schema, rows)

    @classmethod
    def empty(cls, schema: RelationSchema) -> "Relation":
        """The empty relation over ``schema``."""
        return cls(schema, ())

    @classmethod
    def _from_trusted(cls, schema: RelationSchema, rows: Iterable[Row]) -> "Relation":
        """Internal fast constructor for rows that are already validated.

        The evaluation engine produces rows by recombining values that came
        out of existing relations, so re-running ``check_value``/interning on
        every value would only burn time.  ``rows`` must contain tuples of
        the right arity with storable (hashable, non-``None``) values.
        """
        relation = cls.__new__(cls)
        relation._schema = schema
        relation._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        relation._hash = None
        relation._indexes = None
        return relation

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self._schema.arity

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names."""
        return self._schema.attributes

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of tuples."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._schema == other._schema and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._schema, self._rows))
        return self._hash

    def __repr__(self) -> str:
        preview = ", ".join(repr(row) for row in self.sorted_rows()[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"Relation({self.name}/{self.arity}, {{{preview}{suffix}}})"

    def sorted_rows(self) -> List[Row]:
        """The tuples sorted by their string rendering (deterministic output)."""
        return sorted(self._rows, key=lambda row: tuple(str(v) for v in row))

    # ------------------------------------------------------------------
    # nulls and constants
    # ------------------------------------------------------------------
    def nulls(self) -> Set[Null]:
        """The set ``Null(R)`` of marked nulls occurring in the relation."""
        return {v for row in self._rows for v in row if is_null(v)}

    def constants(self) -> Set[Any]:
        """The set ``Const(R)`` of constants occurring in the relation."""
        return {v for row in self._rows for v in row if not is_null(v)}

    def active_domain(self) -> Set[Any]:
        """``adom(R) = Const(R) ∪ Null(R)``."""
        return {v for row in self._rows for v in row}

    def is_complete(self) -> bool:
        """``True`` iff the relation mentions no nulls."""
        return not any(is_null(v) for row in self._rows for v in row)

    def is_codd(self) -> bool:
        """``True`` iff every null occurs at most once (a Codd table)."""
        seen: Set[Null] = set()
        for row in self._rows:
            for value in row:
                if is_null(value):
                    if value in seen:
                        return False
                    seen.add(value)
        return True

    def null_occurrences(self) -> Dict[Null, int]:
        """Number of occurrences of each null (a Codd table has all counts 1)."""
        counts: Dict[Null, int] = {}
        for row in self._rows:
            for value in row:
                if is_null(value):
                    counts[value] = counts.get(value, 0) + 1
        return counts

    def complete_part(self) -> "Relation":
        """The tuples without nulls (``R_cmpl`` in the paper)."""
        return Relation(self._schema, (row for row in self._rows if not any(is_null(v) for v in row)))

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def index_on(self, positions: Sequence[int]) -> Dict[Row, List[Row]]:
        """A hash index of the rows keyed by the values at ``positions``.

        The index maps each key tuple to the list of rows carrying it and is
        cached on the relation (relations are immutable), so repeated joins
        and homomorphism searches against the same relation reuse it.
        """
        key_positions = tuple(positions)
        if self._indexes is None:
            self._indexes = {}
        index = self._indexes.get(key_positions)
        if index is None:
            index = {}
            for row in self._rows:
                key = tuple(row[p] for p in key_positions)
                index.setdefault(key, []).append(row)
            self._indexes[key_positions] = index
        return index

    # ------------------------------------------------------------------
    # bulk transformations
    # ------------------------------------------------------------------
    def map_values(self, function: Callable[[Any], Any]) -> "Relation":
        """Apply ``function`` to every value; used by valuations and homomorphisms."""
        return Relation(self._schema, (tuple(function(v) for v in row) for row in self._rows))

    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A relation with the same schema but the given tuples."""
        return Relation(self._schema, rows)

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A relation extended with the given tuples (set union)."""
        new_rows = list(self._rows)
        new_rows.extend(tuple(row) for row in rows)
        return Relation(self._schema, new_rows)

    def union(self, other: "Relation") -> "Relation":
        """Set union; the schemas must have equal arity."""
        self._check_compatible(other)
        return Relation(self._schema, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (tuple-level, exact equality of values)."""
        self._check_compatible(other)
        return Relation(self._schema, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection (tuple-level, exact equality of values)."""
        self._check_compatible(other)
        return Relation(self._schema, self._rows & other._rows)

    def rename(self, new_name: str, attributes: Optional[Sequence[str]] = None) -> "Relation":
        """Rename the relation (and optionally its attributes)."""
        if attributes is None:
            schema = self._schema.rename(new_name)
        else:
            schema = RelationSchema(new_name, tuple(attributes))
            if schema.arity != self.arity:
                raise ValueError("renamed attribute list must preserve the arity")
        return Relation(schema, self._rows)

    def _check_compatible(self, other: "Relation") -> None:
        if self.arity != other.arity:
            raise ValueError(
                f"relations {self.name}/{self.arity} and {other.name}/{other.arity} "
                "are not union-compatible"
            )

    # ------------------------------------------------------------------
    # pretty printing
    # ------------------------------------------------------------------
    def to_table(self) -> str:
        """Render the relation as an ASCII table (used by the examples)."""
        headers = list(self.attributes)
        rendered = [[str(v) for v in row] for row in self.sorted_rows()]
        widths = [len(h) for h in headers]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [f"{self.name}:", sep]
        lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
        lines.append(sep)
        for row in rendered:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
        lines.append(sep)
        return "\n".join(lines)


def rows_with_nulls(relation: Relation) -> Iterator[Row]:
    """Yield the tuples of ``relation`` that mention at least one null."""
    for row in relation:
        if any(is_null(v) for v in row):
            yield row


def drop_null_rows(rows: Iterable[Row]) -> List[Row]:
    """Keep only tuples without nulls (the ``·_cmpl`` operation on row sets)."""
    return [row for row in rows if not any(is_null(v) for v in row)]
