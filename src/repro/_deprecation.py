"""One warning helper for every legacy entry point kept as a shim.

The session API (:mod:`repro.session`) replaced the four historical ways
of asking a query — ``RAExpression.evaluate(engine=)``,
``certain_answers(...)``, ``certain_answers_enumeration(...)``,
``run_sql(..., backend=)`` — and the process-wide engine globals.  The old
callables keep working as thin shims over the process-default session,
but each call emits exactly one :class:`DeprecationWarning` through this
helper (the shims delegate to non-warning internals, so nested shims can
never warn twice for one user call).  ``docs/api.md`` holds the full
old-call → new-call map.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit the standard deprecation warning for a legacy entry point.

    ``stacklevel=3`` points the warning at the *caller* of the deprecated
    shim (helper frame + shim frame), which is where the fix belongs.
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead (see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )
