"""Query answering using views: the data-integration face of marked nulls.

Section 7 of the paper ("Applications") names data integration — and in
particular answering queries using materialized views (references [1, 39])
— as an area whose query-answering semantics is certain answers, and whose
practice often applies naive evaluation "in cases where it is known not to
work".  This package implements the local-as-view (LAV) scenario on top of
the library's substrates:

* :mod:`repro.views.definitions` — conjunctive-query view definitions over
  a base schema and their materialization on complete base databases;
* :mod:`repro.views.answering` — the inverse-rules canonical instance (a
  naive database over the base schema, built by reusing the data-exchange
  chase with the view definitions read backwards), and certain answers for
  queries over the base schema given only the view extensions.

The marked nulls produced by the canonical instance are exactly the
paper's motivation for naive nulls: the unknown base values exist, may be
shared across facts, and naive evaluation of positive queries over them
yields certain answers.
"""

from .answering import (
    canonical_instance,
    certain_answers_views,
    inverse_mapping,
    possible_base_facts,
)
from .definitions import ViewCollection, ViewDefinition

__all__ = [
    "ViewCollection",
    "ViewDefinition",
    "canonical_instance",
    "certain_answers_views",
    "inverse_mapping",
    "possible_base_facts",
]
