"""Conjunctive-query view definitions over a base schema.

A *view definition* is a conjunctive query ``V(x̄) :- R₁(...), …, R_k(...)``
over the base (global) schema.  In the local-as-view (LAV) approach to data
integration the sources expose extensions of such views, and the mediator
must answer queries phrased over the base schema knowing only those
extensions — the setting of the paper's references [1, 39].

Views are assumed *sound* (every tuple in a view extension is an answer of
the view over the hidden base database), which is the open-world reading
the integration literature uses and matches the paper's OWA semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

from ..datamodel import Database, Relation
from ..datamodel.schema import DatabaseSchema, RelationSchema
from ..exchange.mappings import MappingAtom
from ..logic.formulas import Variable, is_variable


@dataclass(frozen=True)
class ViewDefinition:
    """A view ``name(head) :- body`` defined by a conjunctive query.

    Parameters
    ----------
    name:
        The view's relation name (must not clash with base relations).
    head:
        The distinguished variables, in output order.  Every head variable
        must occur in the body.
    body:
        The body atoms, over the base schema.  Body variables not in the
        head are existential.

    Examples
    --------
    >>> from repro.logic import var
    >>> from repro.exchange import MappingAtom
    >>> x, y = var("x"), var("y")
    >>> v = ViewDefinition("V", (x,), [MappingAtom("R", (x, y))])
    >>> v.arity
    1
    >>> sorted(v.existential_variables(), key=str)
    [y]
    """

    name: str
    head: Tuple[Variable, ...]
    body: Tuple[MappingAtom, ...]

    def __init__(
        self,
        name: str,
        head: Sequence[Variable],
        body: Sequence[MappingAtom],
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "body", tuple(body))
        if not self.name:
            raise ValueError("a view needs a name")
        if not self.body:
            raise ValueError("a view definition needs at least one body atom")
        for variable in self.head:
            if not is_variable(variable):
                raise TypeError(f"head terms must be variables, got {variable!r}")
        body_variables = self.body_variables()
        for variable in self.head:
            if variable not in body_variables:
                raise ValueError(f"head variable {variable} does not occur in the body")

    @property
    def arity(self) -> int:
        """The arity of the view relation."""
        return len(self.head)

    def body_variables(self) -> Set[Variable]:
        """All variables occurring in the body."""
        result: Set[Variable] = set()
        for atom in self.body:
            result |= atom.variables()
        return result

    def existential_variables(self) -> Set[Variable]:
        """Body variables not exported by the head."""
        return self.body_variables() - set(self.head)

    def relation_schema(self) -> RelationSchema:
        """The schema of the view relation (positional attribute names)."""
        return RelationSchema.with_arity(self.name, self.arity)

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.head)
        body = " ∧ ".join(str(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"

    # ------------------------------------------------------------------
    # materialization on a (complete) base database
    # ------------------------------------------------------------------
    def evaluate(self, base: Database) -> Relation:
        """The view extension ``V(base)``: all head images over body matches.

        Matching is naive (nulls equal only to themselves), so on complete
        databases this is ordinary conjunctive-query evaluation.
        """
        rows: Set[Tuple[Any, ...]] = set()
        for assignment in _match(self.body, base):
            rows.add(tuple(assignment[v] for v in self.head))
        return Relation(self.relation_schema(), rows)


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _match(atoms: Sequence[MappingAtom], database: Database) -> Iterator[Dict[Variable, Any]]:
    """Enumerate assignments of the atoms' variables matching ``database``."""
    atoms = list(atoms)

    def backtrack(index: int, assignment: Dict[Variable, Any]) -> Iterator[Dict[Variable, Any]]:
        if index == len(atoms):
            yield dict(assignment)
            return
        atom = atoms[index]
        relation = database.relation(atom.relation)
        for row in relation:
            extension: Dict[Variable, Any] = {}
            consistent = True
            for term, value in zip(atom.terms, row):
                if is_variable(term):
                    bound = assignment.get(term, extension.get(term, _UNBOUND))
                    if bound is _UNBOUND:
                        extension[term] = value
                    elif bound != value:
                        consistent = False
                        break
                elif term != value:
                    consistent = False
                    break
            if not consistent:
                continue
            assignment.update(extension)
            yield from backtrack(index + 1, assignment)
            for key in extension:
                del assignment[key]

    yield from backtrack(0, {})


class ViewCollection:
    """A set of view definitions over a common base schema.

    Examples
    --------
    >>> from repro.logic import var
    >>> from repro.exchange import MappingAtom
    >>> from repro.datamodel import DatabaseSchema
    >>> base = DatabaseSchema.from_arities({"R": 2})
    >>> x, y = var("x"), var("y")
    >>> views = ViewCollection(base, [ViewDefinition("V", (x,), [MappingAtom("R", (x, y))])])
    >>> views.view_schema().names()
    ['V']
    """

    def __init__(self, base_schema: DatabaseSchema, views: Iterable[ViewDefinition]) -> None:
        self.base_schema = base_schema
        self.views: List[ViewDefinition] = list(views)
        if not self.views:
            raise ValueError("a view collection needs at least one view")
        names = [view.name for view in self.views]
        if len(set(names)) != len(names):
            raise ValueError("view names must be distinct")
        self._validate()

    def _validate(self) -> None:
        for view in self.views:
            if view.name in self.base_schema:
                raise ValueError(f"view {view.name!r} clashes with a base relation")
            for atom in view.body:
                if atom.relation not in self.base_schema:
                    raise ValueError(
                        f"view {view.name!r} uses unknown base relation {atom.relation!r}"
                    )
                if atom.arity != self.base_schema.arity(atom.relation):
                    raise ValueError(
                        f"atom {atom} of view {view.name!r} has the wrong arity"
                    )

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(self.views)

    def __len__(self) -> int:
        return len(self.views)

    def __str__(self) -> str:
        return "\n".join(str(view) for view in self.views)

    def view(self, name: str) -> ViewDefinition:
        """The definition of the view called ``name``."""
        for view in self.views:
            if view.name == name:
                return view
        raise KeyError(f"unknown view {name!r}")

    def view_schema(self) -> DatabaseSchema:
        """The schema exposing one relation per view."""
        return DatabaseSchema(view.relation_schema() for view in self.views)

    def materialize(self, base: Database) -> Database:
        """Evaluate every view on ``base`` and return the view-schema instance."""
        return Database(
            self.view_schema(),
            {view.name: view.evaluate(base) for view in self.views},
        )
