"""Incomplete data trees (the XML direction of the paper's Section 7).

The paper notes that incompleteness work for XML mostly reduced queries to
relations, that structural incompleteness "leads to intractability very
quickly", and that extending the certain-answer framework to trees needs
query classes preserved under the right homomorphisms.  This package
implements the tractable core of that programme:

* :mod:`repro.trees.model` — unordered, labelled data trees whose *data
  values* may be marked nulls (the structure itself is complete, the case
  for which the paper's machinery transfers directly);
* :mod:`repro.trees.patterns` — tree patterns with child/descendant edges,
  label tests and data-value variables, naive evaluation, and certain
  answers both by the naive-evaluation shortcut (patterns are monotone and
  generic in the data values) and by brute-force valuation enumeration.
"""

from .model import DataTree, tree_from_nested
from .patterns import (
    PatternNode,
    TreePattern,
    certain_answers_tree_pattern,
    naive_certain_answers_tree_pattern,
)

__all__ = [
    "DataTree",
    "PatternNode",
    "TreePattern",
    "certain_answers_tree_pattern",
    "naive_certain_answers_tree_pattern",
    "tree_from_nested",
]
