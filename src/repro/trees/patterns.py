"""Tree patterns over incomplete data trees, and their certain answers.

A *tree pattern* is a tree-shaped query: each pattern node tests a label
(or is a wildcard), optionally constrains the data value (to a constant or
to a variable — repeating the variable forces equal data values), and is
connected to its pattern children by ``child`` or ``descendant`` edges.
This is the pattern language of the paper's XML references [4, 13, 28],
restricted to complete structure.

A match is a mapping from pattern nodes to tree nodes respecting labels,
edges and data-value constraints; the answer of a pattern is the set of
images of its output variables.  Because data values only ever need to be
*equal* (never unequal), patterns are monotone and generic in the data
values, so the paper's naive-evaluation theorems apply: evaluating the
pattern over the incomplete tree as if nulls were ordinary values and
keeping the null-free answers yields exactly the certain answers
(:func:`naive_certain_answers_tree_pattern`).  The brute-force valuation
enumeration (:func:`certain_answers_tree_pattern`) is kept as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import Relation, enumerate_valuations
from ..datamodel.values import ConstantPool, is_null
from ..logic.formulas import Variable, is_variable
from .model import DataTree

#: Edge types connecting a pattern node to its parent.
CHILD = "child"
DESCENDANT = "descendant"
EDGE_TYPES = (CHILD, DESCENDANT)

#: Wildcard label (matches any node label).
ANY_LABEL = None


@dataclass(frozen=True)
class PatternNode:
    """One node of a tree pattern.

    Parameters
    ----------
    label:
        The label the matched tree node must carry, or ``None`` (wildcard).
    value:
        A constraint on the data value: ``None`` (no constraint), a constant
        (the value must equal it naively), or a :class:`Variable` (binds the
        value; repeated variables force equality).
    children:
        Pairs ``(edge, node)`` where ``edge`` is ``"child"`` or
        ``"descendant"``.
    """

    label: Optional[str] = ANY_LABEL
    value: Any = None
    children: Tuple[Tuple[str, "PatternNode"], ...] = ()

    def __init__(
        self,
        label: Optional[str] = ANY_LABEL,
        value: Any = None,
        children: Sequence[Tuple[str, "PatternNode"]] = (),
    ) -> None:
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "children", tuple(children))
        for edge, child in self.children:
            if edge not in EDGE_TYPES:
                raise ValueError(f"pattern edges must be one of {EDGE_TYPES}, got {edge!r}")
            if not isinstance(child, PatternNode):
                raise TypeError("pattern children must be PatternNode instances")

    def variables(self) -> Set[Variable]:
        """All variables occurring at or below this pattern node."""
        result: Set[Variable] = set()
        if is_variable(self.value):
            result.add(self.value)
        for _edge, child in self.children:
            result |= child.variables()
        return result

    def __str__(self) -> str:
        label = self.label if self.label is not None else "*"
        rendered = label
        if self.value is not None:
            rendered += f"[{self.value}]"
        if self.children:
            parts = []
            for edge, child in self.children:
                arrow = "/" if edge == CHILD else "//"
                parts.append(f"{arrow}{child}")
            rendered += "(" + ", ".join(parts) + ")"
        return rendered


class TreePattern:
    """A tree pattern with output variables.

    Examples
    --------
    >>> from repro.logic import var
    >>> x = var("x")
    >>> pattern = TreePattern(
    ...     PatternNode("order", children=[("child", PatternNode("id", value=x))]),
    ...     output=(x,),
    ... )
    >>> tree = DataTree("order", children=[DataTree("id", value="oid1")])
    >>> sorted(pattern.evaluate(tree).rows)
    [('oid1',)]
    """

    def __init__(
        self,
        root: PatternNode,
        output: Sequence[Variable] = (),
        name: str = "TreeAnswer",
        anchored: bool = False,
    ) -> None:
        self.root = root
        self.output: Tuple[Variable, ...] = tuple(output)
        self.name = name
        #: When ``True`` the pattern root must match the tree root; otherwise
        #: the pattern may match anywhere in the tree (descendant-or-self).
        self.anchored = anchored
        declared = root.variables()
        for variable in self.output:
            if variable not in declared:
                raise ValueError(f"output variable {variable} does not occur in the pattern")

    def variables(self) -> Set[Variable]:
        """All variables of the pattern."""
        return self.root.variables()

    def is_boolean(self) -> bool:
        """``True`` iff the pattern has no output variables."""
        return not self.output

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.output)
        return f"({head}) ← {self.root}" if self.output else str(self.root)

    def __repr__(self) -> str:
        return f"TreePattern({self.name!r}, output={len(self.output)}, anchored={self.anchored})"

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def matches(self, tree: DataTree) -> Iterator[Dict[Variable, Any]]:
        """Enumerate the variable assignments of all matches of the pattern in ``tree``.

        Matching is naive: a null data value is equal only to itself, so a
        constant constraint never matches a null, while a variable happily
        binds to one.
        """
        starts = [tree] if self.anchored else list(tree.nodes())
        seen: Set[Tuple[Tuple[Variable, Any], ...]] = set()
        for start in starts:
            for assignment in _match_node(self.root, start, {}):
                key = tuple(sorted(assignment.items(), key=lambda kv: kv[0].name))
                if key not in seen:
                    seen.add(key)
                    yield assignment

    def evaluate(self, tree: DataTree) -> Relation:
        """Naive evaluation: images of the output tuple over all matches."""
        attributes = tuple(v.name for v in self.output) if self.output else ("match",)
        rows: Set[Tuple[Any, ...]] = set()
        for assignment in self.matches(tree):
            if self.output:
                rows.add(tuple(assignment[v] for v in self.output))
            else:
                rows.add(("true",))
        return Relation.create(self.name, sorted(rows, key=lambda r: tuple(str(v) for v in r)),
                               attributes=attributes) if rows else Relation.create(
            self.name, [], attributes=attributes)

    def evaluate_boolean(self, tree: DataTree) -> bool:
        """``True`` iff the pattern matches somewhere in ``tree``."""
        for _assignment in self.matches(tree):
            return True
        return False


def _match_node(
    pattern: PatternNode,
    node: DataTree,
    assignment: Dict[Variable, Any],
) -> Iterator[Dict[Variable, Any]]:
    """Match ``pattern`` at exactly ``node``, extending ``assignment``."""
    if pattern.label is not ANY_LABEL and pattern.label != node.label:
        return
    local = dict(assignment)
    constraint = pattern.value
    if constraint is not None:
        if node.value is None:
            return
        if is_variable(constraint):
            bound = local.get(constraint, _UNBOUND)
            if bound is _UNBOUND:
                local[constraint] = node.value
            elif bound != node.value:
                return
        elif constraint != node.value:
            return
    yield from _match_children(list(pattern.children), node, local)


def _match_children(
    edges: List[Tuple[str, PatternNode]],
    node: DataTree,
    assignment: Dict[Variable, Any],
) -> Iterator[Dict[Variable, Any]]:
    if not edges:
        yield dict(assignment)
        return
    edge, child_pattern = edges[0]
    rest = edges[1:]
    candidates = list(node.children) if edge == CHILD else list(node.descendants())
    for candidate in candidates:
        for extended in _match_node(child_pattern, candidate, assignment):
            yield from _match_children(rest, node, extended)


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


# ----------------------------------------------------------------------
# Certain answers
# ----------------------------------------------------------------------
def naive_certain_answers_tree_pattern(pattern: TreePattern, tree: DataTree) -> Relation:
    """Certain answers of a tree pattern by naive evaluation plus null filtering.

    Tree patterns only compare data values for equality, so they are
    monotone and generic in the data values and the paper's
    naive-evaluation theorems carry over: the null-free naive answers are
    exactly the certain answers.
    """
    answer = pattern.evaluate(tree)
    rows = [row for row in answer.rows if not any(is_null(v) for v in row)]
    return Relation(answer.schema, rows)


def certain_answers_tree_pattern(
    pattern: TreePattern,
    tree: DataTree,
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Relation:
    """Intersection-based certain answers by explicit valuation enumeration.

    The possible worlds of an incomplete data tree are the valuation images
    ``v(t)``; the certain answers are the tuples present in the pattern's
    answer on every such world.  Exponential in the number of nulls — the
    ground truth the naive shortcut is validated against.
    """
    nulls = tree.nulls()
    if domain is None:
        constants = sorted(tree.constants(), key=str)
        if extra_constants is None:
            extra_constants = len(nulls) + 1
        pool = ConstantPool(forbidden=constants, prefix="t")
        domain = constants + pool.take(extra_constants)
    schema = pattern.evaluate(tree).schema
    certain: Optional[Set[Tuple[Any, ...]]] = None
    for valuation in enumerate_valuations(nulls, domain):
        world = pattern.evaluate(tree.apply_valuation(valuation))
        rows = set(world.rows)
        certain = rows if certain is None else certain & rows
        if not certain:
            break
    if certain is None:
        certain = set(pattern.evaluate(tree).rows)
    return Relation(schema, certain)
