"""Unordered, labelled data trees with possibly unknown data values.

A :class:`DataTree` node carries

* a *label* (an element/tag name — always a known constant; the paper
  points out that unknown structure makes reasoning intractable very
  quickly, so structural incompleteness is out of scope here), and
* an optional *data value*, which is a constant or a marked null drawn from
  the same value model as the relational part of the library (a shared null
  denotes the same unknown value wherever it occurs).

The semantics of incompleteness is the closed-world one inherited from
valuations: ``[[t]] = { v(t) | v a valuation of the nulls of t }``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import Null, Valuation
from ..datamodel.values import check_value, is_null


class DataTree:
    """An unordered, labelled tree whose nodes may carry data values.

    Parameters
    ----------
    label:
        The node's label (tag name); must be a constant.
    value:
        The node's data value: a constant, a :class:`~repro.datamodel.Null`,
        or ``None`` for "no data value at this node".
    children:
        The child subtrees.

    Examples
    --------
    >>> from repro.datamodel import Null
    >>> t = DataTree("order", children=[
    ...     DataTree("id", value="oid1"),
    ...     DataTree("payer", value=Null("p")),
    ... ])
    >>> t.size()
    3
    >>> sorted(n.name for n in t.nulls())
    ['p']
    """

    __slots__ = ("label", "value", "children")

    def __init__(
        self,
        label: str,
        value: Any = None,
        children: Sequence["DataTree"] = (),
    ) -> None:
        if not isinstance(label, str) or not label:
            raise TypeError("a tree node's label must be a non-empty string")
        if is_null(label):
            raise TypeError("labels must be known constants; only data values may be nulls")
        self.label = label
        self.value = None if value is None else check_value(value)
        self.children: Tuple[DataTree, ...] = tuple(children)
        for child in self.children:
            if not isinstance(child, DataTree):
                raise TypeError(f"children must be DataTree instances, got {child!r}")

    # ------------------------------------------------------------------
    # traversal and measurements
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator["DataTree"]:
        """All nodes of the tree, in pre-order."""
        yield self
        for child in self.children:
            yield from child.nodes()

    def descendants(self) -> Iterator["DataTree"]:
        """All proper descendants, in pre-order."""
        for child in self.children:
            yield from child.nodes()

    def size(self) -> int:
        """Number of nodes."""
        return sum(1 for _ in self.nodes())

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a single node has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def labels(self) -> Set[str]:
        """All labels occurring in the tree."""
        return {node.label for node in self.nodes()}

    def values(self) -> List[Any]:
        """All data values (constants and nulls) present in the tree, pre-order."""
        return [node.value for node in self.nodes() if node.value is not None]

    def nulls(self) -> Set[Null]:
        """The marked nulls occurring as data values."""
        return {v for v in self.values() if is_null(v)}

    def constants(self) -> Set[Any]:
        """The constants occurring as data values."""
        return {v for v in self.values() if not is_null(v)}

    def is_complete(self) -> bool:
        """``True`` iff no data value is a null."""
        return not self.nulls()

    # ------------------------------------------------------------------
    # equality / rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTree):
            return NotImplemented
        if self.label != other.label or self.value != other.value:
            return False
        if len(self.children) != len(other.children):
            return False
        # Unordered comparison: children must match up to a permutation.
        remaining = list(other.children)
        for child in self.children:
            for index, candidate in enumerate(remaining):
                if child == candidate:
                    del remaining[index]
                    break
            else:
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.label, self.value, frozenset(hash(c) for c in self.children), len(self.children)))

    def __repr__(self) -> str:
        return f"DataTree({self.label!r}, value={self.value!r}, children={len(self.children)})"

    def to_text(self, indent: int = 0) -> str:
        """An indented, human-readable rendering of the tree."""
        rendered = f"{'  ' * indent}{self.label}"
        if self.value is not None:
            rendered += f" = {self.value}"
        lines = [rendered]
        for child in sorted(self.children, key=lambda c: c.label):
            lines.append(child.to_text(indent + 1))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def map_values(self, function) -> "DataTree":
        """Apply ``function`` to every data value (labels are untouched)."""
        return DataTree(
            self.label,
            None if self.value is None else function(self.value),
            [child.map_values(function) for child in self.children],
        )

    def apply_valuation(self, valuation: Valuation) -> "DataTree":
        """The tree ``v(t)`` with every null data value replaced by its image."""
        return self.map_values(valuation)

    def with_children(self, children: Sequence["DataTree"]) -> "DataTree":
        """A copy of this node with a different child list."""
        return DataTree(self.label, self.value, children)


def tree_from_nested(nested: Any) -> DataTree:
    """Build a :class:`DataTree` from a nested ``(label, value, [children])`` structure.

    Accepted shapes for each node: ``label``, ``(label, value)``, or
    ``(label, value, [children...])`` where ``value`` may be ``None``.

    Examples
    --------
    >>> t = tree_from_nested(("order", None, [("id", "oid1"), ("payer", None)]))
    >>> t.size()
    3
    """
    if isinstance(nested, str):
        return DataTree(nested)
    if isinstance(nested, DataTree):
        return nested
    if isinstance(nested, (tuple, list)):
        if len(nested) == 2:
            label, value = nested
            return DataTree(label, value)
        if len(nested) == 3:
            label, value, children = nested
            return DataTree(label, value, [tree_from_nested(child) for child in children])
    raise ValueError(f"cannot interpret {nested!r} as a tree node")
