"""``Server``: N async clients over one warmed, frozen session pool.

The serving story (ROADMAP "Concurrent query-service tier"): certain
answers are an expensive read-mostly computation — many cheap concurrent
readers over one compiled, persistent database.  The heavy state (loaded
backend tables, compiled SQL plans, the optimized logical plans, the
hash-consed condition kernel) is built once at construction, frozen, and
then shared by every pool thread lock-free; the asyncio surface is a thin
``run_in_executor`` dispatch over a bounded thread pool.

Observability: every dispatch is counted and timed into the frozen
session's :class:`~repro.obs.MetricsRegistry` (``serve.submitted`` /
``serve.completed`` / ``serve.latency`` — queue depth is their
difference), :meth:`Server.stats` merges :meth:`Session.metrics` in, and
when the frozen session has a tracer each request runs under a
``serve.request`` span.  ``run_in_executor`` does *not* propagate
contextvars, so the dispatch captures a ``contextvars`` snapshot and
runs the work inside it — that is what carries the ambient tracer across
the thread-pool boundary.
"""

from __future__ import annotations

import asyncio
import contextvars
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Iterable, List, Optional, Tuple

from ..datamodel import Database
from ..resilience import (
    Budget,
    InvalidRequestError,
    PoolExhausted,
    RetryPolicy,
    SessionClosedError,
)
from ..session import Session, connect


class Server:
    """An asyncio query service over a pool of sessions on one database.

    Parameters
    ----------
    database:
        The incomplete database every query runs against.  Immutable for
        the server's lifetime — updates mean building a new server (the
        frozen backend refuses ``replace_database``).
    pool_size:
        Number of worker threads answering queries concurrently.  May
        exceed ``backends``: relation-returning reads share the single
        frozen session, so they need no handle of their own.
    engine, semantics, model, workers, budget, on_budget, retry_policy:
        Forwarded to :func:`repro.connect` for every pooled session.
        ``semantics="prob"`` with a :class:`~repro.prob.ProbabilityModel`
        enables :meth:`confidence` on the frozen read path.
    backends:
        Number of *mutable* sessions (each with its own backend handle)
        kept for ``cursor()`` streaming, which pins per-connection cursor
        state and therefore cannot ride the shared frozen handle.
    warm:
        Queries run once before freezing, to populate the shared plan
        cache / condition kernel / compiled-SQL plans.  Serve your hot
        query set here; unwarmed queries stay correct but recompile per
        call.
    backend_path:
        SQLite storage root for ``engine="sqlite"``; cursor sessions get
        ``.s<i>`` suffixed files when it is not ``":memory:"``.
    cursor_timeout:
        Default bound (seconds) on waiting for a free ``backends``
        checkout in :meth:`cursor`.  When it expires the call raises
        :class:`~repro.resilience.PoolExhausted` instead of blocking
        forever behind stuck streams; per-call ``timeout=`` overrides it.
    tracer, metrics:
        Forwarded to :func:`repro.connect` for every pooled session —
        one tracer (if any) sees every request; ``metrics=False`` turns
        the per-session registries off.
    """

    def __init__(
        self,
        database: Database,
        *,
        pool_size: int = 8,
        engine: str = "sqlite",
        semantics: str = "cwa",
        model: Optional[Any] = None,
        workers: Optional[int] = None,
        backends: int = 2,
        warm: Iterable[Any] = (),
        backend_path: str = ":memory:",
        budget: Optional[Budget] = None,
        on_budget: str = "degrade",
        retry_policy: Optional[RetryPolicy] = None,
        cursor_timeout: Optional[float] = 30.0,
        tracer: Optional[Any] = None,
        metrics: bool = True,
    ) -> None:
        if pool_size < 1:
            raise InvalidRequestError(f"pool_size must be >= 1, got {pool_size!r}")
        if backends < 1:
            raise InvalidRequestError(f"backends must be >= 1, got {backends!r}")
        if cursor_timeout is not None and cursor_timeout <= 0:
            raise InvalidRequestError(
                f"cursor_timeout must be positive (or None for unbounded), "
                f"got {cursor_timeout!r}"
            )
        if not isinstance(database, Database):
            raise TypeError(
                f"Server expects a Database, got {type(database).__name__}"
            )
        self.database = database
        self.pool_size = pool_size
        self.cursor_timeout = cursor_timeout
        session_kwargs = dict(
            engine=engine,
            semantics=semantics,
            model=model,
            workers=workers,
            budget=budget,
            on_budget=on_budget,
            retry_policy=retry_policy,
            tracer=tracer,
            metrics=metrics,
        )
        # The shared read path: one session, warmed then frozen, serving
        # every relation-returning mode from all pool threads without locks.
        self._frozen = connect(database, backend_path=backend_path, **session_kwargs)
        self._frozen.freeze(warm=warm)
        self._metrics = self._frozen._metrics
        # The streaming path: a small checkout pool of mutable sessions,
        # one backend handle each (a cursor pins connection state for its
        # whole lifetime, so streams cannot share the frozen handle).
        self._cursor_sessions: "queue.Queue[Session]" = queue.Queue()
        self._all_sessions: List[Session] = []
        for index in range(backends):
            path = backend_path
            if path != ":memory:":
                path = f"{path}.s{index}"
            session = connect(database, backend_path=path, **session_kwargs)
            self._cursor_sessions.put(session)
            self._all_sessions.append(session)
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self._served = 0
        self._served_lock = threading.Lock()

    # ------------------------------------------------------------------
    # async dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, fn: Any, kind: str) -> Any:
        """Wrap a pool-thread callable with serve metrics and the request span.

        Returns a zero-argument callable that runs ``fn`` inside a
        ``contextvars`` snapshot of the *submitting* coroutine (asyncio's
        ``run_in_executor`` drops contextvars on the floor otherwise), so
        spans opened in the pool thread still nest correctly.
        """
        ctx = contextvars.copy_context()
        metrics = self._metrics
        tracer = self._frozen._tracer
        metrics.count("serve.submitted")
        submitted = time.perf_counter()

        def run() -> Any:
            metrics.observe("serve.queue_wait", time.perf_counter() - submitted)
            if tracer is None:
                return fn()
            with tracer.span("serve.request", kind=kind):
                return fn()

        def call() -> Any:
            try:
                return ctx.run(run)
            finally:
                metrics.count("serve.completed")
                metrics.observe("serve.latency", time.perf_counter() - submitted)

        return call

    async def _run(self, fn: Any, kind: str) -> Any:
        if self._closed:
            raise SessionClosedError("server is closed")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._pool, self._dispatch(fn, kind))
        with self._served_lock:
            self._served += 1
        return result

    async def certain(self, query: Any, **kwargs: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.certain` on the frozen session."""
        return await self._run(
            lambda: self._frozen.query(query).certain(**kwargs), "certain"
        )

    async def possible(self, query: Any, **kwargs: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.possible`."""
        return await self._run(
            lambda: self._frozen.query(query).possible(**kwargs), "possible"
        )

    async def boolean(self, query: Any, **kwargs: Any) -> bool:
        """``await``-able :meth:`repro.session.Query.boolean`."""
        return await self._run(
            lambda: self._frozen.query(query).boolean(**kwargs), "boolean"
        )

    async def confidence(self, query: Any, **kwargs: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.confidence`.

        Requires the server to be built with ``semantics="prob"`` and a
        ``model=``.  Confidence queries on the frozen session read the
        memo warmed before freezing and memoize new work per call, so
        they stay lock-free across the pool.
        """
        return await self._run(
            lambda: self._frozen.query(query).confidence(**kwargs), "confidence"
        )

    async def answer_object(self, query: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.answer_object`."""
        return await self._run(
            lambda: self._frozen.query(query).answer_object(), "answer_object"
        )

    async def knowledge(self, query: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.knowledge`."""
        return await self._run(
            lambda: self._frozen.query(query).knowledge(), "knowledge"
        )

    async def explain(self, query: Any) -> str:
        """``await``-able :meth:`repro.session.Query.explain`."""
        return await self._run(
            lambda: self._frozen.query(query).explain(), "explain"
        )

    def _checkout_cursor_session(self, timeout: Optional[float]) -> Session:
        """Blocking checkout of a streaming session, bounded by ``timeout``."""
        try:
            if timeout is None:
                return self._cursor_sessions.get()
            return self._cursor_sessions.get(timeout=timeout)
        except queue.Empty:
            self._metrics.count("serve.cursor_timeouts")
            raise PoolExhausted(
                f"no cursor session became free within {timeout:g}s "
                f"({len(self._all_sessions)} backends, all streaming); raise "
                "backends=, shorten streams, or pass a longer timeout=",
                timeout=timeout,
            ) from None

    async def cursor(
        self,
        query: Any,
        batch_size: int = 1024,
        certain: bool = False,
        timeout: Optional[float] = None,
    ) -> AsyncIterator[List[Tuple[Any, ...]]]:
        """Stream the answer rows as an async iterator of batches.

        Checks a mutable session out of the ``backends`` pool (awaiting
        one if all are streaming), pulls each batch through the thread
        pool, and returns the session when the stream ends — including
        when the consumer abandons the generator early, so an interrupted
        client cannot leak a backend handle or a temp table.

        The checkout wait is bounded: after ``timeout`` seconds (default
        the server's ``cursor_timeout``, itself defaulting to 30 s)
        :class:`~repro.resilience.PoolExhausted` is raised instead of
        blocking forever behind stuck streams.  ``timeout=None`` falls
        back to the server default; an unbounded wait needs a server
        constructed with ``cursor_timeout=None``.
        """
        if self._closed:
            raise SessionClosedError("server is closed")
        if batch_size < 1:
            raise InvalidRequestError(f"batch_size must be >= 1, got {batch_size!r}")
        if timeout is not None and timeout <= 0:
            raise InvalidRequestError(
                f"timeout must be positive (or None for the server default), "
                f"got {timeout!r}"
            )
        effective = timeout if timeout is not None else self.cursor_timeout
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            self._pool, lambda: self._checkout_cursor_session(effective)
        )
        self._metrics.count("serve.submitted")
        submitted = time.perf_counter()
        try:
            cur = await loop.run_in_executor(
                self._pool,
                lambda: session.query(query).cursor(
                    batch_size=batch_size, certain=certain
                ),
            )
            try:
                while True:
                    batch = await loop.run_in_executor(self._pool, cur.fetchmany)
                    if not batch:
                        break
                    yield batch
            finally:
                await loop.run_in_executor(self._pool, cur.close)
        finally:
            self._cursor_sessions.put(session)
            self._metrics.count("serve.completed")
            self._metrics.observe("serve.latency", time.perf_counter() - submitted)
            with self._served_lock:
                self._served += 1

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Cancel every in-flight query, on every pooled session.

        Thread-safe and callable from any thread or coroutine; delegates
        to :meth:`repro.session.Session.cancel` on the frozen session and
        on each cursor session (budget flags, backend ``interrupt()``,
        and the ``workers=`` cancel events).
        """
        self._frozen.cancel()
        for session in self._all_sessions:
            session.cancel()

    def stats(self) -> dict:
        """A snapshot of the server's shape, traffic counters and metrics.

        ``metrics`` is the frozen session's :meth:`Session.metrics`
        snapshot (the cursor sessions each keep their own, readable via
        their sessions); ``queue_depth`` is submitted-minus-completed —
        requests currently waiting or running.
        """
        submitted = self._metrics.counter_value("serve.submitted")
        completed = self._metrics.counter_value("serve.completed")
        return {
            "pool_size": self.pool_size,
            "backends": len(self._all_sessions),
            "cursor_sessions_idle": self._cursor_sessions.qsize(),
            "served": self._served,
            "queue_depth": submitted - completed,
            "closed": self._closed,
            "metrics": self._frozen.metrics(),
        }

    def close(self) -> None:
        """Shut down the thread pool and close every session (idempotent).

        Queued-but-unstarted work is dropped; in-flight calls finish
        (pair with :meth:`cancel` first for a fast stop).
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._frozen.close()
        for session in self._all_sessions:
            session.close()

    async def aclose(self) -> None:
        """Async :meth:`close` (the shutdown itself runs off-loop)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def frozen_session(self) -> Session:
        """The shared frozen session (read-only; mainly for tests/diagnostics)."""
        return self._frozen

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    async def __aenter__(self) -> "Server":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()
