"""``Server``: N async clients over one warmed, frozen session pool.

The serving story (ROADMAP "Concurrent query-service tier"): certain
answers are an expensive read-mostly computation — many cheap concurrent
readers over one compiled, persistent database.  The heavy state (loaded
backend tables, compiled SQL plans, the optimized logical plans, the
hash-consed condition kernel) is built once at construction, frozen, and
then shared by every pool thread lock-free; the asyncio surface is a thin
``run_in_executor`` dispatch over a bounded thread pool.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, AsyncIterator, Iterable, List, Optional, Tuple

from ..datamodel import Database
from ..resilience import Budget, InvalidRequestError, RetryPolicy, SessionClosedError
from ..session import Session, connect


class Server:
    """An asyncio query service over a pool of sessions on one database.

    Parameters
    ----------
    database:
        The incomplete database every query runs against.  Immutable for
        the server's lifetime — updates mean building a new server (the
        frozen backend refuses ``replace_database``).
    pool_size:
        Number of worker threads answering queries concurrently.  May
        exceed ``backends``: relation-returning reads share the single
        frozen session, so they need no handle of their own.
    engine, semantics, workers, budget, on_budget, retry_policy:
        Forwarded to :func:`repro.connect` for every pooled session.
    backends:
        Number of *mutable* sessions (each with its own backend handle)
        kept for ``cursor()`` streaming, which pins per-connection cursor
        state and therefore cannot ride the shared frozen handle.
    warm:
        Queries run once before freezing, to populate the shared plan
        cache / condition kernel / compiled-SQL plans.  Serve your hot
        query set here; unwarmed queries stay correct but recompile per
        call.
    backend_path:
        SQLite storage root for ``engine="sqlite"``; cursor sessions get
        ``.s<i>`` suffixed files when it is not ``":memory:"``.
    """

    def __init__(
        self,
        database: Database,
        *,
        pool_size: int = 8,
        engine: str = "sqlite",
        semantics: str = "cwa",
        workers: Optional[int] = None,
        backends: int = 2,
        warm: Iterable[Any] = (),
        backend_path: str = ":memory:",
        budget: Optional[Budget] = None,
        on_budget: str = "degrade",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if pool_size < 1:
            raise InvalidRequestError(f"pool_size must be >= 1, got {pool_size!r}")
        if backends < 1:
            raise InvalidRequestError(f"backends must be >= 1, got {backends!r}")
        if not isinstance(database, Database):
            raise TypeError(
                f"Server expects a Database, got {type(database).__name__}"
            )
        self.database = database
        self.pool_size = pool_size
        session_kwargs = dict(
            engine=engine,
            semantics=semantics,
            workers=workers,
            budget=budget,
            on_budget=on_budget,
            retry_policy=retry_policy,
        )
        # The shared read path: one session, warmed then frozen, serving
        # every relation-returning mode from all pool threads without locks.
        self._frozen = connect(database, backend_path=backend_path, **session_kwargs)
        self._frozen.freeze(warm=warm)
        # The streaming path: a small checkout pool of mutable sessions,
        # one backend handle each (a cursor pins connection state for its
        # whole lifetime, so streams cannot share the frozen handle).
        self._cursor_sessions: "queue.Queue[Session]" = queue.Queue()
        self._all_sessions: List[Session] = []
        for index in range(backends):
            path = backend_path
            if path != ":memory:":
                path = f"{path}.s{index}"
            session = connect(database, backend_path=path, **session_kwargs)
            self._cursor_sessions.put(session)
            self._all_sessions.append(session)
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self._served = 0
        self._served_lock = threading.Lock()

    # ------------------------------------------------------------------
    # async dispatch
    # ------------------------------------------------------------------
    async def _run(self, fn: Any) -> Any:
        if self._closed:
            raise SessionClosedError("server is closed")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(self._pool, fn)
        with self._served_lock:
            self._served += 1
        return result

    async def certain(self, query: Any, **kwargs: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.certain` on the frozen session."""
        return await self._run(lambda: self._frozen.query(query).certain(**kwargs))

    async def possible(self, query: Any, **kwargs: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.possible`."""
        return await self._run(lambda: self._frozen.query(query).possible(**kwargs))

    async def boolean(self, query: Any, **kwargs: Any) -> bool:
        """``await``-able :meth:`repro.session.Query.boolean`."""
        return await self._run(lambda: self._frozen.query(query).boolean(**kwargs))

    async def answer_object(self, query: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.answer_object`."""
        return await self._run(lambda: self._frozen.query(query).answer_object())

    async def knowledge(self, query: Any) -> Any:
        """``await``-able :meth:`repro.session.Query.knowledge`."""
        return await self._run(lambda: self._frozen.query(query).knowledge())

    async def explain(self, query: Any) -> str:
        """``await``-able :meth:`repro.session.Query.explain`."""
        return await self._run(lambda: self._frozen.query(query).explain())

    async def cursor(
        self, query: Any, batch_size: int = 1024, certain: bool = False
    ) -> AsyncIterator[List[Tuple[Any, ...]]]:
        """Stream the answer rows as an async iterator of batches.

        Checks a mutable session out of the ``backends`` pool (awaiting
        one if all are streaming), pulls each batch through the thread
        pool, and returns the session when the stream ends — including
        when the consumer abandons the generator early, so an interrupted
        client cannot leak a backend handle or a temp table.
        """
        if self._closed:
            raise SessionClosedError("server is closed")
        if batch_size < 1:
            raise InvalidRequestError(f"batch_size must be >= 1, got {batch_size!r}")
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(self._pool, self._cursor_sessions.get)
        try:
            cur = await loop.run_in_executor(
                self._pool,
                lambda: session.query(query).cursor(
                    batch_size=batch_size, certain=certain
                ),
            )
            try:
                while True:
                    batch = await loop.run_in_executor(self._pool, cur.fetchmany)
                    if not batch:
                        break
                    yield batch
            finally:
                await loop.run_in_executor(self._pool, cur.close)
        finally:
            self._cursor_sessions.put(session)
            with self._served_lock:
                self._served += 1

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Cancel every in-flight query, on every pooled session.

        Thread-safe and callable from any thread or coroutine; delegates
        to :meth:`repro.session.Session.cancel` on the frozen session and
        on each cursor session (budget flags, backend ``interrupt()``,
        and the ``workers=`` cancel events).
        """
        self._frozen.cancel()
        for session in self._all_sessions:
            session.cancel()

    def stats(self) -> dict:
        """A snapshot of the server's shape and traffic counters."""
        return {
            "pool_size": self.pool_size,
            "backends": len(self._all_sessions),
            "cursor_sessions_idle": self._cursor_sessions.qsize(),
            "served": self._served,
            "closed": self._closed,
        }

    def close(self) -> None:
        """Shut down the thread pool and close every session (idempotent).

        Queued-but-unstarted work is dropped; in-flight calls finish
        (pair with :meth:`cancel` first for a fast stop).
        """
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._frozen.close()
        for session in self._all_sessions:
            session.close()

    async def aclose(self) -> None:
        """Async :meth:`close` (the shutdown itself runs off-loop)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def frozen_session(self) -> Session:
        """The shared frozen session (read-only; mainly for tests/diagnostics)."""
        return self._frozen

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    async def __aenter__(self) -> "Server":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()
