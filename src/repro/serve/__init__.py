"""The concurrent query-service tier: an asyncio front end over sessions.

``repro.serve.Server`` owns a pool of warmed :class:`~repro.session.Session`
objects behind an async dispatcher::

    import asyncio, repro
    from repro.algebra import parse_ra
    from repro.serve import Server

    async def main():
        async with Server(db, pool_size=8, engine="sqlite",
                          warm=[parse_ra("project[#0](R)")]) as server:
            answer = await server.certain(parse_ra("project[#0](R)"))
            async for batch in server.cursor(parse_ra("R")):
                ...

    asyncio.run(main())

Relation-returning reads (``certain``/``possible``/``boolean``/
``answer_object``/``knowledge``) all run on **one shared frozen session**
(:meth:`Session.freeze`): its plan cache, condition kernel and backend
handle are immutable after warm-up, so any number of pool threads can
evaluate on it concurrently without locks — which is why ``pool_size``
may exceed the number of backend handles.  Only ``cursor()`` streaming
checks out one of the few *mutable* sessions (``backends=``), because a
row stream holds backend cursor state for its whole lifetime.

See ``docs/serving.md`` for pool sizing, frozen-session semantics and
cancellation latency under the pool.
"""

from .server import Server

__all__ = ["Server"]
