"""Conditioning a probabilistic c-table on a constraint.

Koch–Olteanu conditioning: given a constraint ``Φ`` (a condition over
the model's nulls), retract every world violating ``Φ`` and renormalize
— afterwards each answer's probability is ``P(lineage ∧ Φ) / P(Φ)``.
The pc-table's *global condition* is conditioned on the same way (worlds
violating it never existed), so ``Query.confidence()`` folds it into the
constraint.

The work is factorized with the same block locality
:mod:`repro.homomorphisms.blocks` gives core computation: the
constraint's conjuncts are partitioned into *components* touching
disjoint model groups (via :func:`fact_components` over pseudo-facts
whose "nulls" are group representatives).  Components are mutually
independent, so

* ``P(Φ) = ∏_k P(C_k)`` — each factor computed once and cached;
* ``P(lineage | Φ) = P(lineage ∧ ⋀overlapping C_k) / ∏overlapping
  P(C_k)`` — only the components sharing a group with the lineage join
  the (potentially exponential) joint evaluation; the rest cancel.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..datamodel.condition_kernel import DEFAULT_KERNEL, ConditionKernel
from ..datamodel.conditional import And, Condition, TRUE, TrueCondition
from ..datamodel.values import Null
from ..homomorphisms.blocks import fact_components
from ..obs import current_metrics
from ..resilience import InvalidRequestError
from .confidence import confidence
from .model import ProbabilityModel

__all__ = ["Conditioner"]


class _Component:
    """One independent slice of the constraint: condition + groups + P."""

    __slots__ = ("condition", "representatives", "probability")

    def __init__(
        self,
        condition: Condition,
        representatives: FrozenSet[Null],
        probability: float,
    ) -> None:
        self.condition = condition
        self.representatives = representatives
        self.probability = probability


class Conditioner:
    """``P(· | constraint)`` for conditions over one probability model.

    Construction computes (and caches) the per-component probabilities
    and the normalization ``P(constraint)``;
    :class:`~repro.resilience.InvalidRequestError` is raised when the
    constraint has probability zero (there is nothing to condition on).
    """

    __slots__ = ("constraint", "model", "kernel", "normalization", "_components")

    def __init__(
        self,
        constraint: Condition,
        model: ProbabilityModel,
        kernel: Optional[ConditionKernel] = None,
    ) -> None:
        kernel = kernel if kernel is not None else DEFAULT_KERNEL
        constraint = kernel.intern(constraint)
        model.require(kernel.nulls(constraint))
        self.constraint = constraint
        self.model = model
        self.kernel = kernel
        self._components: List[_Component] = []

        conjuncts: Tuple[Condition, ...]
        if isinstance(constraint, And):
            conjuncts = constraint.operands
        else:
            conjuncts = (constraint,)

        # Pseudo-facts whose "row" carries the conjunct's group
        # representatives: fact_components then computes exactly the
        # partition of conjuncts into group-connected components.
        pseudo = []
        normalization = 1.0
        for index, conjunct in enumerate(conjuncts):
            representatives = sorted(
                {model.representative(n) for n in kernel.nulls(conjunct)},
                key=lambda n: n.name,
            )
            if not representatives:
                # Ground conjunct: a fixed truth value (FALSE zeroes the
                # normalization below via confidence() == 0).
                normalization *= confidence(conjunct, model, kernel)
                continue
            pseudo.append((index, tuple(representatives)))

        for component in fact_components(pseudo):
            members = [conjuncts[index] for index, _ in component]
            representatives = frozenset(
                rep for _, reps in component for rep in reps
            )
            condition = (
                members[0] if len(members) == 1 else kernel.conjunction(members)
            )
            probability = confidence(condition, model, kernel)
            normalization *= probability
            self._components.append(
                _Component(condition, representatives, probability)
            )

        if normalization <= 0.0:
            raise InvalidRequestError(
                "cannot condition on a constraint with probability zero"
            )
        self.normalization = normalization
        metrics = current_metrics()
        if metrics is not None:
            metrics.count("prob.conditioning.components", len(self._components))

    def components(self) -> int:
        """How many independent constraint components were found."""
        return len(self._components)

    def probability(self, condition: Condition) -> float:
        """``P(condition | constraint)``.

        Only constraint components sharing a model group with
        ``condition`` enter the joint evaluation; independent components
        cancel against their cached factor.
        """
        condition = self.kernel.intern(condition)
        if isinstance(condition, TrueCondition):
            return 1.0
        self.model.require(self.kernel.nulls(condition))
        touched = {
            self.model.representative(n)
            for n in self.kernel.nulls(condition)
        }
        joint = [condition]
        denominator = 1.0
        for component in self._components:
            if component.representatives & touched:
                joint.append(component.condition)
                denominator *= component.probability
        if len(joint) == 1:
            return confidence(condition, self.model, self.kernel)
        numerator = confidence(
            self.kernel.conjunction(joint), self.model, self.kernel
        )
        if denominator <= 0.0:  # unreachable given normalization > 0
            raise InvalidRequestError("conditioning denominator vanished")
        return min(1.0, numerator / denominator)

    def given(self) -> Optional[Condition]:
        """The constraint for rejection sampling (``None`` when trivial)."""
        if isinstance(self.constraint, TrueCondition):
            return None
        return self.constraint

    def __repr__(self) -> str:
        return (
            f"Conditioner({len(self._components)} components, "
            f"P(constraint)={self.normalization:.4f})"
        )


def trivial_conditioner(model: ProbabilityModel, kernel: Optional[ConditionKernel] = None) -> Conditioner:
    """A conditioner on the trivially-true constraint (no retraction)."""
    return Conditioner(TRUE, model, kernel)
