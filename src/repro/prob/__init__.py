"""Probabilistic c-tables: confidence computation on the condition kernel.

This package is the ``semantics="prob"`` evaluation tier.  A c-table
plus a :class:`ProbabilityModel` over its nulls is a *pc-table* (a
probabilistic database in the representation-system sense): each
possible world gets a probability, and the confidence of an answer
tuple is the probability of its lineage condition.

* :mod:`repro.prob.model` — :class:`ProbabilityModel` /
  :class:`ExclusiveBlock`: independent per-null distributions and
  block-exclusive joint alternatives, validated at construction.
* :mod:`repro.prob.confidence` — :func:`confidence`: exact evaluation
  by decomposition over the interned condition DAG (independent splits,
  exclusive-OR detection, Shannon expansion), memoized per
  (kernel, model), budget-aware.
* :mod:`repro.prob.montecarlo` — :func:`monte_carlo_confidence`: the
  sampling fallback when exact evaluation exceeds its budget, returning
  a :class:`~repro.resilience.ConfidenceInterval`.
* :mod:`repro.prob.conditioning` — :class:`Conditioner`: Koch–Olteanu
  conditioning on a constraint with block-local factorization.

End-to-end: ``repro.connect(semantics="prob", model=...)`` then
``Query.confidence()`` / ``Query.condition_on(constraint)``; see
``docs/probability.md``.
"""

from .conditioning import Conditioner
from .confidence import ConfidenceStats, brute_force_confidence, confidence
from .model import ExclusiveBlock, ProbabilityModel
from .montecarlo import monte_carlo_confidence, wilson_interval

__all__ = [
    "Conditioner",
    "ConfidenceStats",
    "ExclusiveBlock",
    "ProbabilityModel",
    "brute_force_confidence",
    "confidence",
    "monte_carlo_confidence",
    "wilson_interval",
]
