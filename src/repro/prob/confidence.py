"""Exact confidence computation by decomposition over the condition DAG.

``confidence(condition, model)`` computes ``P(condition holds)`` under a
:class:`~repro.prob.model.ProbabilityModel` by structural decomposition,
the Koch–Olteanu evaluation strategy specialised to the repo's interned
condition kernel:

1. **Atoms** read straight off the model: ``P(x = c)`` is the marginal,
   ``P(x = y)`` sums matching outcomes (same group) or matching marginals
   (independent groups).
2. **Independent splits** — when the operands of an ``And``/``Or``
   partition into classes touching disjoint model groups (checked with
   the kernel's cached ``nulls()``), the probability factorizes:
   ``P(⋀) = ∏ P(class)`` and ``P(⋁) = 1 − ∏ (1 − P(class))``.
3. **Exclusive OR** — when every pair of disjuncts pins some shared
   block to incompatible alternatives, the disjuncts are mutually
   exclusive and ``P(⋁) = Σ P(disjunct)``.
4. **Shannon expansion** otherwise: pick the most-shared null, condition
   on each outcome of its group (``P = Σ_o P(o) · P(cond | o)``), and
   recurse on the substituted-and-reinterned residuals.

Results are memoized per ``(kernel, model)`` with identity keys — the
same discipline (and the same ``memo_limit`` bound) as the kernel's
and/or memos; on a frozen kernel the memo is per-call so shared state is
never mutated.  A cooperative :func:`~repro.resilience.active_budget`
check runs on every Shannon branch, so a huge lineage raises
:class:`~repro.resilience.BudgetExceeded` instead of hanging — callers
degrade to the Monte Carlo estimator in :mod:`repro.prob.montecarlo`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datamodel.condition_kernel import DEFAULT_KERNEL, ConditionKernel
from ..datamodel.conditional import (
    And,
    Condition,
    Eq,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
)
from ..datamodel.valuation import Valuation
from ..datamodel.values import Null, is_null
from ..obs import current_metrics, span
from ..resilience import InvalidRequestError, active_budget
from .model import ProbabilityModel

__all__ = ["ConfidenceStats", "brute_force_confidence", "confidence"]

#: Above this many disjuncts the pairwise exclusivity check (quadratic)
#: is skipped and the evaluator goes straight to Shannon expansion.
_EXCLUSIVE_CHECK_LIMIT = 64


class ConfidenceStats:
    """Decomposition counters for one :func:`confidence` call (diagnostics)."""

    __slots__ = (
        "atoms",
        "independent_ands",
        "independent_ors",
        "exclusive_ors",
        "shannon_expansions",
        "max_depth",
        "memo_hits",
    )

    def __init__(self) -> None:
        self.atoms = 0
        self.independent_ands = 0
        self.independent_ors = 0
        self.exclusive_ors = 0
        self.shannon_expansions = 0
        self.max_depth = 0
        self.memo_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Evaluator:
    """One confidence computation: model + kernel + memo + ambient budget.

    ``memo`` is the writable table; ``base`` is an optional read-only
    layer underneath it — on a frozen kernel the memo warmed before
    ``freeze()`` is served through ``base`` while this call's results go
    to a private ``memo``, so shared state is never mutated.  Only a
    shared (kernel-owned) memo is trimmed to ``memo_limit``; a per-call
    memo dies with the call.
    """

    __slots__ = ("model", "kernel", "memo", "base", "shared", "state", "metrics", "stats")

    def __init__(
        self,
        model: ProbabilityModel,
        kernel: ConditionKernel,
        memo: Dict[int, Tuple[Condition, float]],
        base: Optional[Dict[int, Tuple[Condition, float]]] = None,
        shared: bool = False,
    ) -> None:
        self.model = model
        self.kernel = kernel
        self.memo = memo
        self.base = base
        self.shared = shared
        self.state = active_budget()
        self.metrics = current_metrics()
        self.stats = ConfidenceStats()

    def _count(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.count(f"prob.decompositions.{kind}")

    # ------------------------------------------------------------------
    # recursion
    # ------------------------------------------------------------------
    def probability(self, condition: Condition, depth: int = 0) -> float:
        if isinstance(condition, TrueCondition):
            return 1.0
        if isinstance(condition, FalseCondition):
            return 0.0
        entry = self.memo.get(id(condition))
        if entry is not None and entry[0] is condition:
            self.stats.memo_hits += 1
            return entry[1]
        if self.base is not None:
            entry = self.base.get(id(condition))
            if entry is not None and entry[0] is condition:
                self.stats.memo_hits += 1
                return entry[1]
        if depth > self.stats.max_depth:
            self.stats.max_depth = depth

        if isinstance(condition, Eq):
            result = self._atom(condition)
        elif isinstance(condition, Not):
            result = 1.0 - self.probability(condition.operand, depth)
        elif isinstance(condition, And):
            result = self._conjunction(condition, depth)
        elif isinstance(condition, Or):
            result = self._disjunction(condition, depth)
        else:
            raise InvalidRequestError(
                f"confidence(): unsupported condition node {type(condition).__name__}"
            )

        self.memo[id(condition)] = (condition, result)
        if self.shared:
            self.kernel._trim_memo(self.memo)
        return result

    def _atom(self, atom: Eq) -> float:
        self.stats.atoms += 1
        self._count("atom")
        left, right = atom.left, atom.right
        model = self.model
        if is_null(left) and is_null(right):
            if left == right:
                return 1.0
            if model.representative(left) == model.representative(right):
                # Same correlation block: sum the alternatives agreeing
                # on the two positions.
                return sum(
                    p
                    for assignment, p in model.outcomes(left)
                    if assignment[left] == assignment[right]
                )
            # Independent groups: collision probability of the marginals.
            m_left = model.marginal(left)
            m_right = model.marginal(right)
            if len(m_right) < len(m_left):
                m_left, m_right = m_right, m_left
            return sum(p * m_right.get(v, 0.0) for v, p in m_left.items())
        if is_null(left):
            return model.marginal(left).get(right, 0.0)
        if is_null(right):
            return model.marginal(right).get(left, 0.0)
        return 1.0 if left == right else 0.0

    # ------------------------------------------------------------------
    # independence partition
    # ------------------------------------------------------------------
    def _partition(
        self, operands: Sequence[Condition]
    ) -> List[List[Condition]]:
        """Group operands into classes touching disjoint model groups.

        Union-find over group representatives: two operands land in the
        same class iff they (transitively) share a correlation group.
        Ground operands (no nulls) are their own class — they contribute
        an exact 0/1 factor.
        """
        model = self.model
        kernel = self.kernel
        parent: Dict[Any, Any] = {}

        def find(x: Any) -> Any:
            while parent[x] is not x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: Any, b: Any) -> None:
            ra, rb = find(a), find(b)
            if ra is not rb:
                parent[rb] = ra

        keys: List[Any] = []
        for index, operand in enumerate(operands):
            reps = {model.representative(n) for n in kernel.nulls(operand)}
            if not reps:
                key: Any = ("ground", index)
                parent[key] = key
                keys.append(key)
                continue
            anchor = None
            for rep in reps:
                if rep not in parent:
                    parent[rep] = rep
                if anchor is None:
                    anchor = rep
                else:
                    union(anchor, rep)
            keys.append(anchor)
        classes: Dict[Any, List[Condition]] = {}
        for operand, key in zip(operands, keys):
            classes.setdefault(find(key), []).append(operand)
        return list(classes.values())

    def _conjunction(self, condition: And, depth: int) -> float:
        classes = self._partition(condition.operands)
        if len(classes) > 1:
            self.stats.independent_ands += 1
            self._count("independent_and")
            result = 1.0
            for group in classes:
                factor = self.probability(self._recombine(And, group), depth)
                if factor == 0.0:
                    return 0.0
                result *= factor
            return result
        return self._shannon(condition, condition.operands, depth)

    def _disjunction(self, condition: Or, depth: int) -> float:
        classes = self._partition(condition.operands)
        if len(classes) > 1:
            self.stats.independent_ors += 1
            self._count("independent_or")
            result = 1.0
            for group in classes:
                result *= 1.0 - self.probability(self._recombine(Or, group), depth)
                if result == 0.0:
                    return 1.0
            return 1.0 - result
        if len(condition.operands) <= _EXCLUSIVE_CHECK_LIMIT and self._exclusive(
            condition.operands
        ):
            self.stats.exclusive_ors += 1
            self._count("exclusive_or")
            return min(
                1.0, sum(self.probability(op, depth) for op in condition.operands)
            )
        return self._shannon(condition, condition.operands, depth)

    def _recombine(self, cls: type, group: List[Condition]) -> Condition:
        if len(group) == 1:
            return group[0]
        if cls is And:
            return self.kernel.conjunction(group)
        return self.kernel.disjunction(group)

    # ------------------------------------------------------------------
    # exclusive-OR detection from block structure
    # ------------------------------------------------------------------
    @staticmethod
    def _pinning(operand: Condition) -> Optional[Dict[Null, Any]]:
        """``{null: constant}`` forced by top-level positive equalities.

        Conservative: returns ``None`` when the operand's truth is not
        visibly conjoined with null-to-constant pins (a ``None`` simply
        disables the exclusivity shortcut for that operand).
        """
        atoms: Tuple[Condition, ...]
        if isinstance(operand, Eq):
            atoms = (operand,)
        elif isinstance(operand, And):
            atoms = operand.operands
        else:
            return None
        pins: Dict[Null, Any] = {}
        for atom in atoms:
            if not isinstance(atom, Eq):
                continue
            left, right = atom.left, atom.right
            if is_null(left) and not is_null(right):
                null, value = left, right
            elif is_null(right) and not is_null(left):
                null, value = right, left
            else:
                continue
            if null in pins and pins[null] != value:
                return {}  # internally contradictory; never true
            pins[null] = value
        return pins or None

    def _pair_exclusive(
        self, pins_a: Dict[Null, Any], pins_b: Dict[Null, Any]
    ) -> bool:
        model = self.model
        # Direct conflict on a shared null.
        for null, value in pins_a.items():
            other = pins_b.get(null)
            if other is not None and other != value:
                return True
        # Block-level conflict: the merged pins on some shared group
        # extend no alternative of that group.
        shared_reps = {
            model.representative(n) for n in pins_a
        } & {model.representative(n) for n in pins_b}
        for rep in shared_reps:
            group = model.group(rep)
            merged = {}
            for pins in (pins_a, pins_b):
                for null, value in pins.items():
                    if null in group:
                        merged[null] = value
            consistent = any(
                all(assignment[null] == value for null, value in merged.items())
                for assignment, _ in model.outcomes(rep)
            )
            if not consistent:
                return True
        return False

    def _exclusive(self, operands: Sequence[Condition]) -> bool:
        pinnings = []
        for operand in operands:
            pins = self._pinning(operand)
            if pins is None:
                return False
            pinnings.append(pins)
        for i in range(len(pinnings)):
            for j in range(i + 1, len(pinnings)):
                if not self._pair_exclusive(pinnings[i], pinnings[j]):
                    return False
        return True

    # ------------------------------------------------------------------
    # Shannon expansion
    # ------------------------------------------------------------------
    def _choose_null(self, operands: Sequence[Condition]) -> Null:
        counts: Dict[Null, int] = {}
        for operand in operands:
            for null in self.kernel.nulls(operand):
                counts[null] = counts.get(null, 0) + 1
        # The most-shared null unlinks the most operands per expansion;
        # name-ordered tie-break keeps the expansion deterministic.
        return min(counts, key=lambda n: (-counts[n], n.name))

    def _shannon(
        self, condition: Condition, operands: Sequence[Condition], depth: int
    ) -> float:
        self.stats.shannon_expansions += 1
        self._count("shannon")
        pivot = self._choose_null(operands)
        state = self.state
        total = 0.0
        for assignment, p in self.model.outcomes(pivot):
            if state is not None:
                state.tick_world()
            residual = self.kernel.intern(condition.substitute(Valuation(assignment)))
            total += p * self.probability(residual, depth + 1)
        return total


def confidence(
    condition: Condition,
    model: ProbabilityModel,
    kernel: Optional[ConditionKernel] = None,
    memo: Optional[Dict[int, Tuple[Condition, float]]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> float:
    """The exact probability that ``condition`` holds under ``model``.

    Every null of ``condition`` must be covered by the model
    (:class:`~repro.resilience.InvalidRequestError` otherwise).  ``memo``
    overrides the memo table (used for per-call memoization on frozen
    kernels); by default the kernel's shared per-model memo is used when
    the kernel is mutable.  When ``stats`` is given, the decomposition
    counters of this call are added into it.

    Raises :class:`~repro.resilience.BudgetExceeded` when the ambient
    budget runs out mid-expansion; callers degrade to
    :func:`repro.prob.montecarlo.monte_carlo_confidence`.
    """
    kernel = kernel if kernel is not None else DEFAULT_KERNEL
    condition = kernel.intern(condition)
    model.require(kernel.nulls(condition))
    base: Optional[Dict[int, Tuple[Condition, float]]] = None
    shared = False
    if memo is None:
        memo = kernel.confidence_memo(model)
        if memo is None:
            # Frozen kernel: read the memo warmed before freeze() (if
            # any) and memoize this call's work privately.
            base = kernel.frozen_confidence_memo(model)
            memo = {}
        else:
            shared = True
    evaluator = _Evaluator(model, kernel, memo, base=base, shared=shared)
    with span("prob.confidence", nulls=len(kernel.nulls(condition))) as sp:
        result = evaluator.probability(condition)
        counters = evaluator.stats
        sp.set(
            probability=result,
            atoms=counters.atoms,
            memo_hits=counters.memo_hits,
        )
        if counters.shannon_expansions:
            with span(
                "prob.shannon",
                expansions=counters.shannon_expansions,
                depth=counters.max_depth,
                memo_hits=counters.memo_hits,
            ):
                pass
    if stats is not None:
        for name, value in counters.as_dict().items():
            stats[name] = stats.get(name, 0) + value
    # Floating error from long products can leave dust outside [0, 1].
    return min(1.0, max(0.0, result))


def brute_force_confidence(condition: Condition, model: ProbabilityModel) -> float:
    """Oracle: ``P(condition)`` by enumerating every joint outcome.

    Exponential in the number of model groups — test/benchmark baseline
    only.
    """
    total = 0.0
    for assignment, p in model.joint_outcomes(model.nulls()):
        if condition.evaluate(Valuation(assignment)):
            total += p
    return total
