"""Probability models over the nulls of a pc-table.

A *probabilistic c-table* (pc-table) is a c-table whose nulls carry a
probability distribution: every null draws a value from a finite support,
and the probability of an answer tuple is the probability that its
lineage condition holds.  Two model classes cover the standard
probabilistic-database representations (tuple-independent tables and
block-independent-disjoint / x-tuple tables both encode into them):

* **independent nulls** — each null draws from its own finite
  distribution, independently of every other null;
* **exclusive blocks** (:class:`ExclusiveBlock`) — a group of nulls
  jointly draws one of a list of mutually exclusive *alternatives*
  (joint assignments), the pc-table analogue of an x-tuple block.

Distinct groups (an independent null is its own group) are mutually
independent — the factorization the decomposition evaluator in
:mod:`repro.prob.confidence` exploits.  Everything is validated at
construction: supports must be constants, probabilities must be positive
and sum to one per group, and no null may belong to two groups.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..datamodel.valuation import Valuation
from ..datamodel.values import Null, is_null
from ..resilience import InvalidRequestError

#: Tolerance for "the probabilities of a group sum to one".
_SUM_TOLERANCE = 1e-9

#: One joint assignment of a group with its probability.
Outcome = Tuple[Dict[Null, Any], float]


def _check_probability(p: Any, what: str) -> float:
    if not isinstance(p, (int, float)) or isinstance(p, bool):
        raise InvalidRequestError(f"{what}: probability must be a number, got {p!r}")
    p = float(p)
    if not 0.0 < p <= 1.0:
        raise InvalidRequestError(f"{what}: probability must be in (0, 1], got {p!r}")
    return p


def _check_constant(value: Any, what: str) -> Any:
    if value is None or is_null(value):
        raise InvalidRequestError(
            f"{what}: supports must contain constants, got {value!r}"
        )
    return value


class ExclusiveBlock:
    """A correlation block: its nulls jointly draw one exclusive alternative.

    ``alternatives`` is an iterable of ``(assignment, probability)`` pairs
    where every assignment maps the *same* set of nulls to constants.
    Exactly one alternative holds per possible world, so any two
    conditions pinning the block to different alternatives are mutually
    exclusive — which is what the confidence evaluator's exclusive-OR
    rule detects.
    """

    __slots__ = ("nulls", "alternatives")

    def __init__(self, alternatives: Iterable[Tuple[Mapping[Null, Any], float]]) -> None:
        checked: List[Outcome] = []
        nulls: Optional[FrozenSet[Null]] = None
        total = 0.0
        seen: set = set()
        for assignment, probability in alternatives:
            probability = _check_probability(probability, "ExclusiveBlock")
            fixed: Dict[Null, Any] = {}
            for null, value in assignment.items():
                if not isinstance(null, Null):
                    raise InvalidRequestError(
                        f"ExclusiveBlock: assignments map nulls, got key {null!r}"
                    )
                fixed[null] = _check_constant(value, "ExclusiveBlock")
            if not fixed:
                raise InvalidRequestError("ExclusiveBlock: empty alternative assignment")
            covered = frozenset(fixed)
            if nulls is None:
                nulls = covered
            elif covered != nulls:
                raise InvalidRequestError(
                    "ExclusiveBlock: every alternative must assign the same nulls "
                    f"({sorted(n.name for n in nulls)} vs {sorted(n.name for n in covered)})"
                )
            key = frozenset(fixed.items())
            if key in seen:
                raise InvalidRequestError(
                    f"ExclusiveBlock: duplicate alternative {dict(fixed)!r}"
                )
            seen.add(key)
            total += probability
            checked.append((fixed, probability))
        if nulls is None:
            raise InvalidRequestError("ExclusiveBlock: at least one alternative required")
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise InvalidRequestError(
                f"ExclusiveBlock: alternative probabilities sum to {total!r}, not 1"
            )
        self.nulls: FrozenSet[Null] = nulls
        self.alternatives: Tuple[Outcome, ...] = tuple(checked)

    def __repr__(self) -> str:
        names = ", ".join(sorted(n.name for n in self.nulls))
        return f"ExclusiveBlock({{{names}}}, {len(self.alternatives)} alternatives)"


class ProbabilityModel:
    """Probabilities for the condition atoms of a pc-table.

    Parameters
    ----------
    independent:
        ``{null: {value: probability}}`` — each null draws from its own
        distribution, independently of every other group.
    blocks:
        :class:`ExclusiveBlock` instances for correlated nulls.

    A null may appear in at most one place.  The model's *groups* are the
    units of independence: each independent null is a singleton group,
    each block is one group, and distinct groups never correlate.
    """

    __slots__ = ("_outcomes", "_group", "_rep", "_marginals", "_nulls")

    def __init__(
        self,
        independent: Optional[Mapping[Null, Mapping[Any, float]]] = None,
        blocks: Iterable[ExclusiveBlock] = (),
    ) -> None:
        # representative null -> tuple of (assignment, probability)
        self._outcomes: Dict[Null, Tuple[Outcome, ...]] = {}
        # null -> frozenset of the nulls it correlates with (its group)
        self._group: Dict[Null, FrozenSet[Null]] = {}
        # null -> the group's representative (smallest name; stable key)
        self._rep: Dict[Null, Null] = {}
        self._marginals: Dict[Null, Dict[Any, float]] = {}

        for null, distribution in (independent or {}).items():
            if not isinstance(null, Null):
                raise InvalidRequestError(
                    f"ProbabilityModel: independent= maps nulls, got key {null!r}"
                )
            self._claim(null)
            outcomes: List[Outcome] = []
            marginal: Dict[Any, float] = {}
            total = 0.0
            for value, probability in distribution.items():
                value = _check_constant(value, f"distribution of {null}")
                probability = _check_probability(probability, f"distribution of {null}")
                if value in marginal:
                    raise InvalidRequestError(
                        f"distribution of {null}: duplicate value {value!r}"
                    )
                marginal[value] = probability
                total += probability
                outcomes.append(({null: value}, probability))
            if not outcomes:
                raise InvalidRequestError(f"distribution of {null} is empty")
            if abs(total - 1.0) > _SUM_TOLERANCE:
                raise InvalidRequestError(
                    f"distribution of {null} sums to {total!r}, not 1"
                )
            self._group[null] = frozenset((null,))
            self._rep[null] = null
            self._outcomes[null] = tuple(outcomes)
            self._marginals[null] = marginal

        for block in blocks:
            if not isinstance(block, ExclusiveBlock):
                raise InvalidRequestError(
                    f"ProbabilityModel: blocks= expects ExclusiveBlock, got {block!r}"
                )
            for null in block.nulls:
                self._claim(null)
            rep = min(block.nulls, key=lambda n: n.name)
            group = block.nulls
            for null in group:
                self._group[null] = group
                self._rep[null] = rep
            self._outcomes[rep] = block.alternatives
            for null in group:
                marginal: Dict[Any, float] = {}
                for assignment, probability in block.alternatives:
                    value = assignment[null]
                    marginal[value] = marginal.get(value, 0.0) + probability
                self._marginals[null] = marginal

        self._nulls: FrozenSet[Null] = frozenset(self._group)
        if not self._nulls:
            raise InvalidRequestError(
                "ProbabilityModel: at least one null distribution required"
            )

    def _claim(self, null: Null) -> None:
        if null in self._group:
            raise InvalidRequestError(
                f"ProbabilityModel: {null} appears in more than one distribution/block"
            )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def nulls(self) -> FrozenSet[Null]:
        """Every null the model assigns a probability to."""
        return self._nulls

    def covers(self, nulls: Iterable[Null]) -> bool:
        """Whether every null in ``nulls`` is modeled."""
        return all(n in self._group for n in nulls)

    def require(self, nulls: Iterable[Null]) -> None:
        """Raise :class:`InvalidRequestError` on any unmodeled null."""
        missing = sorted((n.name for n in nulls if n not in self._group))
        if missing:
            raise InvalidRequestError(
                f"no probability distribution for nulls {missing}; "
                "extend the ProbabilityModel to cover the database"
            )

    def group(self, null: Null) -> FrozenSet[Null]:
        """The correlation group of ``null`` (a singleton when independent)."""
        try:
            return self._group[null]
        except KeyError:
            raise InvalidRequestError(f"unmodeled null {null}") from None

    def representative(self, null: Null) -> Null:
        """The canonical member of ``null``'s group (stable across calls)."""
        try:
            return self._rep[null]
        except KeyError:
            raise InvalidRequestError(f"unmodeled null {null}") from None

    def outcomes(self, null: Null) -> Tuple[Outcome, ...]:
        """The joint ``(assignment, probability)`` outcomes of ``null``'s group."""
        return self._outcomes[self.representative(null)]

    def marginal(self, null: Null) -> Mapping[Any, float]:
        """``{value: probability}`` for one null (summed over its block)."""
        try:
            return self._marginals[null]
        except KeyError:
            raise InvalidRequestError(f"unmodeled null {null}") from None

    def support(self, null: Null) -> Tuple[Any, ...]:
        """The values ``null`` can take (in distribution order)."""
        return tuple(self.marginal(null))

    # ------------------------------------------------------------------
    # joint enumeration, sampling, world probabilities
    # ------------------------------------------------------------------
    def joint_outcomes(self, nulls: Iterable[Null]) -> Iterator[Outcome]:
        """Joint outcomes of every group touching ``nulls`` (product order).

        The assignments cover the *full* groups involved, which may be a
        superset of ``nulls`` when a block is touched partially.
        """
        reps = sorted({self.representative(n) for n in nulls}, key=lambda n: n.name)
        if not reps:
            yield {}, 1.0
            return
        for combo in itertools.product(*(self._outcomes[rep] for rep in reps)):
            assignment: Dict[Null, Any] = {}
            probability = 1.0
            for part, p in combo:
                assignment.update(part)
                probability *= p
            yield assignment, probability

    def sample(self, rng: Any) -> Valuation:
        """One random valuation of every modeled null (``rng``: ``random.Random``)."""
        assignment: Dict[Null, Any] = {}
        for rep, outcomes in self._outcomes.items():
            roll = rng.random()
            acc = 0.0
            chosen = outcomes[-1][0]
            for part, p in outcomes:
                acc += p
                if roll < acc:
                    chosen = part
                    break
            assignment.update(chosen)
        return Valuation(assignment)

    def world_probability(self, valuation: Valuation) -> float:
        """The probability of the world ``valuation`` under this model.

        The valuation must cover every modeled null; the probability is
        the product over groups of the matching alternative (zero when a
        group's joint assignment matches no alternative).
        """
        probability = 1.0
        for rep, outcomes in self._outcomes.items():
            group_p = 0.0
            for assignment, p in outcomes:
                if all(valuation(null) == value for null, value in assignment.items()):
                    group_p = p
                    break
            if group_p == 0.0:
                return 0.0
            probability *= group_p
        return probability

    def stats(self) -> Dict[str, int]:
        """Model shape: null/group/outcome counts (diagnostics, explain())."""
        groups = len(self._outcomes)
        blocks = sum(1 for rep in self._outcomes if len(self._group[rep]) > 1)
        return {
            "nulls": len(self._nulls),
            "groups": groups,
            "blocks": blocks,
            "outcomes": sum(len(o) for o in self._outcomes.values()),
        }

    def __repr__(self) -> str:
        shape = self.stats()
        return (
            f"ProbabilityModel({shape['nulls']} nulls, {shape['groups']} groups, "
            f"{shape['blocks']} exclusive blocks)"
        )
