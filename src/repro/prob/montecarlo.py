"""Monte Carlo confidence estimation — the budget-degradation fallback.

When exact decomposition (:mod:`repro.prob.confidence`) blows its
budget, callers fall back to sampling: draw worlds from the model,
evaluate the condition in each, report the sample mean with a Wilson
score interval.  The result is a
:class:`~repro.resilience.ConfidenceInterval` — flagged ``partial`` like
every degraded answer in this repo, so code must opt in to treating an
estimate as a probability.

Sampling never consults the budget: a fixed sample count is O(samples ·
|condition|) with no exponential tail, which is the point of degrading
to it.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..datamodel.conditional import Condition
from ..obs import span
from ..resilience import ConfidenceInterval, InvalidRequestError
from .model import ProbabilityModel

__all__ = ["monte_carlo_confidence", "wilson_interval"]

#: z-score of the two-sided 95% normal quantile.
_Z_95 = 1.959963984540054


def wilson_interval(
    successes: int, samples: int, z: float = _Z_95
) -> "tuple[float, float]":
    """The Wilson score interval for ``successes``/``samples``.

    Preferred over the naive normal interval because it stays inside
    ``[0, 1]`` and behaves at the extremes (0 or all successes).
    """
    if samples <= 0:
        return 0.0, 1.0
    n = float(samples)
    p = successes / n
    denom = 1.0 + z * z / n
    center = (p + z * z / (2.0 * n)) / denom
    spread = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    # Clamp against the point estimate too: at 0 or n successes the
    # float arithmetic can land the bound a ulp inside p.
    return max(0.0, min(p, center - spread)), min(1.0, max(p, center + spread))


def monte_carlo_confidence(
    condition: Condition,
    model: ProbabilityModel,
    samples: int = 10_000,
    seed: Optional[int] = None,
    given: Optional[Condition] = None,
    verdict: str = "monte-carlo estimate",
    resource: Optional[str] = None,
) -> ConfidenceInterval:
    """Estimate ``P(condition)`` (or ``P(condition | given)``) by sampling.

    With ``given``, rejection sampling estimates the conditional
    probability from the accepted worlds; the interval then reflects the
    accepted sample count, so a very selective constraint widens it
    honestly.  Raises :class:`~repro.resilience.InvalidRequestError` when
    every sample is rejected — the constraint is (near-)unsatisfiable and
    no estimate can be made.
    """
    if samples < 1:
        raise InvalidRequestError(f"monte carlo needs >= 1 sample, got {samples!r}")
    rng = random.Random(seed)
    successes = 0
    accepted = 0
    with span("prob.montecarlo", samples=samples) as sp:
        for _ in range(samples):
            valuation = model.sample(rng)
            if given is not None and not given.evaluate(valuation):
                continue
            accepted += 1
            if condition.evaluate(valuation):
                successes += 1
        if accepted == 0:
            raise InvalidRequestError(
                "monte carlo conditioning rejected every sample; "
                "the constraint has (near-)zero probability"
            )
        low, high = wilson_interval(successes, accepted)
        estimate = successes / accepted
        sp.set(estimate=estimate, accepted=accepted)
    return ConfidenceInterval(
        estimate=estimate,
        low=low,
        high=high,
        samples=accepted,
        verdict=verdict,
        resource=resource,
    )
