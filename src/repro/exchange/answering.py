"""Certain answers in data exchange.

In data exchange the certain answers of a query ``Q`` over the target
schema, for a source instance ``S`` and mapping ``M``, are defined as the
intersection of ``Q(T)`` over all *solutions* ``T`` (target instances that
together with ``S`` satisfy ``M``).  The classical result (Fagin et al.,
cited as [29] in the paper) is that for unions of conjunctive queries this
equals naive evaluation of ``Q`` over the canonical solution followed by
dropping tuples with nulls — the same eq. (4) recipe the paper builds on.
For queries with negation, naive evaluation over the canonical solution is
*not* correct, which experiment E21 demonstrates.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from ..algebra.ast import RAExpression
from ..core.answers import enumeration_strategy, naive_strategy
from ..core.naive_evaluation import evaluate_query as _evaluate_query
from ..core.naive_evaluation import naive_evaluation_applies
from ..datamodel import Database, Relation
from ..logic.formulas import FOQuery
from .chase import canonical_solution
from .mappings import SchemaMapping

Query = Union[RAExpression, FOQuery]


def certain_answers_exchange(
    mapping: SchemaMapping,
    source: Database,
    query: Query,
    method: str = "naive",
    semantics: str = "owa",
    max_extra_facts: int = 1,
) -> Relation:
    """Certain answers of a target query in a data-exchange setting.

    Parameters
    ----------
    method:
        ``'naive'`` — chase, evaluate naively, drop null tuples (correct for
        UCQs, the standard practice in exchange systems);
        ``'enumeration'`` — chase, then enumerate worlds of the canonical
        solution under ``semantics`` and intersect (ground truth for small
        instances — solutions are open-world objects, hence the default
        ``'owa'``).
    """
    solution = canonical_solution(mapping, source)
    if method == "naive":
        return naive_strategy(query, solution, _evaluate_query)
    if method == "enumeration":
        return enumeration_strategy(
            query,
            solution,
            _evaluate_query,
            semantics=semantics,
            max_extra_facts=max_extra_facts,
        )
    raise ValueError(f"unknown method {method!r}; expected 'naive' or 'enumeration'")


def naive_exchange_answer_is_guaranteed(query: Query) -> bool:
    """Is the naive recipe guaranteed correct for this query (i.e. is it a UCQ)?"""
    verdict = naive_evaluation_applies(query, semantics="owa")
    return verdict.applies
