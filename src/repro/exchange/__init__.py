"""Data exchange: schema mappings, the chase, and certain answers over targets.

This package provides the substrate behind the paper's motivating example
for marked nulls (Section 1): source-to-target tgds, the naive/oblivious
and restricted chase producing canonical solutions with marked nulls, and
certain-answer query answering over the exchanged data.
"""

from .answering import certain_answers_exchange, naive_exchange_answer_is_guaranteed
from .chase import ChaseResult, canonical_solution, chase, core_solution
from .mappings import MappingAtom, SchemaMapping, TGD, order_preferences_mapping

__all__ = [
    "ChaseResult",
    "MappingAtom",
    "SchemaMapping",
    "TGD",
    "canonical_solution",
    "certain_answers_exchange",
    "chase",
    "core_solution",
    "naive_exchange_answer_is_guaranteed",
    "order_preferences_mapping",
]
