"""The (naive) chase: executing a schema mapping to build a canonical solution.

Given a schema mapping and a source instance, the chase fires every tgd on
every match of its body and adds the corresponding head facts to the
target, instantiating each existential variable of each trigger with a
*fresh marked null*.  The result is the canonical (universal) solution of
data exchange: a naive database over the target schema whose certain
answers for unions of conjunctive queries can be computed by naive
evaluation (the connection the paper draws between the exchange literature
and its own framework).

Two chase flavours are provided:

* the **oblivious** chase fires every trigger exactly once regardless of
  whether the head is already satisfied — this is what the paper's Section
  1 example describes (each ``Order`` tuple generates its own ``⊥``);
* the **restricted** chase skips a trigger when the head can already be
  satisfied in the current target, giving a smaller (sometimes core-equal)
  solution.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import Database, Null
from ..datamodel.database import Fact
from ..datamodel.values import is_null
from ..homomorphisms import core as core_of
from ..logic.formulas import Variable, is_variable
from ..resilience import active_budget
from .mappings import MappingAtom, SchemaMapping, TGD


class ChaseResult:
    """The outcome of chasing a source instance with a mapping."""

    def __init__(
        self,
        target: Database,
        triggers_fired: int,
        nulls_introduced: int,
    ) -> None:
        self.target = target
        self.triggers_fired = triggers_fired
        self.nulls_introduced = nulls_introduced

    def __repr__(self) -> str:
        return (
            f"ChaseResult(facts={self.target.size()}, triggers={self.triggers_fired}, "
            f"nulls={self.nulls_introduced})"
        )


def _match_atoms(
    atoms: Sequence[MappingAtom],
    database: Database,
    index: int,
    assignment: Dict[Variable, Any],
) -> Iterator[Dict[Variable, Any]]:
    """Enumerate assignments of body variables matching the atoms in ``database``."""
    if index == len(atoms):
        yield dict(assignment)
        return
    atom = atoms[index]
    relation = database.relation(atom.relation)
    for row in relation:
        extension: Dict[Variable, Any] = {}
        consistent = True
        for term, value in zip(atom.terms, row):
            if is_variable(term):
                bound = assignment.get(term, extension.get(term, _UNBOUND))
                if bound is _UNBOUND:
                    extension[term] = value
                elif bound != value:
                    consistent = False
                    break
            elif term != value:
                consistent = False
                break
        if not consistent:
            continue
        assignment.update(extension)
        yield from _match_atoms(atoms, database, index + 1, assignment)
        for key in extension:
            del assignment[key]


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _head_facts(
    tgd: TGD,
    assignment: Dict[Variable, Any],
    null_counter: List[int],
) -> Tuple[List[Fact], int]:
    """Instantiate the head of a tgd, inventing fresh nulls for existential variables."""
    local: Dict[Variable, Null] = {}
    introduced = 0
    facts: List[Fact] = []
    for atom in tgd.head:
        values = []
        for term in atom.terms:
            if is_variable(term):
                if term in assignment:
                    values.append(assignment[term])
                else:
                    if term not in local:
                        null_counter[0] += 1
                        local[term] = Null(f"{tgd.name}_{term.name}_{null_counter[0]}")
                        introduced += 1
                    values.append(local[term])
            else:
                values.append(term)
        facts.append((atom.relation, tuple(values)))
    return facts, introduced


def _head_satisfied(tgd: TGD, assignment: Dict[Variable, Any], target: Database) -> bool:
    """Is the head already satisfiable in ``target`` extending ``assignment``?"""
    head_atoms = list(tgd.head)

    def backtrack(index: int, extended: Dict[Variable, Any]) -> bool:
        if index == len(head_atoms):
            return True
        atom = head_atoms[index]
        relation = target.relation(atom.relation)
        for row in relation:
            extension: Dict[Variable, Any] = {}
            consistent = True
            for term, value in zip(atom.terms, row):
                if is_variable(term):
                    bound = extended.get(term, extension.get(term, _UNBOUND))
                    if bound is _UNBOUND:
                        extension[term] = value
                    elif bound != value:
                        consistent = False
                        break
                elif term != value:
                    consistent = False
                    break
            if not consistent:
                continue
            extended.update(extension)
            if backtrack(index + 1, extended):
                return True
            for key in extension:
                del extended[key]
        return False

    return backtrack(0, dict(assignment))


def chase(
    mapping: SchemaMapping,
    source: Database,
    oblivious: bool = True,
) -> ChaseResult:
    """Chase ``source`` with ``mapping`` and return the canonical target instance.

    Parameters
    ----------
    oblivious:
        When ``True`` (default) every trigger fires; when ``False`` the
        restricted chase skips triggers whose head is already satisfied.
    """
    if source.schema != mapping.source_schema:
        # Allow sources declaring extra relations as long as the mapped ones exist.
        for tgd in mapping.tgds:
            for atom in tgd.body:
                if atom.relation not in source.schema:
                    raise ValueError(
                        f"source instance lacks relation {atom.relation!r} required by {tgd.name}"
                    )

    target = Database.empty(mapping.target_schema)
    null_counter = [0]
    triggers = 0
    nulls_introduced = 0
    new_facts: List[Fact] = []

    state = active_budget()
    for tgd in mapping.tgds:
        body = list(tgd.body)
        for assignment in _match_atoms(body, source, 0, {}):
            if state is not None:
                state.check()
            if not oblivious and _head_satisfied(tgd, assignment, target.add_facts(new_facts)):
                continue
            facts, introduced = _head_facts(tgd, assignment, null_counter)
            new_facts.extend(facts)
            triggers += 1
            nulls_introduced += introduced
            if not oblivious:
                target = target.add_facts(facts)
                new_facts = []

    if oblivious:
        target = target.add_facts(new_facts)
    return ChaseResult(target, triggers, nulls_introduced)


def canonical_solution(mapping: SchemaMapping, source: Database) -> Database:
    """The canonical universal solution (oblivious chase result)."""
    return chase(mapping, source, oblivious=True).target


def core_solution(
    mapping: SchemaMapping, source: Database, algorithm: str = "block"
) -> Database:
    """The core of the canonical solution — the smallest universal solution.

    The default block-by-block algorithm exploits that chase results have
    blocks bounded by the mapping (each trigger's head shares nulls only
    within itself), making core computation near-linear in the source;
    ``algorithm="greedy"`` keeps the seed's whole-instance oracle.
    """
    return core_of(canonical_solution(mapping, source), algorithm=algorithm)
