"""Semantics of incomplete databases: OWA, CWA, weak CWA.

This package provides:

* possible-world enumeration over finite constant domains
  (:mod:`repro.semantics.worlds`);
* membership tests ``D' ∈ [[D]]_*`` via homomorphism search
  (:mod:`repro.semantics.membership`); and
* brute-force, intersection-based certain answers used as ground truth
  throughout the test and benchmark suites
  (:mod:`repro.semantics.certain`).
"""

from .certain import (
    Evaluator,
    answer_space,
    certain_answers_enumeration,
    certain_boolean,
    enumerate_certain_answers,
    enumerate_certain_boolean,
    enumerate_possible_answers,
    enumerate_possible_boolean,
    possible_answers_enumeration,
    possible_boolean,
)
from .membership import SEMANTICS, in_cwa, in_owa, in_wcwa, is_member
from .worlds import (
    count_cwa_worlds,
    cwa_worlds,
    default_domain,
    owa_worlds,
    wcwa_worlds,
    worlds,
)

__all__ = [
    "Evaluator",
    "SEMANTICS",
    "answer_space",
    "certain_answers_enumeration",
    "certain_boolean",
    "count_cwa_worlds",
    "cwa_worlds",
    "default_domain",
    "enumerate_certain_answers",
    "enumerate_certain_boolean",
    "enumerate_possible_answers",
    "enumerate_possible_boolean",
    "in_cwa",
    "in_owa",
    "in_wcwa",
    "is_member",
    "owa_worlds",
    "possible_answers_enumeration",
    "possible_boolean",
    "wcwa_worlds",
    "worlds",
]
