"""Possible-world enumeration for incomplete databases.

The paper's semantics functions map an incomplete database to an (in
general infinite) set of complete databases::

    [[D]]_cwa = { v(D)      | v a valuation }
    [[D]]_owa = { D' ⊇ v(D) | v a valuation }

Const is countably infinite, so neither set can be enumerated literally.
For the query languages studied in the paper, however, certain answers are
insensitive to the identity of constants outside the query and the
database (genericity, Section 5/6).  The standard consequence — and the
substitution documented in DESIGN.md §6 — is that it suffices to let nulls
range over the *active domain extended with a few fresh constants* (at
least as many as there are nulls, so that "all distinct and new" is among
the enumerated valuations) and, under OWA, to bound the number of extra
facts added over that finite domain.  The helpers here implement exactly
that, with the finite domain and OWA fact bound exposed as parameters so
experiments can cross-check two different pool sizes.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import ConstantPool, Database, Null, Relation, Valuation, enumerate_valuations
from ..datamodel.database import Fact


def default_domain(
    database: Database,
    extra_constants: Optional[int] = None,
    constants: Iterable[Any] = (),
    prefix: str = "w",
) -> List[Any]:
    """A finite constant domain for valuation enumeration.

    The domain consists of the constants of ``database``, any explicitly
    supplied ``constants`` (e.g. constants mentioned by the query), and
    ``extra_constants`` fresh constants.  When ``extra_constants`` is not
    given it defaults to ``number of nulls + 1``: the valuation mapping all
    nulls to pairwise-distinct fresh values is then enumerated, and every
    null always has at least two candidate values, so tuples built from a
    single unavoidable fresh constant cannot masquerade as certain answers.
    """
    base: List[Any] = sorted(
        set(database.constants()) | {c for c in constants}, key=lambda value: (str(type(value)), str(value))
    )
    if extra_constants is None:
        extra_constants = len(database.nulls()) + 1
    pool = ConstantPool(forbidden=base, prefix=prefix)
    return base + pool.take(extra_constants)


def cwa_worlds(
    database: Database,
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Iterator[Database]:
    """Enumerate ``{ v(D) | v : Null(D) → domain }`` (the finite CWA approximation).

    Every yielded database is complete.  Duplicates (different valuations
    producing the same world) are suppressed.
    """
    if domain is None:
        domain = default_domain(database, extra_constants=extra_constants)
    seen: Set[Database] = set()
    for valuation in enumerate_valuations(database.nulls(), domain):
        world = valuation.apply(database)
        if world not in seen:
            seen.add(world)
            yield world


def owa_worlds(
    database: Database,
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Iterator[Database]:
    """Enumerate a finite approximation of ``[[D]]_owa``.

    Each world is ``v(D)`` extended with at most ``max_extra_facts``
    additional facts whose values are drawn from ``domain``.  The
    approximation is exhaustive relative to the chosen domain and fact
    bound; experiments that rely on OWA enumeration state explicitly why
    the bound suffices for the query under test (e.g. monotone queries need
    ``max_extra_facts = 0``).
    """
    if domain is None:
        domain = default_domain(database, extra_constants=extra_constants)
    extra_fact_pool = list(_all_facts(database, domain))
    seen: Set[Database] = set()
    for base_world in cwa_worlds(database, domain):
        for count in range(0, max_extra_facts + 1):
            for extra in itertools.combinations(extra_fact_pool, count):
                world = base_world.add_facts(extra)
                if world not in seen:
                    seen.add(world)
                    yield world


def _all_facts(database: Database, domain: Sequence[Any]) -> Iterator[Fact]:
    """All facts over ``database``'s schema with values drawn from ``domain``."""
    for rel_schema in database.schema:
        for combo in itertools.product(domain, repeat=rel_schema.arity):
            yield (rel_schema.name, tuple(combo))


def wcwa_worlds(
    database: Database,
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Iterator[Database]:
    """Enumerate a finite approximation of the weak-CWA semantics.

    Worlds are ``v(D)`` extended with at most ``max_extra_facts`` facts whose
    values are drawn from the *world's own* active domain (Reiter's weak
    closed-world assumption: new tuples yes, new values no).
    """
    if domain is None:
        domain = default_domain(database, extra_constants=extra_constants)
    seen: Set[Database] = set()
    for base_world in cwa_worlds(database, domain):
        world_domain = sorted(base_world.active_domain(), key=lambda v: (str(type(v)), str(v)))
        extra_fact_pool = list(_all_facts(base_world, world_domain))
        for count in range(0, max_extra_facts + 1):
            for extra in itertools.combinations(extra_fact_pool, count):
                world = base_world.add_facts(extra)
                if world not in seen:
                    seen.add(world)
                    yield world


def count_cwa_worlds(database: Database, domain: Sequence[Any]) -> int:
    """Upper bound on the number of worlds enumerated by :func:`cwa_worlds`."""
    return max(1, len(domain)) ** len(database.nulls())


def worlds(
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Iterator[Database]:
    """Dispatch to :func:`cwa_worlds`, :func:`owa_worlds` or :func:`wcwa_worlds`."""
    if semantics == "cwa":
        return cwa_worlds(database, domain, extra_constants)
    if semantics == "owa":
        return owa_worlds(database, domain, extra_constants, max_extra_facts)
    if semantics == "wcwa":
        return wcwa_worlds(database, domain, extra_constants, max_extra_facts)
    raise ValueError(f"unknown semantics {semantics!r}; expected 'cwa', 'owa' or 'wcwa'")
