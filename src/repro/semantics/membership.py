"""Membership tests for the OWA / CWA / weak-CWA semantics.

Given an incomplete database ``D`` and a *complete* database ``D'`` these
functions decide whether ``D' ∈ [[D]]_*``:

* ``D' ∈ [[D]]_cwa``  iff ``D' = v(D)`` for some valuation ``v`` — equivalently,
  iff there is a strong onto homomorphism ``D → D'``;
* ``D' ∈ [[D]]_owa``  iff ``D' ⊇ v(D)`` for some valuation ``v`` — equivalently,
  iff there is a homomorphism ``D → D'``;
* the weak CWA of Reiter [59] allows adding tuples as long as no new
  active-domain elements appear: ``D' ∈ [[D]]_wcwa`` iff ``D' ⊇ v(D)`` and
  ``adom(D') = adom(v(D))`` for some valuation ``v`` — equivalently, iff
  there is an onto (on active domains) homomorphism ``D → D'``.

Because the target ``D'`` is complete, every homomorphism into it maps
nulls to constants, i.e. *is* a valuation; the homomorphism and valuation
formulations therefore coincide and we reuse the homomorphism search.
"""

from __future__ import annotations

from ..datamodel import Database
from ..homomorphisms import (
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
)

SEMANTICS = ("owa", "cwa", "wcwa")
"""The semantics names understood by :func:`is_member`."""


def _check_complete(world: Database) -> None:
    if not world.is_complete():
        raise ValueError(
            "membership is defined for complete databases on the right-hand side; "
            f"got a database with nulls: {world!r}"
        )


def in_cwa(database: Database, world: Database) -> bool:
    """``world ∈ [[database]]_cwa``."""
    _check_complete(world)
    return exists_strong_onto_homomorphism(database, world)


def in_owa(database: Database, world: Database) -> bool:
    """``world ∈ [[database]]_owa``."""
    _check_complete(world)
    return exists_homomorphism(database, world)


def in_wcwa(database: Database, world: Database) -> bool:
    """``world ∈ [[database]]_wcwa`` (weak CWA: no new active-domain values)."""
    _check_complete(world)
    return exists_onto_homomorphism(database, world)


def is_member(database: Database, world: Database, semantics: str = "cwa") -> bool:
    """Dispatch membership by semantics name (``'owa'``, ``'cwa'`` or ``'wcwa'``)."""
    if semantics == "cwa":
        return in_cwa(database, world)
    if semantics == "owa":
        return in_owa(database, world)
    if semantics == "wcwa":
        return in_wcwa(database, world)
    raise ValueError(f"unknown semantics {semantics!r}; expected one of {SEMANTICS}")
