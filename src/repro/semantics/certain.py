"""Brute-force certain answers by possible-world enumeration.

This module implements the classical, intersection-based definition of
certain answers (paper, eq. (1))::

    certain(Q, D) = ⋂ { Q(D') | D' ∈ [[D]] }

directly, by enumerating the (finitely approximated) set of worlds from
:mod:`repro.semantics.worlds` and intersecting the query answers.  It is
deliberately naive: it serves as the *ground truth* against which the
efficient methods (naive evaluation, ``RA_cwa`` evaluation, c-table
algebra) are validated, and as the "expensive" side of the complexity-shape
benchmarks.  Its cost is exponential in the number of nulls.

Two properties this module guarantees beyond the definition:

* **Deterministic total order.**  The world enumerators visit worlds in a
  fixed order (nulls sorted by name, domains sorted, extra-fact pools in
  schema order — see :mod:`repro.semantics.worlds`), and the ``workers=``
  fan-out consumes chunk results strictly in submission order.  A plain
  count of consumed worlds is therefore a valid *checkpoint*: an
  interrupted enumeration can resume by skipping that many worlds
  (``resume=`` below, carried by
  :class:`~repro.resilience.ResumeToken`).
* **Fault containment.**  With ``workers=``, children that die
  (``BrokenProcessPool``), hang (heartbeat timeout) or fail degrade the
  run to a sequential re-run of the affected chunks; answers stay
  identical to ``workers=None``.
"""

from __future__ import annotations

import contextlib
import itertools
import pickle
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .._deprecation import warn_deprecated as _warn_deprecated
from ..datamodel import Database, Relation
from ..datamodel.relations import Row
from ..datamodel.schema import RelationSchema
from ..obs.metrics import MetricsRegistry, current_metrics
from ..obs.trace import Tracer, current_tracer, obs_scope, serialize_spans
from ..resilience import (
    BudgetExceeded,
    QueryCancelled,
    ResumeToken,
    WorkerPoolError,
    active_budget,
)
from .worlds import cwa_worlds, owa_worlds, worlds

Evaluator = Callable[[Database], Relation]
"""A query, abstractly: a function from complete databases to relations."""

#: Worlds handed to each worker task; large enough to amortize submission
#: overhead, small enough to keep all workers busy on modest world counts.
_CHUNK_SIZE = 16

#: How long the parent waits on one chunk result before declaring the
#: child *hung* and re-running the chunk sequentially.  A chunk is
#: ``_CHUNK_SIZE`` single-world query evaluations — 30 s of silence means
#: a deadlocked or livelocked child, not a slow one.  An armed deadline
#: always tightens this bound.
_DEFAULT_HEARTBEAT = 30.0


def _chunks(iterable: Iterable[Any], size: int) -> Iterable[List[Any]]:
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _can_pickle(value: Any) -> bool:
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 - any pickling failure means "sequential"
        return False
    return True


#: Cancellation flag installed in worker children by :func:`_pool_initializer`.
#: ``multiprocessing`` synchronization primitives cannot travel as task
#: arguments (they only pickle during process inheritance), so the shared
#: Event arrives at executor construction time and lands in this module
#: global; the chunk tasks poll it between worlds.  ``None`` — the per-call
#: pools of the deprecated shims, and the sequential path — means "no
#: cross-process cancellation", which matches their historical behavior.
_child_cancel_event: Optional[Any] = None


def _pool_initializer(cancel_event: Any) -> None:
    """Executor ``initializer``: plant the parent's cancel Event in the child."""
    global _child_cancel_event
    _child_cancel_event = cancel_event


def _check_child_cancelled() -> None:
    event = _child_cancel_event
    if event is not None and event.is_set():
        raise QueryCancelled("worker chunk cancelled by Session.cancel()")


def _observed_chunk(
    body: Callable[[], Any], observe: bool
) -> Tuple[Any, Optional[Tuple[List[dict], dict]]]:
    """Run a chunk body, optionally under fresh local obs instruments.

    ``observe=True`` is how worker *children* trace: they cannot share
    the parent's sink or registry across the process boundary, so the
    chunk runs under a local ring-buffer :class:`Tracer` and a local
    :class:`MetricsRegistry`, and the serialized spans + counter deltas
    travel back with the result (both picklable).  The parent absorbs
    them in :func:`_windowed_chunk_results`.
    """
    if not observe:
        return body(), None
    tracer = Tracer()
    registry = MetricsRegistry()
    with obs_scope(tracer, registry):
        payload = body()
    return payload, (serialize_spans(tracer), registry.counters())


def _intersect_chunk(
    evaluate: Evaluator, chunk: List[Database], observe: bool = False
) -> Tuple[Tuple[Optional[RelationSchema], Optional[Set[Row]]], Any]:
    """Worker task: intersect the query answers over a chunk of worlds.

    Checks the shared cancel Event between worlds, so the cancellation
    latency of a ``workers=`` fan-out is bounded by one world's
    evaluation, not by a whole chunk (``_CHUNK_SIZE`` worlds).
    """

    def body() -> Tuple[Optional[RelationSchema], Optional[Set[Row]]]:
        registry = current_metrics()
        tracer = current_tracer()
        schema: Optional[RelationSchema] = None
        certain: Optional[Set[Row]] = None
        for world in chunk:
            _check_child_cancelled()
            if tracer is not None:
                with tracer.span("world.evaluate"):
                    answer = evaluate(world)
            else:
                answer = evaluate(world)
            if registry is not None:
                registry.count("worlds.evaluated")
            if schema is None:
                schema = answer.schema
            if certain is None:
                certain = set(answer.rows)
            else:
                certain &= answer.rows
        return schema, certain

    return _observed_chunk(body, observe)


def _all_hold_chunk(
    evaluate: Callable[[Database], bool], chunk: List[Database], observe: bool = False
) -> Tuple[bool, Any]:
    """Worker task: ``True`` iff the Boolean query holds in every chunk world."""

    def body() -> bool:
        registry = current_metrics()
        tracer = current_tracer()
        result = True
        for world in chunk:
            _check_child_cancelled()
            if tracer is not None:
                with tracer.span("world.evaluate"):
                    holds = evaluate(world)
            else:
                holds = evaluate(world)
            if registry is not None:
                registry.count("worlds.evaluated")
            if not holds:
                result = False
                break
        return result

    return _observed_chunk(body, observe)


def _run_chunk_locally(task: Callable[..., Any], evaluate: Any, chunk: List[Database]) -> Any:
    """Re-run a failed chunk in the parent, attributing per-world failures.

    This is both the recovery path (a chunk whose child died takes the
    sequential road) and the blame path: when the failure is
    deterministic, re-running world by world identifies the culprit and
    raises :class:`WorkerPoolError` with that world attached.
    """

    def attributed(world: Database) -> Any:
        try:
            return evaluate(world)
        except Exception as error:
            raise WorkerPoolError(
                f"world evaluation failed deterministically: {error}", world=world
            ) from error

    return task(attributed, chunk)


def _windowed_chunk_results(
    pool: Any,
    task: Callable[..., Any],
    evaluate: Any,
    chunks: Iterable[List[Database]],
    window: int,
    heartbeat: Optional[float] = None,
) -> Iterator[Tuple[Any, int]]:
    """Run ``task(evaluate, chunk)`` over the pool with bounded in-flight work.

    World enumeration is exponential in the number of nulls, so the chunk
    stream must never be materialized: at most ``window`` chunks are
    submitted ahead of the consumer, and abandoning the iterator (early
    exit) leaves only that window to drain.  Results are yielded as
    ``(result, worlds_in_chunk)`` pairs, strictly in world order — that
    order is what makes the consumer's running world count a valid
    resumption checkpoint.

    Failure behavior (each future keeps its chunk alongside, so failed
    work is never lost):

    * A broken pool (child SIGKILLed, ``BrokenProcessPool`` — whether
      raised from ``submit`` or from a result) degrades the run to
      sequential: the popped chunk, every pending chunk and the
      unsubmitted remainder are re-run in the parent, *without* waiting
      on the pool's remaining futures (a broken pool's futures may never
      resolve).  Answers stay identical to ``workers=None``.
    * A chunk whose result does not arrive within ``heartbeat`` seconds
      (default :data:`_DEFAULT_HEARTBEAT`) is treated as a *hung* child —
      alive but deadlocked, which ``BrokenProcessPool`` never reports —
      and the run degrades to sequential the same way.
    * A genuine exception from a child re-runs its chunk locally too — if
      the local run succeeds the failure was child-environmental (OOM
      kill during unpickling, ...) and the result is used; if it fails
      again it raises :class:`WorkerPoolError` naming the world.
    * An armed budget bounds the wait for each result by the remaining
      deadline (tighter than the heartbeat when both apply) and counts
      worlds chunk by chunk — *after* each chunk is yielded, so a budget
      that expires mid-run still banks the chunk it just consumed (an
      interrupted-then-resumed run always makes progress; the world count
      may overshoot ``max_worlds`` by up to one chunk, as documented on
      :class:`~repro.resilience.Budget`).
    """
    window = max(2, window)
    if heartbeat is None:
        heartbeat = _DEFAULT_HEARTBEAT
    state = active_budget()
    registry = current_metrics()
    tracer = current_tracer()
    # Children trace/count into local instruments and ship the data back
    # with the result; only ask them to when someone here is listening.
    observe = registry is not None or tracer is not None
    pending: "deque" = deque()
    chunk_iter = iter(chunks)
    exhausted = False
    broken = False
    leftover: Optional[List[Database]] = None

    def emit(result: Any, chunk: List[Database]) -> Iterator[Tuple[Any, int]]:
        payload, obs = result
        if obs is not None:
            spans, counts = obs
            if tracer is not None and spans:
                chunk_span = tracer.record("enumerate.chunk", worlds=len(chunk))
                tracer.absorb(spans, chunk_span.span_id)
            if registry is not None:
                registry.merge_counts(counts)
        yield payload, len(chunk)
        if state is not None:
            state.tick_world(len(chunk))

    while True:
        while not broken and not exhausted and len(pending) < window:
            chunk = next(chunk_iter, None)
            if chunk is None:
                exhausted = True
                break
            try:
                pending.append((pool.submit(task, evaluate, chunk, observe), chunk))
            except BrokenExecutor:
                # The pool noticed a dead child at submission time; the
                # chunk must wait its turn behind the pending ones so the
                # world order (and with it the checkpoint) stays intact.
                broken = True
                leftover = chunk
        if pending:
            future, chunk = pending.popleft()
            if broken:
                # Futures of a broken/hung pool may never resolve: do not
                # wait another heartbeat per future, re-run right away.
                future.cancel()
                result = _run_chunk_locally(task, evaluate, chunk)
            else:
                timeout = heartbeat
                if state is not None:
                    remaining = state.remaining_time()
                    if remaining is not None and remaining < timeout:
                        timeout = max(0.0, remaining)
                try:
                    result = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    if state is not None:
                        remaining = state.remaining_time()
                        if remaining is not None and remaining <= 0:
                            raise BudgetExceeded(
                                "deadline expired waiting for worker results",
                                resource="deadline",
                            ) from None
                    # The deadline is fine but the heartbeat tripped: the
                    # child hung without dying.  Degrade to sequential.
                    broken = True
                    result = _run_chunk_locally(task, evaluate, chunk)
                except BrokenExecutor:
                    broken = True
                    result = _run_chunk_locally(task, evaluate, chunk)
                except (WorkerPoolError, QueryCancelled):
                    # A cancelled child is the *requested* outcome of
                    # Session.cancel(), not a chunk failure: re-running the
                    # chunk locally would make cancellation wait for the
                    # whole chunk — exactly the latency bug being fixed.
                    raise
                except Exception:
                    result = _run_chunk_locally(task, evaluate, chunk)
            yield from emit(result, chunk)
        elif leftover is not None:
            chunk, leftover = leftover, None
            yield from emit(_run_chunk_locally(task, evaluate, chunk), chunk)
        elif not exhausted:
            # broken before the stream was fully submitted: finish the
            # remaining worlds sequentially in the parent.
            for chunk in chunk_iter:
                yield from emit(_run_chunk_locally(task, evaluate, chunk), chunk)
            return
        else:
            return


def enumerate_certain_answers(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
    resume: Optional[ResumeToken] = None,
    heartbeat: Optional[float] = None,
    pool_factory: Optional[Callable[[int], Any]] = None,
    executor: Optional[Any] = None,
) -> Relation:
    """Intersection-based certain answers computed by world enumeration.

    Parameters
    ----------
    evaluate:
        The query, as a function from complete databases to relations.
    database:
        The incomplete input database.
    semantics:
        ``'cwa'`` or ``'owa'``.
    domain, extra_constants, max_extra_facts:
        Passed to the world enumerators; see :mod:`repro.semantics.worlds`.
    workers:
        When > 1, fan the per-world query evaluations out over a process
        pool in chunks — each world is an independent complete database,
        so this is embarrassingly parallel, and the engine's plan cache
        amortizes planning per worker.  Requires a picklable ``evaluate``
        (e.g. the bound ``evaluate`` method of an ``RAExpression``); a
        non-picklable query falls back to the sequential path.  Chunks
        are submitted through a bounded window (never materializing the
        exponential world stream), and an empty running intersection
        stops the enumeration after at most the in-flight window.
    resume:
        A :class:`~repro.resilience.ResumeToken` from a previous,
        budget-interrupted run over the *same* inputs: the first
        ``resume.worlds_done`` worlds are skipped (the enumeration order
        is deterministic) and the running intersection is seeded from the
        token.  Callers are responsible for checking the token's ``key``
        against the inputs — this function trusts it.
    heartbeat:
        Seconds the parent waits on one worker chunk before treating the
        child as hung and degrading to a sequential re-run (default
        :data:`_DEFAULT_HEARTBEAT`).
    pool_factory:
        Replaces ``ProcessPoolExecutor`` for the ``workers=`` fan-out —
        the injection point for pool-level chaos tests
        (:class:`~repro.backends.faults.FaultInjectingExecutor`).
    executor:
        A *live, caller-owned* pool for the ``workers=`` fan-out.  Unlike
        ``pool_factory`` (which creates a pool per call and tears it down
        on exit) the executor is used as-is and **never shut down** here —
        this is how :class:`~repro.session.Session` amortizes one warm
        ``ProcessPoolExecutor`` across ``certain()``/``boolean()`` calls
        instead of paying pool startup per call.  Ignored when ``workers``
        does not fan out; takes precedence over ``pool_factory``.

    Returns
    -------
    Relation
        The relation of tuples present in the answer over *every*
        enumerated world.  The schema is taken from the first answer.

    When an armed budget expires mid-run, the raised
    :class:`~repro.resilience.BudgetExceeded` carries a
    :class:`~repro.resilience.ResumeToken` (``error.resume_token``)
    checkpointing the worlds fully consumed, so the caller can continue
    instead of restarting.  With ``workers=`` the checkpoint is
    chunk-granular: in-flight chunks are simply re-evaluated on resume.
    """
    world_iter = worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )

    answer_schema = None
    certain: Optional[Set[Row]] = None
    done = 0
    if resume is not None:
        done = resume.worlds_done
        answer_schema = resume.schema
        certain = None if resume.intersection is None else set(resume.intersection)
        if done:
            world_iter = itertools.islice(world_iter, done, None)
        if certain is not None and not certain:
            # The interrupted run had already emptied the intersection —
            # the answer is final, no world can add rows back.
            world_iter = iter(())
    try:
        if workers is not None and workers > 1 and _can_pickle(evaluate):
            if executor is not None:
                pool_scope: Any = contextlib.nullcontext(executor)
            else:
                if pool_factory is None:
                    pool_factory = lambda n: ProcessPoolExecutor(max_workers=n)  # noqa: E731
                pool_scope = pool_factory(workers)
            with pool_scope as pool:
                for (chunk_schema, chunk_certain), chunk_worlds in _windowed_chunk_results(
                    pool,
                    _intersect_chunk,
                    evaluate,
                    _chunks(world_iter, _CHUNK_SIZE),
                    2 * workers,
                    heartbeat=heartbeat,
                ):
                    done += chunk_worlds
                    if chunk_schema is None or chunk_certain is None:
                        continue
                    if answer_schema is None:
                        answer_schema = chunk_schema
                    if certain is None:
                        certain = chunk_certain
                    else:
                        certain &= chunk_certain
                    if not certain:
                        break  # empty intersection can only stay empty
        else:
            state = active_budget()
            registry = current_metrics()
            tracer = current_tracer()
            for world in world_iter:
                if state is not None:
                    state.tick_world()
                if tracer is not None:
                    with tracer.span("world.evaluate"):
                        answer = evaluate(world)
                else:
                    answer = evaluate(world)
                if registry is not None:
                    registry.count("worlds.evaluated")
                if answer_schema is None:
                    answer_schema = answer.schema
                if certain is None:
                    certain = set(answer.rows)
                else:
                    certain &= answer.rows
                done += 1
                if not certain:
                    break
    except BudgetExceeded as error:
        # Checkpoint the worlds *fully consumed* (a world whose evaluation
        # the budget cut short is not counted and will be re-run).  The
        # running intersection is a superset of the certain answers, so it
        # travels inside the token — never as a result.
        error.resume_token = ResumeToken(
            worlds_done=done,
            schema=answer_schema,
            intersection=None if certain is None else frozenset(certain),
        )
        raise
    if answer_schema is None or certain is None:
        # No worlds at all only happens for an empty valuation domain;
        # evaluate on the database itself to obtain the answer schema.
        answer = evaluate(database.complete_part())
        return Relation(answer.schema, ())
    return Relation(answer_schema, certain)


def enumerate_possible_answers(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Relation:
    """Union-based *possible* answers (tuples appearing in at least one world)."""
    answer_schema = None
    possible: Set[Row] = set()
    state = active_budget()
    registry = current_metrics()
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        if state is not None:
            state.tick_world()
        if registry is not None:
            registry.count("worlds.evaluated")
        answer = evaluate(world)
        if answer_schema is None:
            answer_schema = answer.schema
        possible |= answer.rows
    if answer_schema is None:
        answer = evaluate(database.complete_part())
        return Relation(answer.schema, ())
    return Relation(answer_schema, possible)


def answer_space(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Set[frozenset]:
    """The set ``Q([[D]])`` of answers over all enumerated worlds.

    Each answer is returned as a frozen set of rows, so the result is a set
    of sets — the object that strong representation systems must capture
    exactly (paper, eq. (2)).
    """
    space: Set[frozenset] = set()
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        space.add(frozenset(evaluate(world).rows))
    return space


def enumerate_certain_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
    heartbeat: Optional[float] = None,
    pool_factory: Optional[Callable[[int], Any]] = None,
    executor: Optional[Any] = None,
) -> bool:
    """Certain answer of a Boolean query: true iff true in every enumerated world.

    ``workers`` parallelizes the per-world checks over a process pool in
    chunks, like :func:`enumerate_certain_answers` (``heartbeat``,
    ``pool_factory`` and the caller-owned ``executor`` behave as they do
    there); early exit then happens per chunk rather than per world.
    """
    world_iter = worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )
    if workers is not None and workers > 1 and _can_pickle(evaluate):
        if executor is not None:
            pool_scope: Any = contextlib.nullcontext(executor)
        else:
            if pool_factory is None:
                pool_factory = lambda n: ProcessPoolExecutor(max_workers=n)  # noqa: E731
            pool_scope = pool_factory(workers)
        with pool_scope as pool:
            for result, _ in _windowed_chunk_results(
                pool,
                _all_hold_chunk,
                evaluate,
                _chunks(world_iter, _CHUNK_SIZE),
                2 * workers,
                heartbeat=heartbeat,
            ):
                if not result:
                    return False
        return True
    state = active_budget()
    registry = current_metrics()
    for world in world_iter:
        if state is not None:
            state.tick_world()
        if registry is not None:
            registry.count("worlds.evaluated")
        if not evaluate(world):
            return False
    return True


def enumerate_possible_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> bool:
    """Possibility of a Boolean query: true iff true in at least one world."""
    state = active_budget()
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        if state is not None:
            state.tick_world()
        if evaluate(world):
            return True
    return False


# ----------------------------------------------------------------------
# Deprecated entry points (shims over the strategy functions above)
# ----------------------------------------------------------------------
def certain_answers_enumeration(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
) -> Relation:
    """Deprecated alias of :func:`enumerate_certain_answers`.

    Prefer ``repro.connect(db).query(q).certain(method="enumeration")``
    (or the strategy function directly when an explicit evaluator is the
    point).
    """
    _warn_deprecated(
        "certain_answers_enumeration()",
        'Session.query(...).certain(method="enumeration")',
    )
    return enumerate_certain_answers(
        evaluate,
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        workers=workers,
    )


def possible_answers_enumeration(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Relation:
    """Deprecated alias of :func:`enumerate_possible_answers`."""
    _warn_deprecated(
        "possible_answers_enumeration()", "Session.query(...).possible()"
    )
    return enumerate_possible_answers(
        evaluate,
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )


def certain_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
) -> bool:
    """Deprecated alias of :func:`enumerate_certain_boolean`."""
    _warn_deprecated("certain_boolean()", "Session.query(...).boolean()")
    return enumerate_certain_boolean(
        evaluate,
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        workers=workers,
    )


def possible_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> bool:
    """Deprecated alias of :func:`enumerate_possible_boolean`."""
    _warn_deprecated(
        "possible_boolean()", 'Session.query(...).boolean(mode="possible")'
    )
    return enumerate_possible_boolean(
        evaluate,
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )
