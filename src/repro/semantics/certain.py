"""Brute-force certain answers by possible-world enumeration.

This module implements the classical, intersection-based definition of
certain answers (paper, eq. (1))::

    certain(Q, D) = ⋂ { Q(D') | D' ∈ [[D]] }

directly, by enumerating the (finitely approximated) set of worlds from
:mod:`repro.semantics.worlds` and intersecting the query answers.  It is
deliberately naive: it serves as the *ground truth* against which the
efficient methods (naive evaluation, ``RA_cwa`` evaluation, c-table
algebra) are validated, and as the "expensive" side of the complexity-shape
benchmarks.  Its cost is exponential in the number of nulls.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Set, Tuple

from ..datamodel import Database, Relation
from ..datamodel.relations import Row
from .worlds import cwa_worlds, owa_worlds, worlds

Evaluator = Callable[[Database], Relation]
"""A query, abstractly: a function from complete databases to relations."""


def certain_answers_enumeration(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Relation:
    """Intersection-based certain answers computed by world enumeration.

    Parameters
    ----------
    evaluate:
        The query, as a function from complete databases to relations.
    database:
        The incomplete input database.
    semantics:
        ``'cwa'`` or ``'owa'``.
    domain, extra_constants, max_extra_facts:
        Passed to the world enumerators; see :mod:`repro.semantics.worlds`.

    Returns
    -------
    Relation
        The relation of tuples present in the answer over *every*
        enumerated world.  The schema is taken from the first answer.
    """
    answer_schema = None
    certain: Optional[Set[Row]] = None
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        answer = evaluate(world)
        if answer_schema is None:
            answer_schema = answer.schema
        if certain is None:
            certain = set(answer.rows)
        else:
            certain &= answer.rows
        if not certain:
            break
    if answer_schema is None or certain is None:
        # No worlds at all only happens for an empty valuation domain;
        # evaluate on the database itself to obtain the answer schema.
        answer = evaluate(database.complete_part())
        return Relation(answer.schema, ())
    return Relation(answer_schema, certain)


def possible_answers_enumeration(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Relation:
    """Union-based *possible* answers (tuples appearing in at least one world)."""
    answer_schema = None
    possible: Set[Row] = set()
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        answer = evaluate(world)
        if answer_schema is None:
            answer_schema = answer.schema
        possible |= answer.rows
    if answer_schema is None:
        answer = evaluate(database.complete_part())
        return Relation(answer.schema, ())
    return Relation(answer_schema, possible)


def answer_space(
    evaluate: Evaluator,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Set[frozenset]:
    """The set ``Q([[D]])`` of answers over all enumerated worlds.

    Each answer is returned as a frozen set of rows, so the result is a set
    of sets — the object that strong representation systems must capture
    exactly (paper, eq. (2)).
    """
    space: Set[frozenset] = set()
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        space.add(frozenset(evaluate(world).rows))
    return space


def certain_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> bool:
    """Certain answer of a Boolean query: true iff true in every enumerated world."""
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        if not evaluate(world):
            return False
    return True


def possible_boolean(
    evaluate: Callable[[Database], bool],
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> bool:
    """Possibility of a Boolean query: true iff true in at least one world."""
    for world in worlds(
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    ):
        if evaluate(world):
            return True
    return False
