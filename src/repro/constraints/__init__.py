"""Integrity constraints over incomplete databases (Section 7, "Handling constraints").

Functional dependencies are treated as the paper suggests — as queries —
with three satisfaction notions mirroring the certain/possible split of
query answering: naive, certain (every world) and possible (some world).
"""

from .dependencies import ConstraintSet, FunctionalDependency, key
from .inclusion import InclusionDependency, foreign_key, referential_integrity_report

__all__ = [
    "ConstraintSet",
    "FunctionalDependency",
    "InclusionDependency",
    "foreign_key",
    "key",
    "referential_integrity_report",
]
