"""Inclusion dependencies (referential integrity) over incomplete databases.

An inclusion dependency (IND) ``R[X] ⊆ S[Y]`` requires every ``X``-value
combination appearing in ``R`` to appear as a ``Y``-value combination in
``S``.  Foreign keys are the ubiquitous special case.  Following the
paper's Section 7 advice that "constraints are queries, after all", an IND
is treated as a Boolean query (a containment of projections) and inherits
the three satisfaction notions used for functional dependencies:

* **naive** satisfaction — evaluate the containment treating nulls as
  ordinary values (a null matches only the very same null), the SQL-ish
  shortcut;
* **certain** satisfaction — the containment holds in *every* possible
  world of the database;
* **possible** satisfaction — it holds in *at least one* world.

Certain and possible satisfaction are decided exactly, by a direct
unification argument backed by valuation enumeration only where genuinely
needed (shared nulls can interact across tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Sequence, Set, Tuple, Union

from ..datamodel import ConstantPool, Database, enumerate_valuations
from ..datamodel.values import is_null

AttributeRef = Union[str, int]


@dataclass(frozen=True)
class InclusionDependency:
    """An inclusion dependency ``lhs_relation[lhs] ⊆ rhs_relation[rhs]``.

    ``lhs`` and ``rhs`` are sequences of attribute names or positions of
    equal length.

    Examples
    --------
    >>> ind = InclusionDependency("Pay", ("ord",), "Orders", ("o_id",))
    >>> str(ind)
    'Pay[ord] ⊆ Orders[o_id]'
    """

    lhs_relation: str
    lhs: Tuple[AttributeRef, ...]
    rhs_relation: str
    rhs: Tuple[AttributeRef, ...]

    def __init__(
        self,
        lhs_relation: str,
        lhs: Sequence[AttributeRef],
        rhs_relation: str,
        rhs: Sequence[AttributeRef],
    ) -> None:
        object.__setattr__(self, "lhs_relation", lhs_relation)
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs_relation", rhs_relation)
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.lhs or not self.rhs:
            raise ValueError("an inclusion dependency needs at least one attribute on each side")
        if len(self.lhs) != len(self.rhs):
            raise ValueError("the two attribute lists of an inclusion dependency must have equal length")

    def __str__(self) -> str:
        lhs = ", ".join(str(a) for a in self.lhs)
        rhs = ", ".join(str(a) for a in self.rhs)
        return f"{self.lhs_relation}[{lhs}] ⊆ {self.rhs_relation}[{rhs}]"

    # ------------------------------------------------------------------
    def _projections(self, database: Database) -> Tuple[List[Tuple], List[Tuple]]:
        left_relation = database.relation(self.lhs_relation)
        right_relation = database.relation(self.rhs_relation)
        left_positions = [left_relation.schema.index_of(a) for a in self.lhs]
        right_positions = [right_relation.schema.index_of(a) for a in self.rhs]
        left = [tuple(row[i] for i in left_positions) for row in left_relation]
        right = [tuple(row[i] for i in right_positions) for row in right_relation]
        return left, right

    def unmatched_values(self, database: Database) -> List[Tuple]:
        """LHS value combinations with no naive match on the RHS (dangling references)."""
        left, right = self._projections(database)
        right_set = set(right)
        return sorted({value for value in left if value not in right_set}, key=str)

    # ------------------------------------------------------------------
    # the three satisfaction notions
    # ------------------------------------------------------------------
    def satisfied_naively(self, database: Database) -> bool:
        """Naive satisfaction: every LHS combination appears verbatim on the RHS."""
        return not self.unmatched_values(database)

    def satisfied_certainly(self, database: Database) -> bool:
        """The IND holds in every possible world.

        A single LHS tuple can escape the containment in some world unless
        its match is *forced*: naive satisfaction guarantees a syntactic
        match, but a syntactic match involving nulls is only forced when it
        uses the very same nulls on both sides (which naive matching already
        requires).  However, a world can also *break* a naive match it
        relied on — it cannot, since applying a valuation to syntactically
        equal values keeps them equal.  What a world can do is break
        nothing but also *create* nothing, so certain satisfaction would
        seem to equal naive satisfaction; the subtlety is that a naive
        mismatch may still be satisfied in every world only if every
        valuation happens to produce a match, which for the "all distinct
        fresh constants" valuation never happens.  Hence certain
        satisfaction coincides with naive satisfaction, and this method
        simply documents that argument (and is cross-checked against
        enumeration in the tests).
        """
        return self.satisfied_naively(database)

    def satisfied_possibly(self, database: Database) -> bool:
        """The IND holds in at least one possible world.

        Decided exactly: if naive satisfaction holds, any valuation keeps
        the matches.  Otherwise the dangling LHS combinations must be
        repaired by a valuation that makes them equal to some RHS
        combination; whether that is possible depends on how nulls are
        shared, so the method enumerates valuations of the involved nulls
        over the active domain (fresh constants cannot help equality).
        """
        if self.satisfied_naively(database):
            return True
        left_relation = database.relation(self.lhs_relation)
        right_relation = database.relation(self.rhs_relation)
        nulls = left_relation.nulls() | right_relation.nulls()
        if not nulls:
            return False
        constants = sorted(
            left_relation.constants() | right_relation.constants(), key=str
        )
        pool = ConstantPool(forbidden=constants, prefix="ind")
        domain = constants + pool.take(1)
        involved = [left_relation]
        if self.rhs_relation != self.lhs_relation:
            involved.append(right_relation)
        restricted = Database.from_relations(involved)
        for valuation in enumerate_valuations(nulls, domain):
            if self.satisfied_naively(valuation.apply(restricted)):
                return True
        return False


def referential_integrity_report(
    database: Database,
    dependencies: Iterable[InclusionDependency],
) -> List[Tuple[InclusionDependency, str, List[Tuple]]]:
    """A per-IND verdict: 'certain', 'possible' or 'violated', plus dangling values."""
    report = []
    for dependency in dependencies:
        dangling = dependency.unmatched_values(database)
        if dependency.satisfied_certainly(database):
            verdict = "certain"
        elif dependency.satisfied_possibly(database):
            verdict = "possible"
        else:
            verdict = "violated"
        report.append((dependency, verdict, dangling))
    return report


def foreign_key(
    referencing: str,
    attributes: Sequence[AttributeRef],
    referenced: str,
    key_attributes: Sequence[AttributeRef],
) -> InclusionDependency:
    """A foreign key, i.e. an inclusion dependency with conventional naming."""
    return InclusionDependency(referencing, tuple(attributes), referenced, tuple(key_attributes))
