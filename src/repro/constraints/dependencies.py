"""Integrity constraints over incomplete databases: functional dependencies.

Section 7 of the paper ("Handling constraints") observes that constraint
satisfaction over incomplete data has been studied mostly in isolation
(Atzeni–Morfuni, Levene–Loizou are the cited lines of work) and argues that
"constraints are queries, after all", so the semantics-based machinery of
the paper should apply to them too.  This module follows that advice for
the most common constraint class, functional dependencies (FDs):

* an FD ``X → Y`` over a relation is modelled as a Boolean *violation
  query* (two tuples agreeing on ``X`` but disagreeing on ``Y``);
* three satisfaction notions are provided, mirroring the certain/possible
  split of query answering:

  - **naive satisfaction** — evaluate the violation query naively (nulls
    equal only to themselves); this is the common implementation shortcut;
  - **certain satisfaction** — the FD holds in *every* possible world
    (no valuation can produce a violation);
  - **possible satisfaction** — the FD holds in *at least one* world
    (the classical "weak satisfaction" of Atzeni–Morfuni).

The implementations are exact: certain/possible satisfaction are decided
by unification-style reasoning on the pair of tuples, with the world
enumeration kept only as a cross-check in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.sound_evaluation import values_unifiable
from ..datamodel import Database, Relation
from ..datamodel.values import is_null

AttributeRef = Union[str, int]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``relation: lhs → rhs``.

    Attributes may be given by name or position.  ``lhs`` may be empty
    (a constancy constraint on ``rhs``).
    """

    relation: str
    lhs: Tuple[AttributeRef, ...]
    rhs: Tuple[AttributeRef, ...]

    def __init__(
        self,
        relation: str,
        lhs: Sequence[AttributeRef],
        rhs: Sequence[AttributeRef],
    ) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(rhs))
        if not self.rhs:
            raise ValueError("a functional dependency needs at least one right-hand attribute")

    def __str__(self) -> str:
        lhs = ", ".join(str(a) for a in self.lhs) or "∅"
        rhs = ", ".join(str(a) for a in self.rhs)
        return f"{self.relation}: {lhs} → {rhs}"

    # ------------------------------------------------------------------
    def _positions(self, relation: Relation) -> Tuple[List[int], List[int]]:
        schema = relation.schema
        return (
            [schema.index_of(a) for a in self.lhs],
            [schema.index_of(a) for a in self.rhs],
        )

    def violating_pairs(self, database: Database) -> List[Tuple[Tuple, Tuple]]:
        """Pairs of tuples that violate the FD under *naive* equality."""
        relation = database.relation(self.relation)
        lhs_positions, rhs_positions = self._positions(relation)
        violations = []
        for first, second in combinations(sorted(relation.rows, key=str), 2):
            agree_lhs = all(first[i] == second[i] for i in lhs_positions)
            agree_rhs = all(first[i] == second[i] for i in rhs_positions)
            if agree_lhs and not agree_rhs:
                violations.append((first, second))
        return violations

    # ------------------------------------------------------------------
    # the three satisfaction notions
    # ------------------------------------------------------------------
    def satisfied_naively(self, database: Database) -> bool:
        """Naive satisfaction: no violation when nulls are treated as values."""
        return not self.violating_pairs(database)

    def satisfied_certainly(self, database: Database) -> bool:
        """The FD holds in every possible world (no valuation creates a violation).

        A pair of tuples can be turned into a violation by some valuation
        iff their left-hand sides are *unifiable* while their right-hand
        sides are not *forced equal* by that same unification.  We check
        this directly: unify the LHS; if that fails, the pair is harmless.
        If it succeeds, the pair violates in some world unless the RHS
        values are syntactically equal or forced equal by the LHS
        unification (i.e. the RHS also unifies **and** every way of
        instantiating the LHS equalities makes the RHS equal, which for
        equality constraints means the RHS pairs are already among the
        unified LHS classes).  The sound, complete and simple criterion:
        the pair is safe iff under the substitution induced by unifying the
        LHS, the RHS values become syntactically identical.
        """
        relation = database.relation(self.relation)
        lhs_positions, rhs_positions = self._positions(relation)
        for first, second in combinations(sorted(relation.rows, key=str), 2):
            lhs_pairs = [(first[i], second[i]) for i in lhs_positions]
            if not values_unifiable(lhs_pairs):
                continue
            if not self._rhs_forced_equal(lhs_pairs, first, second, rhs_positions):
                return False
        return True

    def satisfied_possibly(self, database: Database) -> bool:
        """The FD holds in at least one world (weak satisfaction).

        With *marked* nulls this is a genuine constraint-satisfaction
        question (a shared null may be pulled in incompatible directions by
        different tuple pairs), so the method combines three steps:

        1. if naive satisfaction holds, the "all distinct and fresh"
           valuation yields a satisfying world — possible;
        2. if some pair has syntactically equal LHS and two distinct
           constants on the RHS, the violation survives every valuation —
           impossible;
        3. otherwise, decide exactly by enumerating valuations of the
           relation's nulls over its active domain plus fresh constants
           (sufficient because renaming unused values preserves FD
           (non-)violations).
        """
        relation = database.relation(self.relation)
        lhs_positions, rhs_positions = self._positions(relation)
        forced_violation = False
        for first, second in combinations(sorted(relation.rows, key=str), 2):
            if all(first[i] == second[i] for i in lhs_positions):
                for i in rhs_positions:
                    left, right = first[i], second[i]
                    if left != right and not is_null(left) and not is_null(right):
                        forced_violation = True
        if forced_violation:
            return False
        if self.satisfied_naively(database):
            return True

        from ..datamodel import ConstantPool, enumerate_valuations

        nulls = relation.nulls()
        pool = ConstantPool(forbidden=relation.constants(), prefix="fd")
        domain = sorted(relation.constants(), key=str) + pool.take(len(nulls) + 1)
        single = Database.from_relations([relation])
        for valuation in enumerate_valuations(nulls, domain):
            if self.satisfied_naively(valuation.apply(single)):
                return True
        return False

    @staticmethod
    def _rhs_forced_equal(lhs_pairs, first, second, rhs_positions) -> bool:
        """Are the RHS values equal under *every* unifier of the LHS pairs?

        We use the representative map of the union-find built from the LHS
        pairs: two RHS values are forced equal iff they are syntactically
        equal or end up in the same union-find class (their equality is a
        consequence of the LHS equalities).
        """
        from ..core.sound_evaluation import _UnionFind

        union_find = _UnionFind()
        for left, right in lhs_pairs:
            union_find.union(left, right)
        for i in rhs_positions:
            left, right = first[i], second[i]
            if left == right:
                continue
            if union_find.find(left) != union_find.find(right):
                return False
        return True


class ConstraintSet:
    """A collection of functional dependencies with bulk checking helpers."""

    def __init__(self, dependencies: Iterable[FunctionalDependency] = ()) -> None:
        self.dependencies: List[FunctionalDependency] = list(dependencies)

    def add(self, dependency: FunctionalDependency) -> None:
        """Add one dependency."""
        self.dependencies.append(dependency)

    def __iter__(self):
        return iter(self.dependencies)

    def __len__(self) -> int:
        return len(self.dependencies)

    def satisfied_naively(self, database: Database) -> bool:
        """All dependencies hold under naive equality."""
        return all(fd.satisfied_naively(database) for fd in self.dependencies)

    def satisfied_certainly(self, database: Database) -> bool:
        """All dependencies hold in every possible world."""
        return all(fd.satisfied_certainly(database) for fd in self.dependencies)

    def satisfied_possibly(self, database: Database) -> bool:
        """Every dependency holds in at least one world (checked independently)."""
        return all(fd.satisfied_possibly(database) for fd in self.dependencies)

    def report(self, database: Database) -> List[Tuple[FunctionalDependency, str]]:
        """A per-dependency verdict: 'certain', 'possible', or 'violated'."""
        verdicts = []
        for fd in self.dependencies:
            if fd.satisfied_certainly(database):
                verdicts.append((fd, "certain"))
            elif fd.satisfied_possibly(database):
                verdicts.append((fd, "possible"))
            else:
                verdicts.append((fd, "violated"))
        return verdicts


def key(relation: str, attributes: Sequence[AttributeRef], all_attributes: Sequence[AttributeRef]) -> FunctionalDependency:
    """The key constraint ``attributes → (all other attributes)``."""
    rest = [a for a in all_attributes if a not in attributes]
    if not rest:
        raise ValueError("a key over all attributes is vacuous; give a proper subset")
    return FunctionalDependency(relation, tuple(attributes), tuple(rest))
