"""Cores of incomplete database instances.

The *core* of an instance ``D`` is a smallest sub-instance ``D₀ ⊆ D`` such
that there is a homomorphism ``D → D₀`` (a retraction).  Cores are unique
up to isomorphism and are the canonical representatives of
homomorphism-equivalence classes.  The paper does not use cores directly,
but they are the standard tool for computing the object-level greatest
lower bound (``certainO``) of finite families of instances under the OWA
ordering, and for minimising chase results in the data-exchange substrate.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

from ..datamodel import Database, Null, is_null
from ..datamodel.database import Fact
from .finder import Homomorphism, exists_homomorphism, find_homomorphism


def _sub_database(database: Database, facts: Set[Fact]) -> Database:
    return Database.from_facts(database.schema, list(facts))


def _retraction_exists(database: Database, candidate_facts: Set[Fact]) -> bool:
    """Is there a homomorphism from ``database`` into the given sub-instance?"""
    sub = _sub_database(database, candidate_facts)
    return exists_homomorphism(database, sub)


def core(database: Database) -> Database:
    """Compute the core of ``database`` by greedy fact removal.

    The algorithm repeatedly tries to drop a fact containing a null while a
    retraction onto the remaining facts still exists; complete facts are
    never redundant (a homomorphism fixes constants, so a fact without
    nulls is always required).  Greedy removal yields a correct core
    because retractions compose.
    """
    facts: Set[Fact] = set(database.facts())
    changed = True
    while changed:
        changed = False
        for fact in sorted(facts, key=lambda f: (f[0], tuple(str(v) for v in f[1]))):
            _, row = fact
            if not any(is_null(v) for v in row):
                continue
            candidate = facts - {fact}
            if _retraction_exists(database, candidate):
                facts = candidate
                changed = True
                break
    return _sub_database(database, facts)


def is_core(database: Database) -> bool:
    """``True`` iff no proper sub-instance admits a retraction from ``database``."""
    facts = set(database.facts())
    for fact in facts:
        _, row = fact
        if not any(is_null(v) for v in row):
            continue
        if _retraction_exists(database, facts - {fact}):
            return False
    return True


def retract(database: Database) -> Tuple[Database, Optional[Homomorphism]]:
    """Return the core together with a retraction homomorphism onto it."""
    core_db = core(database)
    hom = find_homomorphism(database, core_db)
    return core_db, hom
