"""Cores of incomplete database instances.

The *core* of an instance ``D`` is a smallest sub-instance ``D₀ ⊆ D`` such
that there is a homomorphism ``D → D₀`` (a retraction).  Cores are unique
up to isomorphism and are the canonical representatives of
homomorphism-equivalence classes.  The paper does not use cores directly,
but they are the standard tool for computing the object-level greatest
lower bound (``certainO``) of finite families of instances under the OWA
ordering, and for minimising chase results in the data-exchange substrate.

Two algorithms are provided:

* ``algorithm="block"`` (default) — the block-by-block algorithm.  The
  instance is decomposed into the connected components of its
  null-sharing Gaifman graph (:mod:`repro.homomorphisms.blocks`); ground
  facts are fixed points of every homomorphism and are excluded up
  front.  Because blocks share no nulls, ``D → D ∖ {f}`` has a
  homomorphism iff the block of ``f`` alone has one (identity embeds
  every other block), so each retraction check only re-searches the
  dropped fact's null neighbourhood via the target-restricted finder
  entry point — no sub-instance is ever materialized.  The cost is
  ``O(#facts)`` retraction checks, each exponential only in the size of
  one block, instead of the greedy algorithm's whole-instance search per
  candidate removal.

* ``algorithm="greedy"`` — the seed's greedy whole-instance retraction
  loop, kept verbatim as the differential-testing oracle.

Both produce a core of ``D`` (cores are unique up to isomorphism, so the
two results are always isomorphic, though not necessarily equal).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datamodel import Database, Null, is_null
from ..datamodel.database import Fact
from ..resilience import active_budget
from .blocks import fact_components, fact_sort_key, null_blocks
from .finder import (
    Homomorphism,
    _fact_search_info,
    _iter_assignments,
    exists_homomorphism,
    find_homomorphism,
    find_homomorphism_restricted,
)

_ALGORITHMS = ("block", "greedy")


def _sub_database(database: Database, facts: Set[Fact]) -> Database:
    return Database.from_facts(database.schema, list(facts))


def _retraction_exists(database: Database, candidate_facts: Set[Fact]) -> bool:
    """Is there a homomorphism from ``database`` into the given sub-instance?"""
    sub = _sub_database(database, candidate_facts)
    return exists_homomorphism(database, sub)


def _unknown_algorithm(algorithm: str) -> ValueError:
    return ValueError(
        f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}"
    )


def core(database: Database, algorithm: str = "block") -> Database:
    """Compute the core of ``database``.

    ``algorithm="block"`` (default) runs the incremental block-by-block
    algorithm; ``algorithm="greedy"`` runs the seed's greedy fact-removal
    loop (the oracle for differential testing).  See the module docstring.
    """
    if algorithm == "block":
        return _core_block(database)[0]
    if algorithm == "greedy":
        return _core_greedy(database)
    raise _unknown_algorithm(algorithm)


def _core_greedy(database: Database) -> Database:
    """The seed algorithm: greedy fact removal with whole-instance searches.

    The algorithm repeatedly tries to drop a fact containing a null while a
    retraction onto the remaining facts still exists; complete facts are
    never redundant (a homomorphism fixes constants, so a fact without
    nulls is always required).  Greedy removal yields a correct core
    because retractions compose.
    """
    facts: Set[Fact] = set(database.facts())
    changed = True
    while changed:
        changed = False
        for fact in sorted(facts, key=lambda f: (f[0], tuple(str(v) for v in f[1]))):
            _, row = fact
            if not any(is_null(v) for v in row):
                continue
            candidate = facts - {fact}
            if _retraction_exists(database, candidate):
                facts = candidate
                changed = True
                break
    return _sub_database(database, facts)


def _core_block(database: Database) -> Tuple[Database, Homomorphism]:
    """The block-by-block core, together with the accumulated retraction.

    Correctness rests on three observations:

    1. Blocks share no nulls, so per-block homomorphisms combine: there is
       a homomorphism ``D → D ∖ {f}`` iff there is one from the (current)
       null-connected component of ``f`` into ``D ∖ {f}`` — every other
       component and every ground fact embeds by the identity.
    2. Retractions compose, so removing one fact at a time (each step a
       retraction of the previous instance) ends in a sub-instance that
       ``D`` retracts onto.
    3. Shrinking the target only destroys homomorphisms.  Once a block
       reaches its inner fixpoint (no fact of it can be dropped), removals
       in *other* blocks can never re-enable one, so a single pass over
       the blocks suffices and the result admits no further retraction —
       it is the core.

    The per-step homomorphisms (identity outside the searched component)
    are composed into a single retraction ``D → core(D)`` returned
    alongside the core, so :func:`retract` needs no final whole-instance
    search.
    """
    blocks = null_blocks(database)
    if not blocks:
        return database, Homomorphism({})

    removed: Set[Fact] = set()
    # The removed facts, as the finder's per-relation exclusion map.  It is
    # maintained incrementally across all retraction checks (the candidate
    # fact is added before each search and taken back out on failure), so a
    # check never rebuilds the exclusion state from scratch.
    excluded: Dict[str, Set[Tuple]] = {}
    total: Optional[Homomorphism] = None
    state = active_budget()
    for block in blocks:
        if state is not None:
            # One giant null block means one exponential search; an armed
            # max_block_size refuses it up front instead of hanging.
            state.check_block(len(block.facts))
        remaining: List[Fact] = list(block.facts)
        progress = True
        while progress:
            progress = False
            for component in fact_components(remaining):
                for fact in sorted(component, key=fact_sort_key):
                    name, row = fact
                    excluded_rows = excluded.setdefault(name, set())
                    excluded_rows.add(row)
                    mapping = next(
                        _iter_assignments(
                            _fact_search_info(component), database, excluded=excluded
                        ),
                        None,
                    )
                    if mapping is None:
                        excluded_rows.discard(row)
                        continue
                    step = Homomorphism(mapping)
                    removed.add(fact)
                    remaining.remove(fact)
                    total = step if total is None else total.compose(step)
                    progress = True
                    break
                if progress:
                    break  # re-split the block: it may have disconnected

    if not removed:
        return database, Homomorphism({})
    survivors = set(database.facts()) - removed
    return _sub_database(database, survivors), total if total is not None else Homomorphism({})


def is_core(database: Database, algorithm: str = "block") -> bool:
    """``True`` iff no proper sub-instance admits a retraction from ``database``.

    The default runs one incremental retraction check per null-carrying
    fact (source: the fact's block; target: the instance minus the fact)
    instead of the greedy oracle's full homomorphism search per fact.
    """
    if algorithm == "greedy":
        facts = set(database.facts())
        for fact in facts:
            _, row = fact
            if not any(is_null(v) for v in row):
                continue
            if _retraction_exists(database, facts - {fact}):
                return False
        return True
    if algorithm != "block":
        raise _unknown_algorithm(algorithm)
    state = active_budget()
    for block in null_blocks(database):
        if state is not None:
            state.check_block(len(block.facts))
        for fact in block.facts:
            if find_homomorphism_restricted(block.facts, database, exclude=(fact,)) is not None:
                return False
    return True


def retract(
    database: Database, algorithm: str = "block"
) -> Tuple[Database, Optional[Homomorphism]]:
    """Return the core together with a retraction homomorphism onto it.

    With the block algorithm the retraction is the composition of the
    per-removal homomorphisms accumulated during the core computation; the
    greedy oracle re-searches a homomorphism ``D → core(D)`` as the seed
    did.
    """
    if algorithm == "block":
        return _core_block(database)
    if algorithm == "greedy":
        core_db = _core_greedy(database)
        return core_db, find_homomorphism(database, core_db)
    raise _unknown_algorithm(algorithm)
