"""Homomorphisms between incomplete database instances.

A *homomorphism* ``h : D → D'`` between databases of the same schema
(paper, Section 5.2) is a map on active domains with

* ``h(a) = a`` for every constant ``a``, and
* for every fact ``R(t̄)`` of ``D``, ``R(h(t̄))`` is a fact of ``D'``.

``h`` is *onto* (used for the weak closed-world ordering) when
``h(adom(D)) = adom(D')`` and *strong onto* when ``h(D) = D'``, i.e. every
fact of ``D'`` is the image of a fact of ``D``.

Homomorphism existence characterises the information orderings of the
paper (``⊑_owa``, ``⊑_cwa``) and membership in the OWA/CWA semantics, and
is the computational core of conjunctive-query containment and of naive
evaluation correctness arguments.  The search below is a straightforward
backtracking algorithm over the facts of the source instance with
most-constrained-first fact ordering; instances in this library are small
enough (tens to a few thousands of facts) for this to be entirely adequate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import Database, Null, Relation, is_null
from ..datamodel.database import Fact
from ..resilience import active_budget


class Homomorphism:
    """A concrete homomorphism: an assignment of targets to the source's nulls.

    Constants are implicitly mapped to themselves, so only the null part of
    the map is stored.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Dict[Null, Any]) -> None:
        self._mapping = dict(mapping)

    def __call__(self, value: Any) -> Any:
        if isinstance(value, Null):
            return self._mapping.get(value, value)
        return value

    def __getitem__(self, null: Null) -> Any:
        return self._mapping[null]

    def __contains__(self, null: object) -> bool:
        return null in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Homomorphism):
            return self._mapping == other._mapping
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}→{v}" for k, v in sorted(self._mapping.items(), key=lambda kv: kv[0].name)
        )
        return f"Homomorphism({{{inner}}})"

    def as_dict(self) -> Dict[Null, Any]:
        """A copy of the null-to-target mapping."""
        return dict(self._mapping)

    def apply_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Image of a tuple."""
        return tuple(self(v) for v in row)

    def apply(self, database: Database) -> Database:
        """Image ``h(D)`` of a database."""
        return database.map_values(self)

    def is_valuation(self) -> bool:
        """``True`` iff every null is mapped to a constant."""
        return not any(is_null(v) for v in self._mapping.values())

    def compose(self, after: "Homomorphism") -> "Homomorphism":
        """The composition ``after ∘ self`` (apply ``self`` first)."""
        mapping: Dict[Null, Any] = {}
        for null, value in self._mapping.items():
            mapping[null] = after(value)
        for null, value in after._mapping.items():
            mapping.setdefault(null, value)
        return Homomorphism(mapping)


def _facts_by_relation(
    database: Database, names: Optional[Set[str]] = None
) -> Dict[str, List[Tuple[Any, ...]]]:
    return {
        rel.name: list(rel.rows)
        for rel in database.relations()
        if names is None or rel.name in names
    }


def _match_row(
    source_row: Sequence[Any],
    target_row: Sequence[Any],
    assignment: Dict[Null, Any],
) -> Optional[Dict[Null, Any]]:
    """Try to extend ``assignment`` so that the source row maps onto the target row."""
    extension: Dict[Null, Any] = {}
    for s_val, t_val in zip(source_row, target_row):
        if is_null(s_val):
            bound = assignment.get(s_val, extension.get(s_val, _UNBOUND))
            if bound is _UNBOUND:
                extension[s_val] = t_val
            elif bound != t_val:
                return None
        else:
            if s_val != t_val:
                return None
    return extension


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()


def _fact_search_info(facts: Iterable[Fact]):
    """Search preprocessing for an explicit fact list.

    Returns ``(sorted_facts, ground_facts, fact_info)`` where
    ``sorted_facts`` is the most-constrained-first fact list,
    ``ground_facts`` are the facts without nulls and ``fact_info`` holds
    ``(name, row, constant positions, null positions)`` for the facts
    that do mention nulls.
    """
    facts = list(facts)

    # Most-constrained-first: process facts with many constants /
    # frequently occurring nulls early to prune the search.
    def fact_key(fact: Fact) -> Tuple[int, int]:
        _, row = fact
        constants = sum(1 for v in row if not is_null(v))
        return (-constants, len(row))

    facts.sort(key=fact_key)
    ground = [fact for fact in facts if not any(is_null(v) for v in fact[1])]
    fact_info = [
        (
            name,
            row,
            tuple(i for i, v in enumerate(row) if not is_null(v)),
            tuple(i for i, v in enumerate(row) if is_null(v)),
        )
        for name, row in facts
        if any(is_null(v) for v in row)
    ]
    return (facts, ground, fact_info)


def _source_search_info(source: Database):
    """Target-independent search preprocessing, cached on the instance."""
    cache = source.analysis_cache()
    info = cache.get("hom_search")
    if info is None:
        info = _fact_search_info(source.facts())
        cache["hom_search"] = info
    return info


def _iter_homomorphisms(
    source: Database,
    target: Database,
    use_index: bool = True,
) -> Iterator[Dict[Null, Any]]:
    """Enumerate all homomorphism assignments from ``source`` to ``target``.

    The enumeration yields raw ``{null: target value}`` dictionaries; nulls
    of the source that occur in no fact are left unassigned (any extension
    is a homomorphism).

    With ``use_index`` (the default) the candidate target rows for each
    source fact are pruned through the target relations' positional hash
    indexes on the fact's constant positions; ``use_index=False`` keeps the
    seed's full-scan behaviour (used as a benchmark baseline).
    """
    return _iter_assignments(_source_search_info(source), target, use_index=use_index)


def _iter_assignments(
    search_info,
    target: Database,
    use_index: bool = True,
    excluded: Optional[Dict[str, Set[Tuple[Any, ...]]]] = None,
    initial: Optional[Dict[Null, Any]] = None,
) -> Iterator[Dict[Null, Any]]:
    """The generalized backtracking search behind every finder entry point.

    ``search_info`` is a ``(sorted_facts, ground_facts, fact_info)`` triple
    from :func:`_fact_search_info`.  ``excluded`` restricts the target: a
    per-relation set of rows that no source fact may map onto (the
    target-restricted search used by incremental core retraction).
    ``initial`` seeds the assignment with pre-bound nulls; yielded
    assignments extend it (and include its entries).
    """
    sorted_facts, ground_facts, fact_info = search_info

    if excluded:
        def is_excluded(name: str, row: Tuple[Any, ...]) -> bool:
            rows = excluded.get(name)
            return rows is not None and row in rows
    else:
        is_excluded = None

    if use_index:
        # A fact without nulls never constrains the assignment: it is
        # satisfied iff the identical row exists in the target.  Check all
        # of them once, up front; only null-carrying facts are searched.
        for name, row in ground_facts:
            if name not in target or row not in target.relation(name).rows:
                return
            if is_excluded is not None and is_excluded(name, row):
                return
        source_facts = [info[:2] for info in fact_info]
    else:
        source_facts = sorted_facts
        fact_info = [
            (
                name,
                row,
                tuple(i for i, v in enumerate(row) if not is_null(v)),
                tuple(i for i, v in enumerate(row) if is_null(v)),
            )
            for name, row in source_facts
        ]

    # Materialize target rows only for the relations the search touches —
    # the incremental retraction path calls this thousands of times, so
    # copying unrelated relations per call would make it quadratic.
    target_facts = _facts_by_relation(target, {info[0] for info in fact_info})

    # Static pruning: candidate target rows must agree with the source fact
    # on its constant positions (constants map to themselves), served from
    # the target relation's cached positional hash index.  Exclusions are
    # filtered per candidate list, never over whole relations up front.
    static_candidates: List[List[Tuple[Any, ...]]] = []
    for name, row, constant_positions, _ in fact_info:
        if not use_index or not constant_positions:
            rows = target_facts.get(name, [])
        elif name not in target:
            rows = []
        else:
            index = target.relation(name).index_on(constant_positions)
            rows = index.get(tuple(row[i] for i in constant_positions), [])
        if is_excluded is not None and rows:
            rows = [r for r in rows if not is_excluded(name, r)]
        static_candidates.append(rows)

    def candidates(index: int, assignment: Dict[Null, Any]) -> List[Tuple[Any, ...]]:
        _, row, _, null_positions = fact_info[index]
        if not use_index or not null_positions or not assignment:
            return static_candidates[index]
        # Dynamic pruning: narrow the constant-indexed candidate list by
        # the nulls the assignment has already bound.  A linear filter over
        # the (already pruned) static list avoids materializing an index
        # per bound-position combination, which could otherwise grow
        # exponentially with fact arity.
        bound = [(i, assignment[row[i]]) for i in null_positions if row[i] in assignment]
        if not bound:
            return static_candidates[index]
        return [
            candidate
            for candidate in static_candidates[index]
            if all(candidate[i] == value for i, value in bound)
        ]

    def match_nulls(
        row: Row, target_row: Row, null_positions: Tuple[int, ...], assignment: Dict[Null, Any]
    ) -> Optional[Dict[Null, Any]]:
        # Constant positions were already enforced by the index key, so
        # only the null positions need checking.
        extension: Dict[Null, Any] = {}
        for i in null_positions:
            null = row[i]
            value = target_row[i]
            bound = assignment.get(null)
            if bound is None:
                bound = extension.get(null)
                if bound is None:
                    extension[null] = value
                    continue
            if bound != value:
                return None
        return extension

    target_rows = {
        name: (target.relation(name).rows if name in target else frozenset())
        for name in {info[0] for info in fact_info}
    }

    budget = active_budget()

    def backtrack(index: int, assignment: Dict[Null, Any]) -> Iterator[Dict[Null, Any]]:
        if budget is not None:
            # Cooperative cancellation: the search tree is exponential in
            # the worst case, so every node re-checks the deadline.
            budget.check()
        if index == len(source_facts):
            yield dict(assignment)
            return
        name, row, constant_positions, null_positions = fact_info[index]
        if use_index:
            # Fast path: every null of this fact is already bound, so the
            # image row is fully determined — one membership test decides.
            all_bound = all(row[i] in assignment for i in null_positions)
            if all_bound:
                substituted = list(row)
                for i in null_positions:
                    substituted[i] = assignment[row[i]]
                image = tuple(substituted)
                if image in target_rows[name] and (
                    is_excluded is None or not is_excluded(name, image)
                ):
                    yield from backtrack(index + 1, assignment)
                return
        indexed = use_index and bool(constant_positions)
        for target_row in candidates(index, assignment):
            if indexed:
                extension = match_nulls(row, target_row, null_positions, assignment)
            else:
                extension = _match_row(row, target_row, assignment)
            if extension is None:
                continue
            assignment.update(extension)
            yield from backtrack(index + 1, assignment)
            for key in extension:
                del assignment[key]

    yield from backtrack(0, dict(initial) if initial else {})


def _covers_all_target_facts(
    mapping: Dict[Null, Any], source: Database, target: Database
) -> bool:
    get = mapping.get
    for relation in source.relations():
        image = {
            tuple(get(v, v) if isinstance(v, Null) else v for v in row)
            for row in relation.rows
        }
        if image != target.relation(relation.name).rows:
            return False
    return True


def _covers_all_target_facts_seed(
    mapping: Dict[Null, Any], source: Database, target: Database
) -> bool:
    """The seed's cover check (materializes the image database); kept for
    the ``use_index=False`` baseline so benchmarks measure the seed path."""
    hom = Homomorphism(mapping)
    return hom.apply(source) == target


def _is_onto_adom(mapping: Dict[Null, Any], source: Database, target: Database) -> bool:
    hom = Homomorphism(mapping)
    image_adom = {hom(v) for v in source.active_domain()}
    return target.active_domain() <= image_adom


def find_homomorphism(
    source: Database,
    target: Database,
    onto: bool = False,
    strong_onto: bool = False,
    use_index: bool = True,
) -> Optional[Homomorphism]:
    """Find a homomorphism from ``source`` to ``target`` or ``None``.

    Parameters
    ----------
    onto:
        Require ``h(adom(source)) ⊇ adom(target)`` (the weak-CWA ordering).
    strong_onto:
        Require ``h(source) = target``, i.e. every fact of ``target`` is the
        image of a fact of ``source`` (the CWA ordering).
    """
    if source.schema != target.schema:
        return None
    covers = _covers_all_target_facts if use_index else _covers_all_target_facts_seed
    for mapping in _iter_homomorphisms(source, target, use_index=use_index):
        if strong_onto and not covers(mapping, source, target):
            continue
        if onto and not _is_onto_adom(mapping, source, target):
            continue
        return Homomorphism(mapping)
    return None


def find_homomorphism_restricted(
    source_facts: Iterable[Fact],
    target: Database,
    exclude: Iterable[Fact] = (),
    assignment: Optional[Dict[Null, Any]] = None,
    use_index: bool = True,
) -> Optional[Homomorphism]:
    """Target-restricted, partially-assigned homomorphism search.

    Finds a homomorphism ``h`` extending ``assignment`` such that for every
    fact ``(R, t̄)`` in ``source_facts``, ``(R, h(t̄))`` is a fact of
    ``target`` **and not in** ``exclude``.  Returns ``None`` when no such
    extension exists.

    This is the incremental-retraction primitive of the block-based core
    algorithm: instead of materializing the sub-instance ``D ∖ X`` and
    re-searching the whole database, the caller passes the dropped facts as
    ``exclude`` and only the facts of the affected block as
    ``source_facts``, reusing the target's cached positional indexes.

    Notes
    -----
    * The restricted search can fail even when a global homomorphism
      exists — e.g. when the only possible image of a source fact is the
      excluded fact itself.
    * ``assignment`` entries are trusted as-is (they are not re-checked
      against facts outside ``source_facts``) and are included in the
      returned homomorphism.
    * ``use_index=False`` searches by full scans (seed parity), still
      honouring ``exclude`` and ``assignment``.
    """
    excluded: Dict[str, Set[Tuple[Any, ...]]] = {}
    for name, row in exclude:
        excluded.setdefault(name, set()).add(tuple(row))
    info = _fact_search_info(source_facts)
    for mapping in _iter_assignments(
        info, target, use_index=use_index, excluded=excluded or None, initial=assignment
    ):
        return Homomorphism(mapping)
    return None


def all_homomorphisms(
    source: Database,
    target: Database,
    onto: bool = False,
    strong_onto: bool = False,
    limit: Optional[int] = None,
    use_index: bool = True,
) -> List[Homomorphism]:
    """All homomorphisms from ``source`` to ``target`` (up to ``limit``)."""
    if source.schema != target.schema:
        return []
    result: List[Homomorphism] = []
    seen: Set[Homomorphism] = set()
    covers = _covers_all_target_facts if use_index else _covers_all_target_facts_seed
    for mapping in _iter_homomorphisms(source, target, use_index=use_index):
        if strong_onto and not covers(mapping, source, target):
            continue
        if onto and not _is_onto_adom(mapping, source, target):
            continue
        hom = Homomorphism(mapping)
        if hom in seen:
            continue
        seen.add(hom)
        result.append(hom)
        if limit is not None and len(result) >= limit:
            break
    return result


def exists_homomorphism(source: Database, target: Database) -> bool:
    """``True`` iff some homomorphism ``source → target`` exists."""
    return find_homomorphism(source, target) is not None


def exists_onto_homomorphism(source: Database, target: Database) -> bool:
    """``True`` iff some homomorphism is onto on active domains."""
    return find_homomorphism(source, target, onto=True) is not None


def exists_strong_onto_homomorphism(source: Database, target: Database) -> bool:
    """``True`` iff some homomorphism has ``h(source) = target``."""
    return find_homomorphism(source, target, strong_onto=True) is not None


def is_homomorphism(mapping: Dict[Null, Any], source: Database, target: Database) -> bool:
    """Check that a given null assignment is a homomorphism ``source → target``."""
    hom = Homomorphism(mapping)
    if source.schema != target.schema:
        return False
    return target.contains_database(hom.apply(source))


def hom_equivalent(left: Database, right: Database) -> bool:
    """``True`` iff homomorphisms exist in both directions."""
    return exists_homomorphism(left, right) and exists_homomorphism(right, left)
