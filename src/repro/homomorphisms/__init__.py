"""Homomorphism machinery: search, onto/strong-onto variants, cores.

Homomorphisms characterise the paper's information orderings (Section 5.2):

* ``D ⊑_owa D'``  iff there is a homomorphism ``D → D'``;
* ``D ⊑_cwa D'``  iff there is a strong onto homomorphism ``D → D'``;
* the weak-CWA ordering corresponds to onto-on-active-domain homomorphisms.
"""

from .blocks import Block, fact_components, largest_block_size, null_blocks
from .core import core, is_core, retract
from .finder import (
    Homomorphism,
    all_homomorphisms,
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
    find_homomorphism,
    find_homomorphism_restricted,
    hom_equivalent,
    is_homomorphism,
)

__all__ = [
    "Block",
    "Homomorphism",
    "all_homomorphisms",
    "core",
    "exists_homomorphism",
    "exists_onto_homomorphism",
    "exists_strong_onto_homomorphism",
    "fact_components",
    "find_homomorphism",
    "find_homomorphism_restricted",
    "hom_equivalent",
    "is_core",
    "is_homomorphism",
    "largest_block_size",
    "null_blocks",
    "retract",
]
