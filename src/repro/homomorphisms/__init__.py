"""Homomorphism machinery: search, onto/strong-onto variants, cores.

Homomorphisms characterise the paper's information orderings (Section 5.2):

* ``D ⊑_owa D'``  iff there is a homomorphism ``D → D'``;
* ``D ⊑_cwa D'``  iff there is a strong onto homomorphism ``D → D'``;
* the weak-CWA ordering corresponds to onto-on-active-domain homomorphisms.
"""

from .core import core, is_core, retract
from .finder import (
    Homomorphism,
    all_homomorphisms,
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
    find_homomorphism,
    hom_equivalent,
    is_homomorphism,
)

__all__ = [
    "Homomorphism",
    "all_homomorphisms",
    "core",
    "exists_homomorphism",
    "exists_onto_homomorphism",
    "exists_strong_onto_homomorphism",
    "find_homomorphism",
    "hom_equivalent",
    "is_core",
    "is_homomorphism",
    "retract",
]
