"""Block decomposition of incomplete instances.

The *Gaifman graph of nulls* of an instance ``D`` has the nulls of ``D``
as vertices, with an edge between two nulls whenever they occur together
in some fact.  A *block* is the set of facts whose nulls fall in one
connected component of that graph; ground facts (no nulls) belong to no
block.  Blocks are the unit of locality for homomorphism reasoning:

* blocks share no nulls, so homomorphisms chosen independently per block
  always combine into a single homomorphism of the whole instance;
* consequently ``D → D ∖ {f}`` has a homomorphism iff the *block* of
  ``f`` alone has one (every other block embeds by the identity), which
  is what makes the block-by-block core algorithm
  (:func:`repro.homomorphisms.core`) incremental — each retraction check
  searches only the dropped fact's null neighbourhood.

This mirrors the block decomposition used for core computation in data
exchange (Fagin–Kolaitis–Popa), where canonical solutions have blocks of
size bounded by the mapping, independent of the source instance.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from ..datamodel import Database, Null, is_null
from ..datamodel.database import Fact


def fact_sort_key(fact: Fact) -> Tuple[str, Tuple[str, ...]]:
    """A deterministic ordering key for facts (relation name, stringified row)."""
    name, row = fact
    return (name, tuple(str(v) for v in row))


class Block:
    """One block: the facts of a null-connected component, with its nulls."""

    __slots__ = ("facts", "nulls")

    def __init__(self, facts: Iterable[Fact]) -> None:
        self.facts: Tuple[Fact, ...] = tuple(facts)
        nulls = set()
        for _, row in self.facts:
            nulls.update(v for v in row if is_null(v))
        self.nulls = frozenset(nulls)

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts)

    def __repr__(self) -> str:
        return f"Block(facts={len(self.facts)}, nulls={len(self.nulls)})"


def fact_components(facts: Iterable[Fact]) -> List[List[Fact]]:
    """Partition null-carrying facts into null-connected components.

    Facts without nulls are skipped (they are fixed points of every
    homomorphism and belong to no block).  The result is deterministic in
    the order of the input facts.
    """
    parent: Dict[Null, Null] = {}

    def find(null: Null) -> Null:
        root = null
        while parent[root] != root:
            root = parent[root]
        while parent[null] != root:  # path compression
            parent[null], null = root, parent[null]
        return root

    members: List[Tuple[Fact, Null]] = []
    for fact in facts:
        nulls = [v for v in fact[1] if is_null(v)]
        if not nulls:
            continue
        for null in nulls:
            if null not in parent:
                parent[null] = null
        first = nulls[0]
        for other in nulls[1:]:
            root_a, root_b = find(first), find(other)
            if root_a != root_b:
                parent[root_b] = root_a
        members.append((fact, first))

    components: Dict[Null, List[Fact]] = {}
    for fact, null in members:
        components.setdefault(find(null), []).append(fact)
    return list(components.values())


def null_blocks(database: Database) -> Tuple[Block, ...]:
    """The blocks of ``database``, cached on the (immutable) instance.

    Blocks are returned in a deterministic order (by their smallest fact
    under :func:`fact_sort_key`), each with its facts sorted the same way.
    """
    cache = database.analysis_cache()
    blocks = cache.get("null_blocks")
    if blocks is None:
        facts = sorted(database.facts(), key=fact_sort_key)
        blocks = tuple(
            Block(component)
            for component in sorted(
                fact_components(facts), key=lambda comp: fact_sort_key(comp[0])
            )
        )
        cache["null_blocks"] = blocks
    return blocks


def largest_block_size(database: Database) -> int:
    """The number of facts in the largest block (0 for ground instances).

    The worst-case cost of a block-based retraction check is exponential
    in this quantity only — not in the size of the whole instance.
    """
    return max((len(block) for block in null_blocks(database)), default=0)
