"""Budgets, typed failures and retry/degradation plumbing.

The paper's central guarantee is *soundness*: an evaluation scheme may
return fewer answers than the true certain answers, but never wrong ones
(Section 4's ``Q(D)_cmpl ⊑ certain(Q, D)``).  That guarantee dictates how
this library handles resource exhaustion and infrastructure failure: an
evaluation that cannot finish degrades to a *cheaper sound approximation*
(or a typed error) — never to a silently incorrect result.  This module
holds the pieces every layer shares:

* **Exception taxonomy.**  :class:`ReproError` is the base class of every
  failure the library raises on purpose.  :class:`BudgetExceeded`,
  :class:`BackendUnavailable` and :class:`WorkerPoolError` are the
  resource/infrastructure failures introduced here;
  :class:`SessionClosedError` and :class:`InvalidRequestError` re-type the
  session layer's historical ``RuntimeError``/``ValueError`` raises while
  *also* inheriting from those builtins, so existing ``except`` clauses
  (and the deprecation shims) keep working unchanged.

* **Budgets.**  A :class:`Budget` caps an evaluation by wall-clock
  ``deadline``, by ``max_worlds`` enumerated, or by ``max_block_size`` in
  the homomorphism layer.  Arming a budget (:func:`budget_scope`) plants
  a :class:`BudgetState` in a :class:`~contextvars.ContextVar`; the deep
  loops — world enumeration, the c-table operators, the homomorphism
  finder's backtracking, the chase's trigger loop — fetch it once per
  call (:func:`active_budget`) and check cooperatively.  When no budget
  is armed the fetch returns ``None`` and the loops pay one predictable
  branch per iteration, nothing more.

* **Retries.**  :func:`with_retries` re-runs a callable on *transient*
  failures with bounded exponential backoff plus jitter.  Transient, for
  the SQLite backend, means the ``SQLITE_BUSY``/``SQLITE_LOCKED`` family
  (:func:`is_transient_error`) — a malformed generated statement must
  keep failing loudly, retrying it would only mask a compiler bug.  The
  loop's shape (tries, delays, classifier) is a :class:`RetryPolicy`;
  sessions accept one via ``repro.connect(retry_policy=...)``.

* **Cancellation.**  :meth:`BudgetState.cancel` flags an armed evaluation
  from any thread; every cooperative check point then raises
  :class:`QueryCancelled` (which is *not* a :class:`BudgetExceeded` — it
  never degrades, it stops).  ``Session.cancel()`` combines this with the
  backend's ``Connection.interrupt()`` hard-cancel so even a statement
  running inside SQLite stops promptly.

* **Partial results.**  :class:`PartialResult` is what
  ``Query.certain(on_budget="partial")`` returns when a budget expires: a
  relation that is guaranteed to be a *sound subset* of the certain
  answers, flagged ``partial`` and carrying a human-readable verdict.  It
  deliberately does not compare equal to a plain relation — treating a
  lower bound as the full answer should never happen by accident.  When
  the interrupted enumeration reached a checkpoint the result also
  carries a :class:`ResumeToken`, and ``Query.certain(resume=partial)``
  continues the enumeration instead of restarting it.

* **Clocks.**  Budgets and retries take injectable clocks/sleepers so the
  fault-injection suite can test deadline behavior deterministically
  (:class:`ManualClock`).

This module depends only on the standard library, so every layer of the
package (datamodel, backends, session) can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import random
import sqlite3
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, FrozenSet, Iterator, Optional, Tuple, TypeVar

from .obs.metrics import current_metrics
from .obs.trace import current_tracer

__all__ = [
    "BackendRecoveryWarning",
    "BackendUnavailable",
    "Budget",
    "BudgetExceeded",
    "BudgetState",
    "ConfidenceInterval",
    "InvalidRequestError",
    "ManualClock",
    "PartialResult",
    "QueryCancelled",
    "ReproError",
    "ResumeToken",
    "RetryPolicy",
    "SessionClosedError",
    "WorkerPoolError",
    "active_budget",
    "budget_scope",
    "is_transient_error",
    "with_retries",
]


# ----------------------------------------------------------------------
# Exception taxonomy
# ----------------------------------------------------------------------
class ReproError(Exception):
    """Base class of every failure this library raises deliberately.

    Callers that want "anything repro can throw on purpose" catch this one
    class; the fault-injection differential suite asserts that every
    non-answer outcome is an instance of it.
    """


class BudgetExceeded(ReproError):
    """A :class:`Budget` limit was hit before the evaluation finished.

    ``resource`` names the limit: ``"deadline"``, ``"worlds"`` or
    ``"block"``.
    """

    def __init__(self, message: str, resource: Optional[str] = None) -> None:
        super().__init__(message)
        self.resource = resource
        #: When the enumeration got far enough to checkpoint before the
        #: budget expired, the checkpoint rides along on the exception so
        #: ``Query.certain(resume=...)`` can pick up where it stopped.
        self.resume_token: Optional["ResumeToken"] = None


class QueryCancelled(ReproError):
    """The evaluation was cancelled by :meth:`~repro.session.Session.cancel`.

    Deliberately *not* a :class:`BudgetExceeded`: cancellation means
    "stop now", so it never enters the degradation ladder — it propagates
    to the caller that requested the work.
    """


class BackendUnavailable(ReproError):
    """The storage backend failed and no in-memory fallback is possible.

    Raised by the session layer when a backend-resident (out-of-core)
    evaluation dies on an environmental error: with no
    :class:`~repro.datamodel.Database` object in memory there is nothing
    to recover onto.
    """


class WorkerPoolError(ReproError):
    """A ``workers=`` child failed deterministically.

    Raised only after the failing chunk has been *re-run sequentially in
    the parent* and failed again — a child that merely died (OOM-kill,
    ``BrokenProcessPool``) is recovered from silently.  ``world`` carries
    the originating possible world when the re-run identified it.
    """

    def __init__(self, message: str, world: Any = None) -> None:
        super().__init__(message)
        self.world = world


class PoolExhausted(ReproError):
    """A :meth:`repro.serve.Server.cursor` checkout timed out.

    Raised instead of blocking forever when every ``backends=`` cursor
    session is held past the checkout ``timeout=``.  The request can be
    retried; ``timeout`` carries the bound that expired.
    """

    def __init__(self, message: str, timeout: Optional[float] = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class SessionClosedError(ReproError, RuntimeError):
    """An operation was attempted on a closed :class:`~repro.session.Session`.

    Subclasses ``RuntimeError`` because that is what the session layer
    historically raised; existing ``except RuntimeError`` code keeps
    working.
    """


class InvalidRequestError(ReproError, ValueError):
    """A request the session layer rejects up front (bad engine name,
    missing database, undefined mode for the query kind, ...).

    Subclasses ``ValueError`` for the same compatibility reason as
    :class:`SessionClosedError`.
    """


class BackendRecoveryWarning(RuntimeWarning):
    """A runtime backend failure was recovered by the in-memory engine.

    Emitted at most once per session: the answers stay correct (the
    in-memory engine is the semantics oracle), but the backend's
    out-of-core and streaming benefits are gone until it heals.
    """


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
class Budget:
    """An immutable resource cap for one evaluation call.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the evaluation may run (cooperative: the deep
        loops check between cheap steps, so the overshoot is bounded by
        one step, not one world).
    max_worlds:
        Maximum number of possible worlds the enumeration strategies may
        evaluate.  With ``workers=`` fan-out the check is chunk-granular,
        so the count may overshoot by up to the in-flight window.
    max_block_size:
        Maximum null-block size (in facts) the homomorphism layer will
        search; a larger block raises instead of starting an exponential
        search.
    clock:
        Monotonic time source (seconds); defaults to
        :func:`time.monotonic`.  Tests inject :class:`ManualClock`.
    """

    __slots__ = ("deadline", "max_worlds", "max_block_size", "clock")

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_worlds: Optional[int] = None,
        max_block_size: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline!r}")
        if max_worlds is not None and max_worlds < 1:
            raise ValueError(f"max_worlds must be >= 1, got {max_worlds!r}")
        if max_block_size is not None and max_block_size < 1:
            raise ValueError(f"max_block_size must be >= 1, got {max_block_size!r}")
        self.deadline = deadline
        self.max_worlds = max_worlds
        self.max_block_size = max_block_size
        self.clock = clock if clock is not None else time.monotonic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline!r}")
        if self.max_worlds is not None:
            parts.append(f"max_worlds={self.max_worlds!r}")
        if self.max_block_size is not None:
            parts.append(f"max_block_size={self.max_block_size!r}")
        return f"Budget({', '.join(parts)})"

    def start(self) -> "BudgetState":
        """Arm the budget: start the deadline clock and the world counter."""
        return BudgetState(self)


class BudgetState:
    """One armed :class:`Budget`: mutable counters plus the expiry instant."""

    __slots__ = ("budget", "_clock", "_expires_at", "_worlds", "_cancelled")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self._clock = budget.clock
        self._expires_at = (
            None if budget.deadline is None else self._clock() + budget.deadline
        )
        self._worlds = 0
        self._cancelled = False

    @property
    def worlds(self) -> int:
        """Worlds counted so far (via :meth:`tick_world`)."""
        return self._worlds

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called (thread-safe to read)."""
        return self._cancelled

    def cancel(self) -> None:
        """Flag this evaluation for cooperative cancellation.

        Safe to call from another thread (a plain flag write): every
        budget check point — world ticks, the c-table operators, the
        backend's progress handler — turns into a
        :class:`QueryCancelled` raise at its next opportunity.
        """
        self._cancelled = True

    def remaining_time(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` when there is none."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def check(self) -> None:
        """Raise on cancellation or a passed deadline."""
        if self._cancelled:
            raise QueryCancelled("evaluation cancelled by Session.cancel()")
        if self._expires_at is not None and self._clock() >= self._expires_at:
            raise BudgetExceeded(
                f"deadline of {self.budget.deadline}s exceeded", resource="deadline"
            )

    def tick_world(self, count: int = 1) -> None:
        """Count ``count`` enumerated worlds and re-check every limit."""
        self._worlds += count
        limit = self.budget.max_worlds
        if limit is not None and self._worlds > limit:
            raise BudgetExceeded(
                f"max_worlds={limit} exceeded after {self._worlds} worlds",
                resource="worlds",
            )
        self.check()

    def check_block(self, size: int) -> None:
        """Reject a homomorphism search over a block of ``size`` facts."""
        limit = self.budget.max_block_size
        if limit is not None and size > limit:
            raise BudgetExceeded(
                f"null block of {size} facts exceeds max_block_size={limit}",
                resource="block",
            )
        self.check()


_ACTIVE_BUDGET: "ContextVar[Optional[BudgetState]]" = ContextVar(
    "repro_active_budget", default=None
)


def active_budget() -> Optional[BudgetState]:
    """The armed budget of the current context, or ``None``.

    Deep loops fetch this once per call and keep the result in a local;
    when it is ``None`` the budget machinery costs one branch per
    iteration.
    """
    return _ACTIVE_BUDGET.get()


@contextmanager
def budget_scope(state: Optional[BudgetState]) -> Iterator[Optional[BudgetState]]:
    """Make ``state`` the ambient budget for the duration of the block.

    ``None`` is accepted and means "no budget" (the scope is a no-op), so
    callers need no conditional around the ``with`` statement.
    """
    if state is None:
        yield None
        return
    token = _ACTIVE_BUDGET.set(state)
    try:
        yield state
    finally:
        _ACTIVE_BUDGET.reset(token)


# ----------------------------------------------------------------------
# Partial results and resumption tokens
# ----------------------------------------------------------------------
class ResumeToken:
    """A checkpoint of an interrupted world enumeration.

    World enumeration has a *deterministic total order* (nulls sorted by
    name, the valuation domain sorted, chunk boundaries fixed — see
    :mod:`repro.semantics.worlds`), which is what makes a plain world
    count a valid checkpoint: re-running the same ``(query, database,
    semantics, domain)`` enumerates the same worlds in the same order,
    so resumption skips exactly the worlds already intersected.

    Attributes
    ----------
    key:
        Fingerprint of the enumeration inputs (query, database facts,
        semantics, resolved domain, extra-facts cap).  ``certain(resume=)``
        refuses a token minted for different inputs — resuming a
        different enumeration would silently intersect unrelated answers.
    worlds_done:
        Worlds fully consumed before the interruption.  With ``workers=``
        fan-out the checkpoint is chunk-granular: only chunks whose
        results were folded into the intersection count.
    schema:
        Output schema observed so far (``None`` when no world finished).
    intersection:
        The running intersection over the first ``worlds_done`` worlds.
        **This is an over-approximation of the certain answers** — a
        superset, not a sound subset — which is exactly why it lives in
        the token (private resumption state) and never in
        ``PartialResult.rows``.
    kernel_epoch:
        The session's condition-kernel eviction epoch when the token was
        minted; resuming after the kernel was cleared/evicted is refused
        (interned condition identity may have changed under the session).

    Tokens pickle (all fields are plain data), so a serving tier can park
    an interrupted enumeration and resume it in another process.
    """

    __slots__ = ("key", "worlds_done", "schema", "intersection", "kernel_epoch")

    def __init__(
        self,
        key: Optional[str] = None,
        worlds_done: int = 0,
        schema: Any = None,
        intersection: Optional[FrozenSet[Tuple[Any, ...]]] = None,
        kernel_epoch: Optional[int] = None,
    ) -> None:
        self.key = key
        self.worlds_done = int(worlds_done)
        self.schema = schema
        self.intersection = None if intersection is None else frozenset(intersection)
        self.kernel_epoch = kernel_epoch

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self.key, self.worlds_done, self.schema, self.intersection,
                self.kernel_epoch)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        (self.key, self.worlds_done, self.schema, self.intersection,
         self.kernel_epoch) = state

    def __repr__(self) -> str:
        held = "no rows" if self.intersection is None else f"{len(self.intersection)} rows held"
        return f"ResumeToken({self.worlds_done} worlds done; {held})"


class PartialResult:
    """A *sound subset* of the certain answers, flagged as incomplete.

    Produced by ``Query.certain(on_budget="partial")`` when the budget
    expires: every row in :attr:`relation` is guaranteed to be a certain
    answer (soundness is inherited from the fallback that computed it),
    but more certain answers may exist.  ``verdict`` says which fallback
    ran and why.

    Deliberately *not* equal to any plain relation — code must opt in to
    treating a lower bound as an answer by reading ``.relation``/``.rows``.

    When the interrupted evaluation was an enumeration that reached a
    checkpoint, :attr:`token` carries the :class:`ResumeToken`;
    ``Query.certain(resume=partial)`` continues from it.  Both the result
    and its token survive :mod:`pickle`, so a serving tier can hand the
    partial answer to a client and resume server-side later.
    """

    __slots__ = ("relation", "verdict", "resource", "token")

    #: Class-level flag: ``getattr(result, "partial", False)`` distinguishes
    #: a degraded answer from a complete Relation without isinstance checks.
    partial = True

    def __init__(
        self,
        relation: Any,
        verdict: str,
        resource: Optional[str] = None,
        token: Optional[ResumeToken] = None,
    ) -> None:
        self.relation = relation
        self.verdict = verdict
        self.resource = resource
        self.token = token

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self.relation, self.verdict, self.resource, self.token)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self.relation, self.verdict, self.resource, self.token = state

    @property
    def schema(self) -> Any:
        return self.relation.schema

    @property
    def rows(self) -> Any:
        return self.relation.rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.relation)

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:
        return f"PartialResult({len(self.relation)} sound rows; {self.verdict})"


class ConfidenceInterval:
    """A Monte Carlo probability estimate, flagged as approximate.

    Produced when exact confidence computation (``Query.confidence()``)
    exceeds its budget and degrades to sampling: :attr:`estimate` is the
    sample mean, ``[low, high]`` a Wilson score interval at :attr:`level`
    over :attr:`samples` draws.  ``verdict`` says why the exact evaluator
    gave up (mirrors :class:`PartialResult`), ``resource`` which budget
    dimension expired.

    Deliberately *not* equal to any float — code must opt in to treating
    an estimate as a probability via ``float(interval)`` (or
    ``.estimate``); ``getattr(value, "partial", False)`` distinguishes it
    from an exact answer without isinstance checks.
    """

    __slots__ = ("estimate", "low", "high", "samples", "level", "verdict", "resource")

    #: Class-level flag, mirroring :class:`PartialResult`.
    partial = True

    def __init__(
        self,
        estimate: float,
        low: float,
        high: float,
        samples: int,
        level: float = 0.95,
        verdict: str = "monte-carlo estimate",
        resource: Optional[str] = None,
    ) -> None:
        self.estimate = float(estimate)
        self.low = float(low)
        self.high = float(high)
        self.samples = int(samples)
        self.level = float(level)
        self.verdict = verdict
        self.resource = resource

    def __float__(self) -> float:
        return self.estimate

    def __contains__(self, probability: object) -> bool:
        """Whether an (exact) probability lies inside the interval."""
        if not isinstance(probability, (int, float)):
            return False
        return self.low <= float(probability) <= self.high

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self.estimate, self.low, self.high, self.samples, self.level,
                self.verdict, self.resource)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        (self.estimate, self.low, self.high, self.samples, self.level,
         self.verdict, self.resource) = state

    def __repr__(self) -> str:
        return (
            f"ConfidenceInterval({self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @ {self.level:.0%}, "
            f"{self.samples} samples; {self.verdict})"
        )


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
#: SQLite OperationalError messages that signal a *transient* condition:
#: another connection holds a lock that will be released.  Everything else
#: (syntax errors, missing tables) must keep failing loudly.
_TRANSIENT_SQLITE_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
)

T = TypeVar("T")

#: Default retry policy (documented in docs/robustness.md): 3 retries,
#: exponential backoff 5ms → 40ms, full jitter in [delay/2, delay].
DEFAULT_RETRIES = 3
DEFAULT_BASE_DELAY = 0.005
DEFAULT_MAX_DELAY = 0.05


def is_transient_error(error: BaseException) -> bool:
    """Is ``error`` a transient SQLite condition worth retrying?

    Only the ``SQLITE_BUSY``/``SQLITE_LOCKED`` family qualifies; a
    malformed statement or a missing table is a bug and retrying it would
    only mask it — and so would retrying a disk-I/O error or a full disk
    (those are *runtime failures*, handled by the session's in-memory
    recovery, not by retrying against the same sick storage).
    """
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_SQLITE_MARKERS)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """The shape of a session's transient-failure retry loop.

    The PR-6 layer hard-coded 3 tries with a 5–40 ms exponential backoff;
    a serving tier wants this per session — a latency-critical reader may
    prefer ``retries=0`` (fail fast to a replica), a batch loader may
    tolerate seconds of lock contention.  Pass to
    ``repro.connect(retry_policy=...)`` and every ``with_retries`` site
    of the session (query execution, streaming, database refills, the 3VL
    bridge) honors it.

    ``retryable`` classifies errors; it defaults to
    :func:`is_transient_error`.  The defaults reproduce the historical
    shape exactly.
    """

    retries: int = DEFAULT_RETRIES
    base_delay: float = DEFAULT_BASE_DELAY
    max_delay: float = DEFAULT_MAX_DELAY
    retryable: Callable[[BaseException], bool] = is_transient_error

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay!r}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay!r}) must be >= base_delay "
                f"({self.base_delay!r})"
            )
        if not callable(self.retryable):
            raise ValueError("retryable must be callable")

    def delay_for(self, attempt: int) -> float:
        """The un-jittered backoff before retry number ``attempt + 1``."""
        return min(self.max_delay, self.base_delay * (2 ** attempt))


#: The historical retry shape; sessions default to this policy.
DEFAULT_RETRY_POLICY = RetryPolicy()


def with_retries(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    retryable: Callable[[BaseException], bool] = is_transient_error,
    retries: int = DEFAULT_RETRIES,
    base_delay: float = DEFAULT_BASE_DELAY,
    max_delay: float = DEFAULT_MAX_DELAY,
    sleep: Optional[Callable[[float], None]] = None,
    rng: Optional[random.Random] = None,
) -> T:
    """Call ``fn()`` and re-call it on transient failures.

    ``policy`` bundles the loop's shape as a :class:`RetryPolicy`; the
    individual keyword arguments remain for callers that tweak one knob
    (they are ignored when a policy is given).

    Backoff is exponential (``base_delay * 2**attempt``, capped at
    ``max_delay``) with full jitter in ``[delay/2, delay]`` so concurrent
    retriers do not stampede the lock in lockstep.  A non-retryable error,
    or the ``retries + 1``-th failure, propagates unchanged.  When a
    budget is armed in the current context its deadline is honored twice
    over: an expired budget stops the retry loop with
    :class:`BudgetExceeded` instead of sleeping, and every backoff sleep
    is *clamped to the remaining deadline* — a 40 ms backoff with 3 ms
    left sleeps 3 ms, so the overshoot past the deadline is bounded by
    one budget check, not one backoff.

    ``sleep`` and ``rng`` are injectable for deterministic tests.
    """
    if policy is None:
        policy = RetryPolicy(
            retries=retries,
            base_delay=base_delay,
            max_delay=max_delay,
            retryable=retryable,
        )
    if sleep is None:
        sleep = time.sleep
    draw = rng.random if rng is not None else random.random
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - classified right below
            if attempt >= policy.retries or not policy.retryable(error):
                raise
            registry = current_metrics()
            if registry is not None:
                registry.count("retry.attempts")
            tracer = current_tracer()
            if tracer is not None:
                tracer.record(
                    "retry.attempt", 0.0, attempt=attempt, error=repr(error)
                )
            state = active_budget()
            if state is not None:
                state.check()
            delay = policy.delay_for(attempt) * (0.5 + draw() / 2)
            if state is not None:
                remaining = state.remaining_time()
                if remaining is not None:
                    delay = min(delay, max(0.0, remaining))
            sleep(delay)
            attempt += 1


# ----------------------------------------------------------------------
# Deterministic clocks for tests
# ----------------------------------------------------------------------
class ManualClock:
    """A monotonic clock under test control.

    ``ManualClock()`` stands still until :meth:`advance` is called;
    ``ManualClock(step=s)`` additionally advances itself by ``s`` seconds
    on every reading, which makes "the deadline expires after N budget
    checks" a deterministic property.  Doubles as a ``sleep`` injectable:
    calling the instance with a duration advances it.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = float(start)
        self.step = float(step)

    def __call__(self, duration: Optional[float] = None) -> float:
        if duration is not None:  # used as a sleep(): advance and return
            self.now += duration
            return self.now
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        self.now += seconds
