"""Budgets, typed failures and retry/degradation plumbing.

The paper's central guarantee is *soundness*: an evaluation scheme may
return fewer answers than the true certain answers, but never wrong ones
(Section 4's ``Q(D)_cmpl ⊑ certain(Q, D)``).  That guarantee dictates how
this library handles resource exhaustion and infrastructure failure: an
evaluation that cannot finish degrades to a *cheaper sound approximation*
(or a typed error) — never to a silently incorrect result.  This module
holds the pieces every layer shares:

* **Exception taxonomy.**  :class:`ReproError` is the base class of every
  failure the library raises on purpose.  :class:`BudgetExceeded`,
  :class:`BackendUnavailable` and :class:`WorkerPoolError` are the
  resource/infrastructure failures introduced here;
  :class:`SessionClosedError` and :class:`InvalidRequestError` re-type the
  session layer's historical ``RuntimeError``/``ValueError`` raises while
  *also* inheriting from those builtins, so existing ``except`` clauses
  (and the deprecation shims) keep working unchanged.

* **Budgets.**  A :class:`Budget` caps an evaluation by wall-clock
  ``deadline``, by ``max_worlds`` enumerated, or by ``max_block_size`` in
  the homomorphism layer.  Arming a budget (:func:`budget_scope`) plants
  a :class:`BudgetState` in a :class:`~contextvars.ContextVar`; the deep
  loops — world enumeration, the c-table operators, the homomorphism
  finder's backtracking, the chase's trigger loop — fetch it once per
  call (:func:`active_budget`) and check cooperatively.  When no budget
  is armed the fetch returns ``None`` and the loops pay one predictable
  branch per iteration, nothing more.

* **Retries.**  :func:`with_retries` re-runs a callable on *transient*
  failures with bounded exponential backoff plus jitter.  Transient, for
  the SQLite backend, means the ``SQLITE_BUSY``/``SQLITE_LOCKED`` family
  (:func:`is_transient_error`) — a malformed generated statement must
  keep failing loudly, retrying it would only mask a compiler bug.

* **Partial results.**  :class:`PartialResult` is what
  ``Query.certain(on_budget="partial")`` returns when a budget expires: a
  relation that is guaranteed to be a *sound subset* of the certain
  answers, flagged ``partial`` and carrying a human-readable verdict.  It
  deliberately does not compare equal to a plain relation — treating a
  lower bound as the full answer should never happen by accident.

* **Clocks.**  Budgets and retries take injectable clocks/sleepers so the
  fault-injection suite can test deadline behavior deterministically
  (:class:`ManualClock`).

This module depends only on the standard library, so every layer of the
package (datamodel, backends, session) can import it without cycles.
"""

from __future__ import annotations

import random
import sqlite3
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Optional, Tuple, TypeVar

__all__ = [
    "BackendRecoveryWarning",
    "BackendUnavailable",
    "Budget",
    "BudgetExceeded",
    "BudgetState",
    "InvalidRequestError",
    "ManualClock",
    "PartialResult",
    "ReproError",
    "SessionClosedError",
    "WorkerPoolError",
    "active_budget",
    "budget_scope",
    "is_transient_error",
    "with_retries",
]


# ----------------------------------------------------------------------
# Exception taxonomy
# ----------------------------------------------------------------------
class ReproError(Exception):
    """Base class of every failure this library raises deliberately.

    Callers that want "anything repro can throw on purpose" catch this one
    class; the fault-injection differential suite asserts that every
    non-answer outcome is an instance of it.
    """


class BudgetExceeded(ReproError):
    """A :class:`Budget` limit was hit before the evaluation finished.

    ``resource`` names the limit: ``"deadline"``, ``"worlds"`` or
    ``"block"``.
    """

    def __init__(self, message: str, resource: Optional[str] = None) -> None:
        super().__init__(message)
        self.resource = resource


class BackendUnavailable(ReproError):
    """The storage backend failed and no in-memory fallback is possible.

    Raised by the session layer when a backend-resident (out-of-core)
    evaluation dies on an environmental error: with no
    :class:`~repro.datamodel.Database` object in memory there is nothing
    to recover onto.
    """


class WorkerPoolError(ReproError):
    """A ``workers=`` child failed deterministically.

    Raised only after the failing chunk has been *re-run sequentially in
    the parent* and failed again — a child that merely died (OOM-kill,
    ``BrokenProcessPool``) is recovered from silently.  ``world`` carries
    the originating possible world when the re-run identified it.
    """

    def __init__(self, message: str, world: Any = None) -> None:
        super().__init__(message)
        self.world = world


class SessionClosedError(ReproError, RuntimeError):
    """An operation was attempted on a closed :class:`~repro.session.Session`.

    Subclasses ``RuntimeError`` because that is what the session layer
    historically raised; existing ``except RuntimeError`` code keeps
    working.
    """


class InvalidRequestError(ReproError, ValueError):
    """A request the session layer rejects up front (bad engine name,
    missing database, undefined mode for the query kind, ...).

    Subclasses ``ValueError`` for the same compatibility reason as
    :class:`SessionClosedError`.
    """


class BackendRecoveryWarning(RuntimeWarning):
    """A runtime backend failure was recovered by the in-memory engine.

    Emitted at most once per session: the answers stay correct (the
    in-memory engine is the semantics oracle), but the backend's
    out-of-core and streaming benefits are gone until it heals.
    """


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
class Budget:
    """An immutable resource cap for one evaluation call.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the evaluation may run (cooperative: the deep
        loops check between cheap steps, so the overshoot is bounded by
        one step, not one world).
    max_worlds:
        Maximum number of possible worlds the enumeration strategies may
        evaluate.  With ``workers=`` fan-out the check is chunk-granular,
        so the count may overshoot by up to the in-flight window.
    max_block_size:
        Maximum null-block size (in facts) the homomorphism layer will
        search; a larger block raises instead of starting an exponential
        search.
    clock:
        Monotonic time source (seconds); defaults to
        :func:`time.monotonic`.  Tests inject :class:`ManualClock`.
    """

    __slots__ = ("deadline", "max_worlds", "max_block_size", "clock")

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_worlds: Optional[int] = None,
        max_block_size: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline!r}")
        if max_worlds is not None and max_worlds < 1:
            raise ValueError(f"max_worlds must be >= 1, got {max_worlds!r}")
        if max_block_size is not None and max_block_size < 1:
            raise ValueError(f"max_block_size must be >= 1, got {max_block_size!r}")
        self.deadline = deadline
        self.max_worlds = max_worlds
        self.max_block_size = max_block_size
        self.clock = clock if clock is not None else time.monotonic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline!r}")
        if self.max_worlds is not None:
            parts.append(f"max_worlds={self.max_worlds!r}")
        if self.max_block_size is not None:
            parts.append(f"max_block_size={self.max_block_size!r}")
        return f"Budget({', '.join(parts)})"

    def start(self) -> "BudgetState":
        """Arm the budget: start the deadline clock and the world counter."""
        return BudgetState(self)


class BudgetState:
    """One armed :class:`Budget`: mutable counters plus the expiry instant."""

    __slots__ = ("budget", "_clock", "_expires_at", "_worlds")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self._clock = budget.clock
        self._expires_at = (
            None if budget.deadline is None else self._clock() + budget.deadline
        )
        self._worlds = 0

    @property
    def worlds(self) -> int:
        """Worlds counted so far (via :meth:`tick_world`)."""
        return self._worlds

    def remaining_time(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` when there is none."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the deadline has passed."""
        if self._expires_at is not None and self._clock() >= self._expires_at:
            raise BudgetExceeded(
                f"deadline of {self.budget.deadline}s exceeded", resource="deadline"
            )

    def tick_world(self, count: int = 1) -> None:
        """Count ``count`` enumerated worlds and re-check every limit."""
        self._worlds += count
        limit = self.budget.max_worlds
        if limit is not None and self._worlds > limit:
            raise BudgetExceeded(
                f"max_worlds={limit} exceeded after {self._worlds} worlds",
                resource="worlds",
            )
        self.check()

    def check_block(self, size: int) -> None:
        """Reject a homomorphism search over a block of ``size`` facts."""
        limit = self.budget.max_block_size
        if limit is not None and size > limit:
            raise BudgetExceeded(
                f"null block of {size} facts exceeds max_block_size={limit}",
                resource="block",
            )
        self.check()


_ACTIVE_BUDGET: "ContextVar[Optional[BudgetState]]" = ContextVar(
    "repro_active_budget", default=None
)


def active_budget() -> Optional[BudgetState]:
    """The armed budget of the current context, or ``None``.

    Deep loops fetch this once per call and keep the result in a local;
    when it is ``None`` the budget machinery costs one branch per
    iteration.
    """
    return _ACTIVE_BUDGET.get()


@contextmanager
def budget_scope(state: Optional[BudgetState]) -> Iterator[Optional[BudgetState]]:
    """Make ``state`` the ambient budget for the duration of the block.

    ``None`` is accepted and means "no budget" (the scope is a no-op), so
    callers need no conditional around the ``with`` statement.
    """
    if state is None:
        yield None
        return
    token = _ACTIVE_BUDGET.set(state)
    try:
        yield state
    finally:
        _ACTIVE_BUDGET.reset(token)


# ----------------------------------------------------------------------
# Partial results
# ----------------------------------------------------------------------
class PartialResult:
    """A *sound subset* of the certain answers, flagged as incomplete.

    Produced by ``Query.certain(on_budget="partial")`` when the budget
    expires: every row in :attr:`relation` is guaranteed to be a certain
    answer (soundness is inherited from the fallback that computed it),
    but more certain answers may exist.  ``verdict`` says which fallback
    ran and why.

    Deliberately *not* equal to any plain relation — code must opt in to
    treating a lower bound as an answer by reading ``.relation``/``.rows``.
    """

    __slots__ = ("relation", "verdict", "resource")

    #: Class-level flag: ``getattr(result, "partial", False)`` distinguishes
    #: a degraded answer from a complete Relation without isinstance checks.
    partial = True

    def __init__(self, relation: Any, verdict: str, resource: Optional[str] = None) -> None:
        self.relation = relation
        self.verdict = verdict
        self.resource = resource

    @property
    def schema(self) -> Any:
        return self.relation.schema

    @property
    def rows(self) -> Any:
        return self.relation.rows

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.relation)

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:
        return f"PartialResult({len(self.relation)} sound rows; {self.verdict})"


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
#: SQLite OperationalError messages that signal a *transient* condition:
#: another connection holds a lock that will be released.  Everything else
#: (syntax errors, missing tables) must keep failing loudly.
_TRANSIENT_SQLITE_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
)

T = TypeVar("T")

#: Default retry policy (documented in docs/robustness.md): 3 retries,
#: exponential backoff 5ms → 40ms, full jitter in [delay/2, delay].
DEFAULT_RETRIES = 3
DEFAULT_BASE_DELAY = 0.005
DEFAULT_MAX_DELAY = 0.05


def is_transient_error(error: BaseException) -> bool:
    """Is ``error`` a transient SQLite condition worth retrying?

    Only the ``SQLITE_BUSY``/``SQLITE_LOCKED`` family qualifies; a
    malformed statement or a missing table is a bug and retrying it would
    only mask it.
    """
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_SQLITE_MARKERS)


def with_retries(
    fn: Callable[[], T],
    *,
    retryable: Callable[[BaseException], bool] = is_transient_error,
    retries: int = DEFAULT_RETRIES,
    base_delay: float = DEFAULT_BASE_DELAY,
    max_delay: float = DEFAULT_MAX_DELAY,
    sleep: Optional[Callable[[float], None]] = None,
    rng: Optional[random.Random] = None,
) -> T:
    """Call ``fn()`` and re-call it on transient failures.

    Backoff is exponential (``base_delay * 2**attempt``, capped at
    ``max_delay``) with full jitter in ``[delay/2, delay]`` so concurrent
    retriers do not stampede the lock in lockstep.  A non-retryable error,
    or the ``retries + 1``-th failure, propagates unchanged.  When a
    budget is armed in the current context its deadline is honored: an
    expired budget stops the retry loop with :class:`BudgetExceeded`
    instead of sleeping past it.

    ``sleep`` and ``rng`` are injectable for deterministic tests.
    """
    if sleep is None:
        sleep = time.sleep
    draw = rng.random if rng is not None else random.random
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - classified right below
            if attempt >= retries or not retryable(error):
                raise
            state = active_budget()
            if state is not None:
                state.check()
            delay = min(max_delay, base_delay * (2 ** attempt))
            sleep(delay * (0.5 + draw() / 2))
            attempt += 1


# ----------------------------------------------------------------------
# Deterministic clocks for tests
# ----------------------------------------------------------------------
class ManualClock:
    """A monotonic clock under test control.

    ``ManualClock()`` stands still until :meth:`advance` is called;
    ``ManualClock(step=s)`` additionally advances itself by ``s`` seconds
    on every reading, which makes "the deadline expires after N budget
    checks" a deterministic property.  Doubles as a ``sleep`` injectable:
    calling the instance with a duration advances it.
    """

    __slots__ = ("now", "step")

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = float(start)
        self.step = float(step)

    def __call__(self, duration: Optional[float] = None) -> float:
        if duration is not None:  # used as a sleep(): advance and return
            self.now += duration
            return self.now
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        self.now += seconds
