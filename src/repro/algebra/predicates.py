"""Selection predicates for relational-algebra expressions.

Predicates are Boolean combinations of comparisons between *terms*, where a
term is either an attribute reference or a constant.  They are evaluated
against a single tuple (plus the schema used to resolve attribute names).

Two evaluation regimes are provided:

* :meth:`Predicate.holds` — ordinary two-valued evaluation.  This is what
  standard evaluation on complete databases uses, and also what *naive
  evaluation* uses on databases with nulls: a marked null is treated as a
  regular value, equal to itself and different from every constant and
  every other null.
* :meth:`Predicate.holds3` — SQL-style three-valued evaluation, returning
  ``True``, ``False`` or ``None`` (unknown).  Any comparison with at least
  one null operand is unknown; the connectives follow Kleene's strong
  three-valued logic.  The SQL layer builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Set, Tuple, Union

from ..datamodel import Null, is_null
from ..datamodel.schema import RelationSchema

ThreeValued = Optional[bool]
"""Three-valued truth value: ``True``, ``False`` or ``None`` (unknown)."""


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Attr:
    """A reference to an attribute, by name (``"price"``) or position (``1``)."""

    ref: Union[str, int]

    def resolve(self, schema: RelationSchema) -> int:
        """Position of the referenced attribute in ``schema``."""
        return schema.index_of(self.ref)

    def value(self, row: Sequence[Any], schema: RelationSchema) -> Any:
        """The value of this attribute in ``row``."""
        return row[self.resolve(schema)]

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class Const:
    """A constant term."""

    value: Any

    def __post_init__(self) -> None:
        if self.value is None:
            raise TypeError("None is not a valid constant; use repro.Null() for nulls")

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Attr, Const]


def _coerce_term(term: Any) -> Term:
    """Accept ``Attr``/``Const`` objects or raw Python values as terms.

    Raw strings starting with ``#`` and raw integers are *not* auto-coerced
    to attribute references to avoid ambiguity; use :class:`Attr` explicitly
    in programmatic query construction (the RA parser does this for you).
    """
    if isinstance(term, (Attr, Const)):
        return term
    return Const(term)


def _term_value(term: Term, row: Sequence[Any], schema: RelationSchema) -> Any:
    if isinstance(term, Attr):
        return term.value(row, schema)
    return term.value


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
class Predicate:
    """Base class of selection predicates."""

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        """Two-valued truth of the predicate on ``row`` (naive/standard mode)."""
        raise NotImplementedError

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        """Three-valued (SQL) truth of the predicate on ``row``."""
        raise NotImplementedError

    def attributes(self) -> Set[Union[str, int]]:
        """Attribute references mentioned by the predicate."""
        raise NotImplementedError

    def constants(self) -> Set[Any]:
        """Constants mentioned by the predicate."""
        raise NotImplementedError

    def is_equality_only(self) -> bool:
        """``True`` iff the predicate uses only ``=``/``≠`` comparisons."""
        raise NotImplementedError

    def is_positive(self) -> bool:
        """``True`` iff the predicate uses neither negation nor ``≠``/order.

        Positive predicates are the ones allowed in the positive relational
        algebra (selections with equality conditions combined with ∧/∨).
        """
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return PAnd((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return POr((self, other))

    def __invert__(self) -> "Predicate":
        return PNot(self)


_OPERATORS: dict = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


@dataclass(frozen=True)
class Comparison(Predicate):
    """An atomic comparison ``left op right`` with ``op ∈ {=, !=, <, <=, >, >=}``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        object.__setattr__(self, "left", _coerce_term(self.left))
        object.__setattr__(self, "right", _coerce_term(self.right))

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        left = _term_value(self.left, row, schema)
        right = _term_value(self.right, row, schema)
        if self.op in ("=", "!="):
            return _OPERATORS[self.op](left, right)
        if is_null(left) or is_null(right):
            raise TypeError(
                f"order comparison {self.op!r} is undefined on nulls under naive "
                "evaluation; use SQL three-valued evaluation instead"
            )
        return _OPERATORS[self.op](left, right)

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        left = _term_value(self.left, row, schema)
        right = _term_value(self.right, row, schema)
        if is_null(left) or is_null(right):
            return None
        return _OPERATORS[self.op](left, right)

    def attributes(self) -> Set[Union[str, int]]:
        return {t.ref for t in (self.left, self.right) if isinstance(t, Attr)}

    def constants(self) -> Set[Any]:
        return {t.value for t in (self.left, self.right) if isinstance(t, Const)}

    def is_equality_only(self) -> bool:
        return self.op in ("=", "!=")

    def is_positive(self) -> bool:
        return self.op == "="

    def negate(self) -> "Comparison":
        """The comparison with the complementary operator."""
        return Comparison(self.left, _NEGATED_OP[self.op], self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class PTrue(Predicate):
    """The always-true predicate."""

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        return True

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        return True

    def attributes(self) -> Set[Union[str, int]]:
        return set()

    def constants(self) -> Set[Any]:
        return set()

    def is_equality_only(self) -> bool:
        return True

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PAnd(Predicate):
    """Conjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def __init__(self, operands: Iterable[Predicate]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        return all(op.holds(row, schema) for op in self.operands)

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        return kleene_and(op.holds3(row, schema) for op in self.operands)

    def attributes(self) -> Set[Union[str, int]]:
        return set().union(*(op.attributes() for op in self.operands)) if self.operands else set()

    def constants(self) -> Set[Any]:
        return set().union(*(op.constants() for op in self.operands)) if self.operands else set()

    def is_equality_only(self) -> bool:
        return all(op.is_equality_only() for op in self.operands)

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " and ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class POr(Predicate):
    """Disjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def __init__(self, operands: Iterable[Predicate]) -> None:
        object.__setattr__(self, "operands", tuple(operands))

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        return any(op.holds(row, schema) for op in self.operands)

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        return kleene_or(op.holds3(row, schema) for op in self.operands)

    def attributes(self) -> Set[Union[str, int]]:
        return set().union(*(op.attributes() for op in self.operands)) if self.operands else set()

    def constants(self) -> Set[Any]:
        return set().union(*(op.constants() for op in self.operands)) if self.operands else set()

    def is_equality_only(self) -> bool:
        return all(op.is_equality_only() for op in self.operands)

    def is_positive(self) -> bool:
        return all(op.is_positive() for op in self.operands)

    def __str__(self) -> str:
        return " or ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class PNot(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def holds(self, row: Sequence[Any], schema: RelationSchema) -> bool:
        return not self.operand.holds(row, schema)

    def holds3(self, row: Sequence[Any], schema: RelationSchema) -> ThreeValued:
        return kleene_not(self.operand.holds3(row, schema))

    def attributes(self) -> Set[Union[str, int]]:
        return self.operand.attributes()

    def constants(self) -> Set[Any]:
        return self.operand.constants()

    def is_equality_only(self) -> bool:
        return self.operand.is_equality_only()

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"not ({self.operand})"


# ----------------------------------------------------------------------
# Kleene three-valued connectives
# ----------------------------------------------------------------------
def kleene_and(values: Iterable[ThreeValued]) -> ThreeValued:
    """Kleene conjunction: false dominates, otherwise unknown dominates."""
    result: ThreeValued = True
    for value in values:
        if value is False:
            return False
        if value is None:
            result = None
    return result


def kleene_or(values: Iterable[ThreeValued]) -> ThreeValued:
    """Kleene disjunction: true dominates, otherwise unknown dominates."""
    result: ThreeValued = False
    for value in values:
        if value is True:
            return True
        if value is None:
            result = None
    return result


def kleene_not(value: ThreeValued) -> ThreeValued:
    """Kleene negation: unknown stays unknown."""
    if value is None:
        return None
    return not value


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def eq(left: Any, right: Any) -> Comparison:
    """``left = right`` with raw values coerced to constants."""
    return Comparison(left, "=", right)


def neq(left: Any, right: Any) -> Comparison:
    """``left != right``."""
    return Comparison(left, "!=", right)


def attr(ref: Union[str, int]) -> Attr:
    """Shorthand for :class:`Attr`."""
    return Attr(ref)


def const(value: Any) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)
