"""The Imieliński–Lipski algebra on conditional tables.

Conditional tables form a *strong representation system* for full
relational algebra under the closed-world semantics (paper, Section 2):
for every RA query ``Q`` and c-table database ``T`` one can compute a
c-table ``Q̂(T)`` with ``[[Q̂(T)]]_cwa = Q([[T]]_cwa)``.  This module
implements that algebra:

* selection adds the selection condition (instantiated with the tuple's
  values, which may be nulls) to each local condition;
* projection and product/join behave positionally, conjoining conditions;
* union concatenates;
* intersection and difference introduce conditions quantifying over the
  rows of the other table (``t ∈ T₁ − T₂`` holds when ``t``'s condition
  holds and no row of ``T₂`` both holds and equals ``t``);
* division is rewritten into projection, product and difference.

The experiments validate the construction against explicit possible-world
enumeration (``[[Q̂(T)]]_cwa`` vs ``{Q(D') | D' ∈ [[T]]_cwa}``) and the
benchmarks show the complexity gap between the two.
"""

from __future__ import annotations

from heapq import merge as _heapq_merge
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Condition,
    ConditionalRow,
    ConditionalTable,
    Database,
    Eq,
    FalseCondition,
    Not,
    Relation,
    TRUE,
    conjunction,
    disjunction,
    row_equality,
)
from ..datamodel.conditional import And, Or, TrueCondition
from ..datamodel.schema import DatabaseSchema, RelationSchema
from ..datamodel.values import Null, is_null
from .ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
)
from .predicates import Attr, Comparison, Const, PAnd, PNot, POr, Predicate, PTrue


class CTableDatabase:
    """A database whose relations are conditional tables.

    Lifting a naive database gives each tuple the condition ``true``; the
    interesting c-tables are produced by the algebra itself or built by
    hand (e.g. the paper's disjunctive example).
    """

    def __init__(self, tables: Iterable[ConditionalTable]) -> None:
        self._tables: Dict[str, ConditionalTable] = {}
        for table in tables:
            if table.name in self._tables:
                raise ValueError(f"duplicate conditional table {table.name!r}")
            self._tables[table.name] = table

    @classmethod
    def from_database(cls, database: Database) -> "CTableDatabase":
        """Lift every relation of a naive database to an all-true c-table."""
        return cls(ConditionalTable.from_relation(rel) for rel in database.relations())

    @property
    def schema(self) -> DatabaseSchema:
        """The relational schema of the underlying tables."""
        return DatabaseSchema(table.schema for table in self._tables.values())

    def table(self, name: str) -> ConditionalTable:
        """The conditional table assigned to ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown conditional table {name!r}") from None

    def __getitem__(self, name: str) -> ConditionalTable:
        return self.table(name)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[ConditionalTable]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def nulls(self) -> Set[Null]:
        """All nulls mentioned by any table (tuples and conditions)."""
        result: Set[Null] = set()
        for table in self._tables.values():
            result |= table.nulls()
        return result

    def constants(self) -> Set[Any]:
        """All constants mentioned in tuples."""
        result: Set[Any] = set()
        for table in self._tables.values():
            result |= table.constants()
        return result

    def active_domain(self) -> Set[Any]:
        """Constants and nulls occurring in tuples."""
        result: Set[Any] = set(self.constants())
        for table in self._tables.values():
            for row in table:
                result.update(v for v in row.values if is_null(v))
        return result

    def global_condition(self) -> Condition:
        """The conjunction of all tables' global conditions."""
        return conjunction(table.global_condition for table in self._tables.values())

    def possible_worlds(self, domain: Sequence[Any]) -> Set[Tuple[Tuple[str, frozenset], ...]]:
        """All worlds of the whole database, as sorted tuples of (name, rows)."""
        from ..datamodel.valuation import enumerate_valuations

        worlds: Set[Tuple[Tuple[str, frozenset], ...]] = set()
        global_cond = self.global_condition()
        for valuation in enumerate_valuations(self.nulls(), domain):
            if not global_cond.evaluate(valuation):
                continue
            world = []
            for name in sorted(self._tables):
                instantiated = self._tables[name].instantiate(valuation)
                assert instantiated is not None  # global condition already checked
                world.append((name, frozenset(instantiated.rows)))
            worlds.add(tuple(world))
        return worlds


def _merge_sorted(a: Sequence[int], b: Sequence[int]) -> Iterable[int]:
    """Lazily merge two ascending index sequences.

    Replaces the per-probe ``sorted(list_a + list_b)`` rebuild in the join
    and membership hot paths: both inputs are built in ascending position
    order, so a linear merge preserves the nested-loop output order without
    allocating and re-sorting a fresh list per row.
    """
    if not a:
        return b
    if not b:
        return a
    return _heapq_merge(a, b)


# ----------------------------------------------------------------------
# Predicate → condition translation
# ----------------------------------------------------------------------
def _term_value(term: Any, row: Sequence[Any], schema: RelationSchema) -> Any:
    if isinstance(term, Attr):
        return row[term.resolve(schema)]
    if isinstance(term, Const):
        return term.value
    return term


def predicate_condition(predicate: Predicate, row: Sequence[Any], schema: RelationSchema) -> Condition:
    """The condition expressing that ``predicate`` holds on the (possibly null) ``row``."""
    if isinstance(predicate, PTrue):
        return TRUE
    if isinstance(predicate, Comparison):
        left = _term_value(predicate.left, row, schema)
        right = _term_value(predicate.right, row, schema)
        if predicate.op == "=":
            return Eq(left, right).simplify()
        if predicate.op == "!=":
            return Not(Eq(left, right)).simplify()
        if is_null(left) or is_null(right):
            raise ValueError(
                f"order comparison {predicate.op!r} on nulls is not expressible as a "
                "c-table condition (conditions are equality-based)"
            )
        from ..datamodel.conditional import FALSE

        return TRUE if predicate.holds(row, schema) else FALSE
    if isinstance(predicate, PAnd):
        return conjunction(predicate_condition(op, row, schema) for op in predicate.operands)
    if isinstance(predicate, POr):
        return disjunction(predicate_condition(op, row, schema) for op in predicate.operands)
    if isinstance(predicate, PNot):
        return Not(predicate_condition(predicate.operand, row, schema)).simplify()
    raise TypeError(f"unsupported predicate {predicate!r}")


# ----------------------------------------------------------------------
# The algebra
# ----------------------------------------------------------------------
def ctable_evaluate(
    expression: RAExpression, database: CTableDatabase, engine: Optional[str] = None
) -> ConditionalTable:
    """Evaluate an RA expression over a c-table database, producing a c-table.

    The result's global condition is the conjunction of the global
    conditions of the base tables, so ``result.possible_worlds(domain)``
    ranges over exactly the worlds admitted by the input database.

    ``engine`` selects the execution path, mirroring
    :meth:`RAExpression.evaluate`:

    * ``"plan"`` (the default) — compile through the physical planner
      (:mod:`repro.engine.ctable`): selection pushdown and
      cardinality-ordered multijoins over conditional rows, with every
      condition composed through the hash-consed kernel;
    * ``"interpreter"`` — the original tree-walking algebra below, kept
      as the differential-testing oracle.

    Both paths represent the same set of possible worlds; the planned
    path may return syntactically different (but equivalent) conditions
    and row order.
    """
    from .. import engine as _engine

    mode = engine if engine is not None else _engine.get_default_engine()
    if mode == "sqlite":
        # The SQL backend covers complete-relation evaluation only;
        # c-tables keep using the planned in-memory path when the
        # process-wide default engine is "sqlite".
        mode = "plan"
    if mode == "interpreter":
        schema = database.schema
        result = _evaluate(expression, database, schema)
        return result.with_global(database.global_condition()).simplified()
    if mode == "plan":
        return _engine.execute_ctable(expression, database)
    raise ValueError(f"unknown engine {mode!r}; expected 'plan' or 'interpreter'")


def _evaluate(
    expression: RAExpression, database: CTableDatabase, schema: DatabaseSchema
) -> ConditionalTable:
    if isinstance(expression, RelationRef):
        return database.table(expression.name)
    if isinstance(expression, ConstantRelation):
        return ConditionalTable.from_relation(expression.relation)
    if isinstance(expression, Delta):
        out_schema = expression.output_schema(schema)
        rows = [ConditionalRow((v, v), TRUE) for v in sorted(database.active_domain(), key=str)]
        return ConditionalTable(out_schema, rows)
    if isinstance(expression, ActiveDomain):
        out_schema = expression.output_schema(schema)
        rows = [ConditionalRow((v,), TRUE) for v in sorted(database.active_domain(), key=str)]
        return ConditionalTable(out_schema, rows)
    if isinstance(expression, Selection):
        return _selection(expression, database, schema)
    if isinstance(expression, Projection):
        return _projection(expression, database, schema)
    if isinstance(expression, Rename):
        child = _evaluate(expression.child, database, schema)
        return ConditionalTable(expression.output_schema(schema), child.rows, child.global_condition)
    if isinstance(expression, Product):
        return _product(expression, database, schema)
    if isinstance(expression, NaturalJoin):
        return _natural_join(expression, database, schema)
    if isinstance(expression, Union_):
        return _union(expression, database, schema)
    if isinstance(expression, Intersection):
        return _intersection(expression, database, schema)
    if isinstance(expression, Difference):
        return _difference(expression, database, schema)
    if isinstance(expression, Division):
        return _division(expression, database, schema)
    raise TypeError(f"unsupported RA node for c-table evaluation: {expression!r}")


def _selection(expression: Selection, database: CTableDatabase, schema: DatabaseSchema) -> ConditionalTable:
    child = _evaluate(expression.child, database, schema)
    out_schema = expression.output_schema(schema)
    rows: List[ConditionalRow] = []
    for row in child:
        extra = predicate_condition(expression.predicate, row.values, child.schema)
        condition = conjunction((row.condition, extra))
        if isinstance(condition, FalseCondition):
            continue
        rows.append(ConditionalRow(row.values, condition))
    return ConditionalTable(out_schema, rows, child.global_condition)


def _projection(expression: Projection, database: CTableDatabase, schema: DatabaseSchema) -> ConditionalTable:
    child = _evaluate(expression.child, database, schema)
    positions = [child.schema.index_of(a) for a in expression.attributes]
    out_schema = expression.output_schema(schema)
    rows = [
        ConditionalRow(tuple(row.values[p] for p in positions), row.condition) for row in child
    ]
    return ConditionalTable(out_schema, rows, child.global_condition)


def _product(expression: Product, database: CTableDatabase, schema: DatabaseSchema) -> ConditionalTable:
    left = _evaluate(expression.left, database, schema)
    right = _evaluate(expression.right, database, schema)
    out_schema = expression.output_schema(schema)
    rows = []
    for l_row in left:
        for r_row in right:
            condition = conjunction((l_row.condition, r_row.condition))
            if isinstance(condition, FalseCondition):
                continue
            rows.append(ConditionalRow(l_row.values + r_row.values, condition))
    global_condition = conjunction((left.global_condition, right.global_condition))
    return ConditionalTable(out_schema, rows, global_condition)


def _natural_join(
    expression: NaturalJoin, database: CTableDatabase, schema: DatabaseSchema
) -> ConditionalTable:
    left = _evaluate(expression.left, database, schema)
    right = _evaluate(expression.right, database, schema)
    left_schema = expression.left.output_schema(schema)
    right_schema = expression.right.output_schema(schema)
    shared = [name for name in right_schema.attributes if name in left_schema.attributes]
    join_pairs = [(left_schema.index_of(n), right_schema.index_of(n)) for n in shared]
    right_keep = [i for i, name in enumerate(right_schema.attributes) if name not in left_schema.attributes]
    out_schema = expression.output_schema(schema)

    # Hash-partition the right rows by their join-key values.  A pair whose
    # keys are all constants but differ can only produce an equality
    # condition that simplifies to false, so it is skipped wholesale; only
    # rows with a null in some join column must be paired with everything
    # (the null may still equal any value under some valuation).  Row order
    # of the output matches the nested-loop formulation.
    keyed: Dict[Tuple[Any, ...], List[int]] = {}
    null_key_indices: List[int] = []
    right_rows = list(right)
    for position, r_row in enumerate(right_rows):
        key = tuple(r_row.values[j] for _, j in join_pairs)
        if any(is_null(v) for v in key):
            null_key_indices.append(position)
        else:
            keyed.setdefault(key, []).append(position)

    rows = []
    for l_row in left:
        l_key = tuple(l_row.values[i] for i, _ in join_pairs)
        if join_pairs and not any(is_null(v) for v in l_key):
            candidates = _merge_sorted(keyed.get(l_key, ()), null_key_indices)
        else:
            candidates = range(len(right_rows))
        for position in candidates:
            r_row = right_rows[position]
            equalities = conjunction(
                Eq(l_row.values[i], r_row.values[j]) for i, j in join_pairs
            )
            condition = conjunction((l_row.condition, r_row.condition, equalities))
            if isinstance(condition, FalseCondition):
                continue
            values = l_row.values + tuple(r_row.values[i] for i in right_keep)
            rows.append(ConditionalRow(values, condition))
    global_condition = conjunction((left.global_condition, right.global_condition))
    return ConditionalTable(out_schema, rows, global_condition)


def _union(expression: Union_, database: CTableDatabase, schema: DatabaseSchema) -> ConditionalTable:
    left = _evaluate(expression.left, database, schema)
    right = _evaluate(expression.right, database, schema)
    out_schema = expression.output_schema(schema)
    rows = list(left.rows) + [ConditionalRow(row.values, row.condition) for row in right]
    global_condition = conjunction((left.global_condition, right.global_condition))
    return ConditionalTable(out_schema, rows, global_condition)


def _membership_condition(values: Tuple[Any, ...], table: ConditionalTable) -> Condition:
    """The condition "``values`` is a tuple of ``table``" (some row holds and equals it)."""
    return disjunction(
        conjunction((row.condition, row_equality(values, row.values))) for row in table
    )


class _MembershipIndex:
    """Hash index over a c-table for building membership conditions.

    Rows whose values are all constants are keyed by their value tuple; a
    constant probe tuple can only equal those rows that match exactly plus
    the rows mentioning a null somewhere (which may coincide with anything
    under some valuation).  Every other pairing would contribute a
    ``false`` disjunct, so skipping it leaves the condition unchanged.
    """

    __slots__ = ("rows", "keyed", "null_rows")

    def __init__(self, table: ConditionalTable) -> None:
        self.rows: List[ConditionalRow] = list(table)
        self.keyed: Dict[Tuple[Any, ...], List[int]] = {}
        self.null_rows: List[int] = []
        for position, row in enumerate(self.rows):
            if any(is_null(v) for v in row.values):
                self.null_rows.append(position)
            else:
                self.keyed.setdefault(row.values, []).append(position)

    def condition(self, values: Tuple[Any, ...]) -> Condition:
        """Same condition as :func:`_membership_condition` against the table."""
        if any(is_null(v) for v in values):
            relevant: Iterable[int] = range(len(self.rows))
        else:
            relevant = _merge_sorted(self.keyed.get(tuple(values), ()), self.null_rows)
        return disjunction(
            conjunction((self.rows[i].condition, row_equality(values, self.rows[i].values)))
            for i in relevant
        )


def _intersection(
    expression: Intersection, database: CTableDatabase, schema: DatabaseSchema
) -> ConditionalTable:
    left = _evaluate(expression.left, database, schema)
    right = _evaluate(expression.right, database, schema)
    out_schema = expression.output_schema(schema)
    membership = _MembershipIndex(right)
    rows = []
    for row in left:
        condition = conjunction((row.condition, membership.condition(row.values)))
        if isinstance(condition, FalseCondition):
            continue
        rows.append(ConditionalRow(row.values, condition))
    global_condition = conjunction((left.global_condition, right.global_condition))
    return ConditionalTable(out_schema, rows, global_condition)


def _difference(
    expression: Difference, database: CTableDatabase, schema: DatabaseSchema
) -> ConditionalTable:
    left = _evaluate(expression.left, database, schema)
    right = _evaluate(expression.right, database, schema)
    out_schema = expression.output_schema(schema)
    membership = _MembershipIndex(right)
    rows = []
    for row in left:
        not_in_right = Not(membership.condition(row.values)).simplify()
        condition = conjunction((row.condition, not_in_right))
        if isinstance(condition, FalseCondition):
            continue
        rows.append(ConditionalRow(row.values, condition))
    global_condition = conjunction((left.global_condition, right.global_condition))
    return ConditionalTable(out_schema, rows, global_condition)


def _division(expression: Division, database: CTableDatabase, schema: DatabaseSchema) -> ConditionalTable:
    from .ast import expand_division

    rewritten = expand_division(expression, schema)
    result = _evaluate(rewritten, database, schema)
    return ConditionalTable(expression.output_schema(schema), result.rows, result.global_condition)
