"""Relational algebra over complete and incomplete databases.

Contents:

* :mod:`repro.algebra.ast` — expression trees (σ, π, ×, ⋈, ∪, −, ∩, ÷, ρ,
  Δ, adom) with standard/naive evaluation;
* :mod:`repro.algebra.predicates` — selection predicates with two-valued
  and SQL three-valued evaluation;
* :mod:`repro.algebra.naive` — naive evaluation and the ``Q(D)_cmpl``
  certain-answer recipe of the paper's eq. (4);
* :mod:`repro.algebra.ra_cwa` — the positive, RA(Δ,π,×,∪) and ``RA_cwa``
  fragments of Section 6.2;
* :mod:`repro.algebra.ctable_algebra` — the Imieliński–Lipski algebra on
  conditional tables (strong representation system under CWA);
* :mod:`repro.algebra.parser` — a small textual syntax for RA expressions.
"""

from .ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
    difference,
    divide,
    intersection,
    join,
    product,
    project,
    relation,
    rename,
    select,
    union,
)
from .ctable_algebra import CTableDatabase, ctable_evaluate, predicate_condition
from .naive import (
    naive_boolean,
    naive_certain_answers,
    naive_evaluate,
    naive_object_answer,
)
from .parser import RAParseError, parse_predicate, parse_ra
from .predicates import (
    Attr,
    Comparison,
    Const,
    PAnd,
    PNot,
    POr,
    PTrue,
    Predicate,
    attr,
    const,
    eq,
    kleene_and,
    kleene_not,
    kleene_or,
    neq,
)
from .ra_cwa import (
    Fragment,
    classify,
    is_delta_fragment,
    is_positive,
    is_ra_cwa,
    uses_difference,
    uses_division,
)

__all__ = [
    "ActiveDomain",
    "Attr",
    "CTableDatabase",
    "Comparison",
    "Const",
    "ConstantRelation",
    "Delta",
    "Difference",
    "Division",
    "Fragment",
    "Intersection",
    "NaturalJoin",
    "PAnd",
    "PNot",
    "POr",
    "PTrue",
    "Predicate",
    "Product",
    "Projection",
    "RAExpression",
    "RAParseError",
    "RelationRef",
    "Rename",
    "Selection",
    "Union_",
    "attr",
    "classify",
    "const",
    "ctable_evaluate",
    "difference",
    "divide",
    "eq",
    "intersection",
    "is_delta_fragment",
    "is_positive",
    "is_ra_cwa",
    "join",
    "kleene_and",
    "kleene_not",
    "kleene_or",
    "naive_boolean",
    "naive_certain_answers",
    "naive_evaluate",
    "naive_object_answer",
    "neq",
    "parse_predicate",
    "parse_ra",
    "predicate_condition",
    "product",
    "project",
    "relation",
    "rename",
    "select",
    "union",
    "uses_difference",
    "uses_division",
]
