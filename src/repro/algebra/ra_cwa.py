"""Fragments of relational algebra: positive RA, RA(Δ,π,×,∪) and RA_cwa.

The paper (Section 6.2) singles out three syntactic classes:

* **positive relational algebra** — selection, projection, product/join,
  union over base relations; equivalent to UCQ.  OWA-naive evaluation is
  correct exactly for this class (for FO queries it is also optimal).
* **RA(Δ, π, ×, ∪)** — expressions built from base relations and the
  diagonal ``Δ`` using projection, product and union only.  These are the
  allowed divisors.
* **RA_cwa** — the smallest class containing base relations, closed under
  σ, π, ×, ∪, and under division ``Q ÷ Q'`` with ``Q ∈ RA_cwa`` and
  ``Q' ∈ RA(Δ, π, ×, ∪)``.  The paper shows ``RA_cwa = Pos∀G`` and that
  CWA-naive evaluation is correct for it.

This module provides the corresponding syntactic checks and a classifier
used by :func:`repro.core.naive_evaluation.naive_evaluation_applies`.
"""

from __future__ import annotations

from enum import Enum
from typing import Union

from .ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
)


class Fragment(Enum):
    """Query-language fragments ordered by naive-evaluation friendliness."""

    POSITIVE = "positive"
    """Positive relational algebra (UCQ): naive evaluation correct under OWA and CWA."""

    RA_CWA = "ra_cwa"
    """Positive algebra + division by RA(Δ,π,×,∪): naive evaluation correct under CWA."""

    FULL = "full"
    """Full relational algebra (uses difference or other non-positive features)."""


_POSITIVE_NODES = (
    RelationRef,
    ConstantRelation,
    Selection,
    Projection,
    Product,
    NaturalJoin,
    Union_,
    Rename,
)


def is_positive(expression: RAExpression) -> bool:
    """``True`` iff the expression is positive relational algebra (UCQ).

    Selections must use positive predicates (equality comparisons combined
    with ∧/∨ — no negation, no ``≠``, no order comparisons).
    """
    for node in expression.walk():
        if isinstance(node, Selection):
            if not node.predicate.is_positive():
                return False
        elif not isinstance(node, _POSITIVE_NODES):
            return False
    return True


def is_delta_fragment(expression: RAExpression) -> bool:
    """``True`` iff the expression is in RA(Δ, π, ×, ∪).

    Allowed nodes: base relations, ``Δ``, projection, product and union
    (renaming is allowed as it only relabels attributes).
    """
    allowed = (RelationRef, ConstantRelation, Delta, ActiveDomain, Projection, Product, Union_, Rename)
    return all(isinstance(node, allowed) for node in expression.walk())


def is_ra_cwa(expression: RAExpression) -> bool:
    """``True`` iff the expression is in the paper's ``RA_cwa`` class.

    The class is defined inductively (Section 6.2):

    * every base relation is an ``RA_cwa`` query;
    * ``RA_cwa`` is closed under σ (positive predicates), π, ×, ⋈ and ∪;
    * if ``Q`` is ``RA_cwa`` and ``Q'`` is in RA(Δ, π, ×, ∪) then
      ``Q ÷ Q'`` is ``RA_cwa``.
    """
    if isinstance(expression, (RelationRef, ConstantRelation)):
        return True
    if isinstance(expression, Selection):
        return expression.predicate.is_positive() and is_ra_cwa(expression.child)
    if isinstance(expression, (Projection, Rename)):
        return is_ra_cwa(expression.child)
    if isinstance(expression, (Product, NaturalJoin, Union_)):
        return is_ra_cwa(expression.left) and is_ra_cwa(expression.right)
    if isinstance(expression, Division):
        return is_ra_cwa(expression.left) and is_delta_fragment(expression.right)
    # Δ / adom on their own, difference, intersection: not RA_cwa.
    return False


def classify(expression: RAExpression) -> Fragment:
    """The smallest fragment of this module that contains ``expression``."""
    if is_positive(expression):
        return Fragment.POSITIVE
    if is_ra_cwa(expression):
        return Fragment.RA_CWA
    return Fragment.FULL


def uses_difference(expression: RAExpression) -> bool:
    """``True`` iff the expression mentions the difference operator."""
    return any(isinstance(node, Difference) for node in expression.walk())


def uses_division(expression: RAExpression) -> bool:
    """``True`` iff the expression mentions the division operator."""
    return any(isinstance(node, Division) for node in expression.walk())
