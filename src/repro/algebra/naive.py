"""Naive evaluation of relational-algebra queries over incomplete databases.

*Naive evaluation* (paper, Sections 2 and 6) evaluates a query on a
database with nulls exactly as if the nulls were ordinary constants: a
marked null is equal to itself and different from everything else.  The
paper's central practical message is that, for the right query classes and
the right semantics of query answers, naive evaluation already produces
correct certain answers:

* ``Q(D)_cmpl = certain(Q, D)`` for UCQs / positive relational algebra,
  under both OWA and CWA (eq. (4));
* ``certainO(Q, D) = Q(D)`` for monotone generic queries with a suitable
  answer semantics (eq. (9)), in particular for ``RA_cwa`` under CWA.

This module exposes naive evaluation itself plus the two post-processing
conventions used throughout the experiments: keeping the full naive answer
(the *object* certain answer) and keeping only its null-free part (the
classical intersection-style certain answer, obtained by appending the
``IS NOT NULL`` filter the paper mentions).
"""

from __future__ import annotations

from typing import Optional

from ..datamodel import Database, Relation
from .ast import RAExpression


def naive_evaluate(
    expression: RAExpression, database: Database, engine: Optional[str] = None
) -> Relation:
    """Evaluate ``expression`` on ``database`` treating nulls as plain values.

    ``engine`` selects the execution path (``"plan"`` — the optimizing
    physical engine, the default —, ``"sqlite"`` — the SQL backend — or
    ``"interpreter"``).
    """
    return expression.evaluate(database, engine=engine)


def naive_certain_answers(
    expression: RAExpression, database: Database, engine: Optional[str] = None
) -> Relation:
    """``Q(D)_cmpl``: naive evaluation followed by dropping tuples with nulls.

    This is eq. (4) of the paper — the certain answers of positive
    relational-algebra queries can be computed with the existing evaluation
    engine plus a final ``IS NOT NULL`` selection.
    """
    return naive_evaluate(expression, database, engine=engine).complete_part()


def naive_object_answer(
    expression: RAExpression, database: Database, engine: Optional[str] = None
) -> Relation:
    """``Q(D)`` itself, viewed as the object-level certain answer (eq. (9)).

    For monotone generic queries the naive answer — nulls included — is the
    greatest lower bound of ``Q([[D]])`` under the answer ordering, i.e. the
    paper's ``certainO(Q, D)``.
    """
    return naive_evaluate(expression, database, engine=engine)


def naive_boolean(
    expression: RAExpression, database: Database, engine: Optional[str] = None
) -> bool:
    """Naive evaluation of a Boolean query (non-emptiness of the answer)."""
    return bool(naive_evaluate(expression, database, engine=engine))
