"""Relational-algebra expressions.

The paper's query languages are fragments of relational algebra:

* the *positive* relational algebra (selection, projection, product/join,
  union) — equivalent to unions of conjunctive queries (UCQ);
* full relational algebra, adding difference — equivalent to first-order
  logic / relational calculus;
* ``RA_cwa`` (Section 6.2) — the positive algebra closed under division
  ``Q ÷ Q'`` where ``Q'`` is built from base relations and the diagonal
  ``Δ = {(a,a) | a ∈ adom(D)}`` using projection, product and union.

Expressions are immutable trees.  Every node knows how to compute its
output schema against a database schema and how to evaluate itself on a
database instance.  Evaluation treats the values in the database
*syntactically*: on complete databases this is the standard semantics; on
databases with nulls it is exactly the paper's **naive evaluation** (nulls
behave as ordinary values equal only to themselves).  SQL's three-valued
evaluation is provided separately by :mod:`repro.sqlnulls`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..datamodel import Database, Relation
from ..datamodel.schema import DatabaseSchema, RelationSchema
from .predicates import Attr, Comparison, PAnd, Predicate, PTrue, eq

AttributeRef = Union[str, int]


class RAExpression:
    """Base class of relational-algebra expression nodes."""

    def children(self) -> Tuple["RAExpression", ...]:
        """Immediate sub-expressions."""
        raise NotImplementedError

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        """The schema of the result when evaluated over ``schema``."""
        raise NotImplementedError

    def evaluate(self, database: Database, engine: Optional[str] = None) -> Relation:
        """Evaluate the expression (standard / naive semantics).

        ``engine`` selects the execution path:

        * ``"plan"`` (the default) — compile the expression into an
          optimized physical plan (:mod:`repro.engine`) with selection
          pushdown, hash joins and common-subexpression memoization;
        * ``"sqlite"`` — compile the same logical plan into SQL executed
          on SQLite (:mod:`repro.backends`); queries outside the SQL
          compiler's fragment transparently fall back to ``"plan"``;
        * ``"interpreter"`` — the original tree-walking interpreter, kept
          as a differential-testing oracle.

        When ``engine`` is ``None`` the module default applies (see
        :func:`repro.engine.set_default_engine`; overridable with the
        ``REPRO_ENGINE`` environment variable).
        """
        from .. import engine as _engine

        mode = engine if engine is not None else _engine.get_default_engine()
        if mode == "interpreter":
            return self._interpret(database)
        if mode == "plan":
            return _engine.execute(self, database)
        if mode == "sqlite":
            return _engine.execute_sqlite(self, database)
        raise ValueError(
            f"unknown engine {mode!r}; expected 'plan', 'interpreter' or 'sqlite'"
        )

    def _interpret(self, database: Database) -> Relation:
        """Tree-walking evaluation of this node (the seed interpreter).

        Subclasses outside this module that were written against the seed
        API override ``evaluate`` directly; honor that override so such
        nodes keep working when nested inside other expressions (the
        engine treats them as opaque and interprets them).
        """
        if type(self).evaluate is not RAExpression.evaluate:
            return type(self).evaluate(self, database)
        raise NotImplementedError

    def relation_names(self) -> Set[str]:
        """Names of the base relations mentioned by the expression."""
        names: Set[str] = set()
        stack: List[RAExpression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, RelationRef):
                names.add(node.name)
            stack.extend(node.children())
        return names

    def walk(self) -> Iterable["RAExpression"]:
        """Yield every node of the expression tree (pre-order)."""
        stack: List[RAExpression] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- operator sugar ------------------------------------------------
    def select(self, predicate: Predicate) -> "Selection":
        """``σ_predicate(self)``."""
        return Selection(self, predicate)

    def project(self, attributes: Sequence[AttributeRef]) -> "Projection":
        """``π_attributes(self)``."""
        return Projection(self, tuple(attributes))

    def product(self, other: "RAExpression") -> "Product":
        """``self × other``."""
        return Product(self, other)

    def join(self, other: "RAExpression") -> "NaturalJoin":
        """Natural join on shared attribute names."""
        return NaturalJoin(self, other)

    def union(self, other: "RAExpression") -> "Union_":
        """``self ∪ other``."""
        return Union_(self, other)

    def difference(self, other: "RAExpression") -> "Difference":
        """``self − other``."""
        return Difference(self, other)

    def intersect(self, other: "RAExpression") -> "Intersection":
        """``self ∩ other``."""
        return Intersection(self, other)

    def divide(self, other: "RAExpression") -> "Division":
        """``self ÷ other``."""
        return Division(self, other)

    def rename(self, name: str, attributes: Optional[Sequence[str]] = None) -> "Rename":
        """Rename the result relation and optionally its attributes."""
        return Rename(self, name, tuple(attributes) if attributes is not None else None)


def _merge_attribute_names(left: RelationSchema, right: RelationSchema) -> Tuple[str, ...]:
    """Attribute names of a product: keep originals when unambiguous, else positional."""
    combined = left.attributes + right.attributes
    if len(set(combined)) == len(combined):
        return combined
    return tuple(f"#{i}" for i in range(len(combined)))


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelationRef(RAExpression):
    """A reference to a base relation of the database."""

    name: str

    def children(self) -> Tuple[RAExpression, ...]:
        return ()

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        return schema[self.name]

    def _interpret(self, database: Database) -> Relation:
        return database.relation(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstantRelation(RAExpression):
    """A literal relation embedded in the query."""

    relation: Relation

    def children(self) -> Tuple[RAExpression, ...]:
        return ()

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        return self.relation.schema

    def _interpret(self, database: Database) -> Relation:
        return self.relation

    def __str__(self) -> str:
        return f"const({self.relation.name})"


@dataclass(frozen=True)
class Delta(RAExpression):
    """The diagonal ``Δ = {(a, a) | a ∈ adom(D)}`` (paper, Section 6.2)."""

    def children(self) -> Tuple[RAExpression, ...]:
        return ()

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        return RelationSchema("Δ", ("#0", "#1"))

    def _interpret(self, database: Database) -> Relation:
        return Relation(
            self.output_schema(database.schema),
            ((value, value) for value in database.active_domain()),
        )

    def __str__(self) -> str:
        return "Δ"


@dataclass(frozen=True)
class ActiveDomain(RAExpression):
    """The unary active-domain relation ``{(a) | a ∈ adom(D)}``."""

    def children(self) -> Tuple[RAExpression, ...]:
        return ()

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        return RelationSchema("adom", ("#0",))

    def _interpret(self, database: Database) -> Relation:
        return Relation(
            self.output_schema(database.schema),
            ((value,) for value in database.active_domain()),
        )

    def __str__(self) -> str:
        return "adom"


# ----------------------------------------------------------------------
# Unary operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Selection(RAExpression):
    """``σ_predicate(child)``."""

    child: RAExpression
    predicate: Predicate

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.child,)

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        return self.child.output_schema(schema)

    def _interpret(self, database: Database) -> Relation:
        relation = self.child._interpret(database)
        return Relation(
            relation.schema,
            (row for row in relation if self.predicate.holds(row, relation.schema)),
        )

    def __str__(self) -> str:
        return f"select[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Projection(RAExpression):
    """``π_attributes(child)``; attributes may repeat and reorder columns."""

    child: RAExpression
    attributes: Tuple[AttributeRef, ...]

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.child,)

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        child_schema = self.child.output_schema(schema)
        positions = [child_schema.index_of(a) for a in self.attributes]
        names = []
        seen: Set[str] = set()
        for position in positions:
            name = child_schema.attributes[position]
            if name in seen:
                name = f"{name}_{len(seen)}"
            seen.add(name)
            names.append(name)
        return RelationSchema(child_schema.name, tuple(names))

    def _interpret(self, database: Database) -> Relation:
        relation = self.child._interpret(database)
        positions = [relation.schema.index_of(a) for a in self.attributes]
        out_schema = self.output_schema(database.schema)
        return Relation(out_schema, (tuple(row[p] for p in positions) for row in relation))

    def __str__(self) -> str:
        attrs = ", ".join(str(a) for a in self.attributes)
        return f"project[{attrs}]({self.child})"


@dataclass(frozen=True)
class Rename(RAExpression):
    """``ρ``: rename the output relation and optionally its attributes."""

    child: RAExpression
    name: str
    attributes: Optional[Tuple[str, ...]] = None

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.child,)

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        child_schema = self.child.output_schema(schema)
        if self.attributes is None:
            return child_schema.rename(self.name)
        if len(self.attributes) != child_schema.arity:
            raise ValueError("rename must preserve the arity")
        return RelationSchema(self.name, self.attributes)

    def _interpret(self, database: Database) -> Relation:
        relation = self.child._interpret(database)
        return Relation(self.output_schema(database.schema), relation.rows)

    def __str__(self) -> str:
        if self.attributes is None:
            return f"rename[{self.name}]({self.child})"
        return f"rename[{self.name}({', '.join(self.attributes)})]({self.child})"


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Product(RAExpression):
    """Cartesian product ``left × right``."""

    left: RAExpression
    right: RAExpression

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.left, self.right)

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(schema)
        right = self.right.output_schema(schema)
        return RelationSchema(left.name, _merge_attribute_names(left, right))

    def _interpret(self, database: Database) -> Relation:
        left = self.left._interpret(database)
        right = self.right._interpret(database)
        out_schema = self.output_schema(database.schema)
        return Relation(
            out_schema,
            (l_row + r_row for l_row in left for r_row in right),
        )

    def __str__(self) -> str:
        return f"product({self.left}, {self.right})"


@dataclass(frozen=True)
class NaturalJoin(RAExpression):
    """Natural join on the attribute names shared by the two sides.

    When no attribute names are shared this degenerates to the Cartesian
    product.  The output keeps the left attributes followed by the right
    attributes that are not join attributes.
    """

    left: RAExpression
    right: RAExpression

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.left, self.right)

    def _join_plan(
        self, schema: DatabaseSchema
    ) -> Tuple[RelationSchema, RelationSchema, List[Tuple[int, int]], List[int]]:
        left = self.left.output_schema(schema)
        right = self.right.output_schema(schema)
        shared = [name for name in right.attributes if name in left.attributes]
        join_pairs = [(left.index_of(name), right.index_of(name)) for name in shared]
        right_keep = [i for i, name in enumerate(right.attributes) if name not in left.attributes]
        return left, right, join_pairs, right_keep

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        left, right, _, right_keep = self._join_plan(schema)
        names = left.attributes + tuple(right.attributes[i] for i in right_keep)
        return RelationSchema(left.name, names)

    def _interpret(self, database: Database) -> Relation:
        left_schema, right_schema, join_pairs, right_keep = self._join_plan(database.schema)
        left = self.left._interpret(database)
        right = self.right._interpret(database)
        out_schema = self.output_schema(database.schema)

        # Hash join on the shared attributes.
        index: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for r_row in right:
            key = tuple(r_row[j] for _, j in join_pairs)
            index.setdefault(key, []).append(r_row)

        rows = []
        for l_row in left:
            key = tuple(l_row[i] for i, _ in join_pairs)
            for r_row in index.get(key, ()):
                rows.append(l_row + tuple(r_row[i] for i in right_keep))
        return Relation(out_schema, rows)

    def __str__(self) -> str:
        return f"join({self.left}, {self.right})"


class _SetOperation(RAExpression):
    """Shared machinery of union / difference / intersection."""

    symbol = "?"

    def __init__(self, left: RAExpression, right: RAExpression) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.left, self.right)

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        left = self.left.output_schema(schema)
        right = self.right.output_schema(schema)
        if left.arity != right.arity:
            raise ValueError(
                f"{type(self).__name__} requires equal arities, "
                f"got {left.arity} and {right.arity}"
            )
        return left

    def _combine(self, left_rows: frozenset, right_rows: frozenset) -> Iterable[Tuple[Any, ...]]:
        raise NotImplementedError

    def _interpret(self, database: Database) -> Relation:
        left = self.left._interpret(database)
        right = self.right._interpret(database)
        out_schema = self.output_schema(database.schema)
        return Relation(out_schema, self._combine(left.rows, right.rows))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, type(self)) and type(self) is type(other):
            return self.left == other.left and self.right == other.right
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))

    def __str__(self) -> str:
        return f"{self.symbol}({self.left}, {self.right})"


class Union_(_SetOperation):
    """Set union ``left ∪ right`` (arity-compatible)."""

    symbol = "union"

    def _combine(self, left_rows: frozenset, right_rows: frozenset) -> Iterable[Tuple[Any, ...]]:
        return left_rows | right_rows


class Difference(_SetOperation):
    """Set difference ``left − right``."""

    symbol = "diff"

    def _combine(self, left_rows: frozenset, right_rows: frozenset) -> Iterable[Tuple[Any, ...]]:
        return left_rows - right_rows


class Intersection(_SetOperation):
    """Set intersection ``left ∩ right``."""

    symbol = "intersect"

    def _combine(self, left_rows: frozenset, right_rows: frozenset) -> Iterable[Tuple[Any, ...]]:
        return left_rows & right_rows


@dataclass(frozen=True)
class Division(RAExpression):
    """Relational division ``R ÷ S`` (paper, Section 6.2).

    If all attribute names of ``S`` occur among the attribute names of
    ``R``, the division is taken on those named attributes; otherwise it is
    taken positionally on the *last* ``arity(S)`` columns of ``R``.  The
    result contains the remaining columns of ``R``, i.e. the tuples ``t``
    such that ``(t, s) ∈ R`` for *every* ``s ∈ S``.  Note that when ``S``
    is empty the result is ``π_A(R)`` (every ``t`` vacuously qualifies),
    the textbook convention.
    """

    left: RAExpression
    right: RAExpression

    def children(self) -> Tuple[RAExpression, ...]:
        return (self.left, self.right)

    def _division_plan(
        self, schema: DatabaseSchema
    ) -> Tuple[RelationSchema, RelationSchema, List[int], List[int]]:
        left = self.left.output_schema(schema)
        right = self.right.output_schema(schema)
        if right.arity == 0 or right.arity >= left.arity:
            raise ValueError(
                f"division requires 0 < arity(S) < arity(R); got {right.arity} and {left.arity}"
            )
        named = not any(name.startswith("#") for name in right.attributes)
        if named and all(name in left.attributes for name in right.attributes):
            divisor_positions = [left.index_of(name) for name in right.attributes]
        else:
            divisor_positions = list(range(left.arity - right.arity, left.arity))
        keep_positions = [i for i in range(left.arity) if i not in divisor_positions]
        return left, right, keep_positions, divisor_positions

    def output_schema(self, schema: DatabaseSchema) -> RelationSchema:
        left, _, keep_positions, _ = self._division_plan(schema)
        return RelationSchema(left.name, tuple(left.attributes[i] for i in keep_positions))

    def _interpret(self, database: Database) -> Relation:
        left_schema, _, keep_positions, divisor_positions = self._division_plan(database.schema)
        left = self.left._interpret(database)
        right = self.right._interpret(database)
        out_schema = self.output_schema(database.schema)

        divisor_rows = set(right.rows)
        groups: Dict[Tuple[Any, ...], Set[Tuple[Any, ...]]] = {}
        for row in left:
            key = tuple(row[i] for i in keep_positions)
            value = tuple(row[i] for i in divisor_positions)
            groups.setdefault(key, set()).add(value)
        rows = [key for key, values in groups.items() if divisor_rows <= values]
        if not divisor_rows:
            rows = list(groups)
        return Relation(out_schema, rows)

    def __str__(self) -> str:
        return f"divide({self.left}, {self.right})"


def expand_division(expression: Division, schema: DatabaseSchema) -> RAExpression:
    """Rewrite a division into projection, product and difference.

    ``R ÷ S ≡ π_A(R) − π_A( reorder(π_A(R) × S) − R )`` where ``A`` are the
    kept columns of ``R`` and ``reorder`` puts the candidate tuples back
    into ``R``'s column order so the inner difference lines up
    positionally.  Used by evaluators (c-table algebra, sound evaluation)
    that only implement the primitive operators.
    """
    left_schema, _, keep_positions, divisor_positions = expression._division_plan(schema)
    left, right = expression.left, expression.right

    all_a = Projection(left, tuple(keep_positions))
    candidate = Product(all_a, right)
    reorder: List[int] = []
    for position in range(left_schema.arity):
        if position in keep_positions:
            reorder.append(keep_positions.index(position))
        else:
            reorder.append(len(keep_positions) + divisor_positions.index(position))
    reordered = Projection(candidate, tuple(reorder))
    missing = Difference(reordered, left)
    bad_a = Projection(missing, tuple(keep_positions))
    return Difference(all_a, bad_a)


# ----------------------------------------------------------------------
# Convenience constructors mirroring textbook notation
# ----------------------------------------------------------------------
def relation(name: str) -> RelationRef:
    """A base-relation reference."""
    return RelationRef(name)


def select(child: RAExpression, predicate: Predicate) -> Selection:
    """``σ_predicate(child)``."""
    return Selection(child, predicate)


def project(child: RAExpression, attributes: Sequence[AttributeRef]) -> Projection:
    """``π_attributes(child)``."""
    return Projection(child, tuple(attributes))


def product(left: RAExpression, right: RAExpression) -> Product:
    """``left × right``."""
    return Product(left, right)


def join(left: RAExpression, right: RAExpression) -> NaturalJoin:
    """Natural join."""
    return NaturalJoin(left, right)


def union(left: RAExpression, right: RAExpression) -> Union_:
    """``left ∪ right``."""
    return Union_(left, right)


def difference(left: RAExpression, right: RAExpression) -> Difference:
    """``left − right``."""
    return Difference(left, right)


def intersection(left: RAExpression, right: RAExpression) -> Intersection:
    """``left ∩ right``."""
    return Intersection(left, right)


def divide(left: RAExpression, right: RAExpression) -> Division:
    """``left ÷ right``."""
    return Division(left, right)


def rename(child: RAExpression, name: str, attributes: Optional[Sequence[str]] = None) -> Rename:
    """``ρ_name(child)``."""
    return Rename(child, name, tuple(attributes) if attributes is not None else None)
