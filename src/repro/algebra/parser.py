"""A small text syntax for relational-algebra expressions.

The syntax is functional and keyword-based so queries stay readable in
examples and documentation::

    project[o_id](Order)
    select[product = 'pr1'](Order)
    diff(project[#0](R), project[#0](S))
    divide(Pay, project[o_id](Order))
    union(R, S)
    join(Order, rename[Pay2(order, p_id, amount)](Pay))

Grammar (informal)::

    expr     := name
              | 'delta' | 'adom'
              | 'select'  '[' predicate ']' '(' expr ')'
              | 'project' '[' attrs ']' '(' expr ')'
              | 'rename'  '[' name ( '(' attrs ')' )? ']' '(' expr ')'
              | binop '(' expr ',' expr ')'
    binop    := 'union' | 'diff' | 'intersect' | 'product' | 'join' | 'divide'
    predicate:= disjunction of conjunctions of (possibly negated) comparisons
    term     := quoted string | number | '#' digits | attribute name

Bare identifiers inside predicates denote attributes; quoted strings and
numbers denote constants; ``#i`` denotes the attribute at position ``i``.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Sequence, Tuple, Union

from .ast import (
    ActiveDomain,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
)
from .predicates import Attr, Comparison, Const, PAnd, PNot, POr, Predicate, PTrue


class RAParseError(ValueError):
    """Raised when an RA expression or predicate cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<position>\#\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[()\[\],])
    """,
    re.VERBOSE,
)

_BINARY_OPS = {
    "union": Union_,
    "diff": Difference,
    "difference": Difference,
    "intersect": Intersection,
    "intersection": Intersection,
    "product": Product,
    "join": NaturalJoin,
    "divide": Division,
    "division": Division,
}

_KEYWORDS = {"select", "project", "rename", "delta", "adom", "and", "or", "not", "true"} | set(
    _BINARY_OPS
)


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise RAParseError(f"unexpected character {text[position]!r} at offset {position}")
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RAParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, value: str) -> _Token:
        token = self._next()
        if token.value != value:
            raise RAParseError(f"expected {value!r}, got {token.value!r}")
        return token

    def _at(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.value == value

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # -- expressions ---------------------------------------------------
    def parse_expression(self) -> RAExpression:
        token = self._next()
        if token.kind != "name":
            raise RAParseError(f"expected an operator or relation name, got {token.value!r}")
        word = token.value
        lowered = word.lower()
        if lowered == "delta":
            return Delta()
        if lowered == "adom":
            return ActiveDomain()
        if lowered == "select":
            predicate = self._bracketed_predicate()
            child = self._parenthesised_expression()
            return Selection(child, predicate)
        if lowered == "project":
            attributes = self._bracketed_attributes()
            child = self._parenthesised_expression()
            return Projection(child, tuple(attributes))
        if lowered == "rename":
            name, attributes = self._bracketed_rename()
            child = self._parenthesised_expression()
            return Rename(child, name, attributes)
        if lowered in _BINARY_OPS:
            self._expect("(")
            left = self.parse_expression()
            self._expect(",")
            right = self.parse_expression()
            self._expect(")")
            return _BINARY_OPS[lowered](left, right)
        if lowered in _KEYWORDS:
            raise RAParseError(f"misplaced keyword {word!r}")
        return RelationRef(word)

    def _parenthesised_expression(self) -> RAExpression:
        self._expect("(")
        child = self.parse_expression()
        self._expect(")")
        return child

    def _bracketed_attributes(self) -> List[Union[str, int]]:
        self._expect("[")
        attributes: List[Union[str, int]] = []
        while True:
            token = self._next()
            if token.kind == "position":
                attributes.append(int(token.value[1:]))
            elif token.kind == "name":
                attributes.append(token.value)
            elif token.kind == "number":
                attributes.append(int(token.value))
            else:
                raise RAParseError(f"expected an attribute, got {token.value!r}")
            if self._at("]"):
                self._next()
                return attributes
            self._expect(",")

    def _bracketed_rename(self) -> Tuple[str, Optional[Tuple[str, ...]]]:
        self._expect("[")
        name_token = self._next()
        if name_token.kind != "name":
            raise RAParseError(f"expected a relation name, got {name_token.value!r}")
        attributes: Optional[Tuple[str, ...]] = None
        if self._at("("):
            self._next()
            attrs: List[str] = []
            while True:
                token = self._next()
                if token.kind != "name":
                    raise RAParseError(f"expected an attribute name, got {token.value!r}")
                attrs.append(token.value)
                if self._at(")"):
                    self._next()
                    break
                self._expect(",")
            attributes = tuple(attrs)
        self._expect("]")
        return name_token.value, attributes

    # -- predicates ------------------------------------------------------
    def _bracketed_predicate(self) -> Predicate:
        self._expect("[")
        predicate = self.parse_predicate()
        self._expect("]")
        return predicate

    def parse_predicate(self) -> Predicate:
        return self._parse_or()

    def _parse_or(self) -> Predicate:
        operands = [self._parse_and()]
        while self._at("or"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return POr(tuple(operands))

    def _parse_and(self) -> Predicate:
        operands = [self._parse_not()]
        while self._at("and"):
            self._next()
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return PAnd(tuple(operands))

    def _parse_not(self) -> Predicate:
        if self._at("not"):
            self._next()
            return PNot(self._parse_not())
        if self._at("("):
            self._next()
            inner = self.parse_predicate()
            self._expect(")")
            return inner
        if self._at("true"):
            self._next()
            return PTrue()
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        left = self._parse_term()
        op_token = self._next()
        if op_token.kind != "op":
            raise RAParseError(f"expected a comparison operator, got {op_token.value!r}")
        op = "!=" if op_token.value == "<>" else op_token.value
        right = self._parse_term()
        return Comparison(left, op, right)

    def _parse_term(self) -> Union[Attr, Const]:
        token = self._next()
        if token.kind == "string":
            return Const(token.value[1:-1])
        if token.kind == "number":
            text = token.value
            return Const(float(text) if "." in text else int(text))
        if token.kind == "position":
            return Attr(int(token.value[1:]))
        if token.kind == "name":
            return Attr(token.value)
        raise RAParseError(f"expected a term, got {token.value!r}")


def parse_ra(text: str) -> RAExpression:
    """Parse the textual RA syntax into an :class:`RAExpression`.

    Examples
    --------
    >>> from repro.algebra import parse_ra
    >>> expr = parse_ra("diff(project[#0](R), project[#0](S))")
    >>> str(expr)
    'diff(project[0](R), project[0](S))'
    """
    parser = _Parser(_tokenize(text))
    expression = parser.parse_expression()
    if not parser.at_end():
        raise RAParseError("trailing input after a complete expression")
    return expression


def parse_predicate(text: str) -> Predicate:
    """Parse just a selection predicate (the part between ``[`` and ``]``)."""
    parser = _Parser(_tokenize(text))
    predicate = parser.parse_predicate()
    if not parser.at_end():
        raise RAParseError("trailing input after a complete predicate")
    return predicate
