"""Information orderings on incomplete databases and relations.

Section 5 of the paper brings the ordering-based view of incompleteness
into the framework: the *information ordering* is defined from the
semantics by

    ``x ⊑ y   ⇔   [[y]] ⊆ [[x]]``

("the more objects an incomplete object can denote, the less information
it contains").  For relational databases the orderings corresponding to
the standard semantics have homomorphism characterisations (Section 5.2):

* ``D ⊑_owa D'``  iff there is a homomorphism ``D → D'``;
* ``D ⊑_cwa D'``  iff there is a strong onto homomorphism ``D → D'``;
* ``D ⊑_wcwa D'`` iff there is a homomorphism ``D → D'`` onto ``adom(D')``.

Those characterisations are exact and efficient to check on the instance
sizes used here, so they are the primary implementation; the semantic
definition is kept (over finite world approximations) for cross-checking
in the experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence

from ..datamodel import Database, Relation
from ..homomorphisms import (
    exists_homomorphism,
    exists_onto_homomorphism,
    exists_strong_onto_homomorphism,
)


@dataclass(frozen=True)
class InformationOrdering:
    """An information ordering ``⊑`` packaged with its name and comparator.

    The comparator takes two databases and returns ``True`` when the first
    is *less or equally informative* than the second.
    """

    name: str
    less_equal: Callable[[Database, Database], bool]

    def __call__(self, left: Database, right: Database) -> bool:
        return self.less_equal(left, right)

    def equivalent(self, left: Database, right: Database) -> bool:
        """Mutual comparability: ``left ⊑ right`` and ``right ⊑ left``."""
        return self(left, right) and self(right, left)

    def is_lower_bound(self, candidate: Database, objects: Iterable[Database]) -> bool:
        """``candidate ⊑ x`` for every ``x`` in ``objects``."""
        return all(self(candidate, obj) for obj in objects)

    def is_upper_bound(self, candidate: Database, objects: Iterable[Database]) -> bool:
        """``x ⊑ candidate`` for every ``x`` in ``objects``."""
        return all(self(obj, candidate) for obj in objects)

    def is_greatest_lower_bound(
        self,
        candidate: Database,
        objects: Sequence[Database],
        competitors: Iterable[Database],
    ) -> bool:
        """Check the glb property of ``candidate`` against a pool of ``competitors``.

        The true greatest lower bound quantifies over *all* objects; here we
        verify (i) ``candidate`` is a lower bound of ``objects`` and (ii) no
        supplied competitor is a strictly more informative lower bound.
        Experiments pass competitor pools that include the other natural
        answer candidates (intersection answer, naive answer, each world's
        answer), which is what the paper's comparisons require.
        """
        if not self.is_lower_bound(candidate, objects):
            return False
        for competitor in competitors:
            if self.is_lower_bound(competitor, objects) and not self(competitor, candidate):
                return False
        return True


def owa_leq(left: Database, right: Database) -> bool:
    """``left ⊑_owa right``: a homomorphism ``left → right`` exists."""
    return exists_homomorphism(left, right)


def cwa_leq(left: Database, right: Database) -> bool:
    """``left ⊑_cwa right``: a strong onto homomorphism ``left → right`` exists."""
    return exists_strong_onto_homomorphism(left, right)


def wcwa_leq(left: Database, right: Database) -> bool:
    """``left ⊑_wcwa right``: an onto-on-active-domain homomorphism exists."""
    return exists_onto_homomorphism(left, right)


OWA_ORDERING = InformationOrdering("owa", owa_leq)
CWA_ORDERING = InformationOrdering("cwa", cwa_leq)
WCWA_ORDERING = InformationOrdering("wcwa", wcwa_leq)

_ORDERINGS = {"owa": OWA_ORDERING, "cwa": CWA_ORDERING, "wcwa": WCWA_ORDERING}


def ordering(semantics: str) -> InformationOrdering:
    """The information ordering associated with a semantics name."""
    try:
        return _ORDERINGS[semantics]
    except KeyError:
        raise ValueError(
            f"unknown semantics {semantics!r}; expected one of {sorted(_ORDERINGS)}"
        ) from None


# ----------------------------------------------------------------------
# Orderings on single relations (query answers)
# ----------------------------------------------------------------------
def _as_database(relation: Relation) -> Database:
    return Database.from_relations([relation.rename("__answer__")])


def relation_leq(left: Relation, right: Relation, semantics: str = "owa") -> bool:
    """The information ordering applied to two answer relations.

    Query answers are single relations; to compare them we wrap each in a
    one-relation database (under a common name, so only the tuples matter)
    and apply the database ordering for the given semantics.
    """
    if left.arity != right.arity:
        raise ValueError("can only compare relations of equal arity")
    return ordering(semantics)(_as_database(left), _as_database(right))


def semantic_leq(
    left: Database,
    right: Database,
    worlds_of: Callable[[Database], Iterable[Database]],
) -> bool:
    """The definitional ordering ``[[right]] ⊆ [[left]]`` over enumerated worlds.

    ``worlds_of`` must return the finite world approximation used for both
    sides.  Used only for cross-checking the homomorphism characterisations
    on small instances.
    """
    left_worlds = {w for w in worlds_of(left)}
    return all(world in left_worlds for world in worlds_of(right))
