"""The user-facing certain-answer API.

Three ways of answering a query ``Q`` over an incomplete database ``D``:

* :func:`certain_answers_naive` — the paper's recipe for the well-behaved
  classes (eq. (4)): naive evaluation followed by dropping tuples with
  nulls; cheap (same cost as ordinary evaluation).
* :func:`certain_answers_intersection` — the classical definition (eq. (1))
  computed literally by possible-world enumeration; exponential in the
  number of nulls, used as ground truth and as the baseline in benchmarks.
* :func:`certain_answers` — the "do the right thing" entry point: uses
  naive evaluation when the query's fragment guarantees it for the chosen
  semantics, and falls back to enumeration otherwise.

The object/knowledge views of certainty (eqs. (9)/(10)) are exposed as
:func:`certain_answer_object` (the naive answer itself, nulls included)
and :func:`certain_answer_knowledge` (its δ-formula).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from ..algebra.ast import ConstantRelation, RAExpression, Selection
from ..datamodel import Database, Relation
from ..datamodel.values import is_null
from ..logic.diagrams import delta as delta_formula
from ..logic.formulas import FOQuery, Formula
from ..semantics.certain import (
    certain_answers_enumeration,
    possible_answers_enumeration,
)
from ..semantics.worlds import default_domain
from .naive_evaluation import Applicability, evaluate_query, naive_evaluation_applies

Query = Union[RAExpression, FOQuery]


def query_constants(query: Query) -> set:
    """The constants mentioned by a query (selection predicates, literals, atoms).

    Possible-world enumeration must let nulls range over these constants too
    — a certain answer can be destroyed by a world in which a null takes a
    value that only the query mentions (e.g. ``¬Pref('alice', p)`` when the
    database never mentions ``'alice'``).
    """
    constants: set = set()
    if isinstance(query, RAExpression):
        for node in query.walk():
            if isinstance(node, Selection):
                constants |= node.predicate.constants()
            elif isinstance(node, ConstantRelation):
                constants |= node.relation.constants()
    elif isinstance(query, FOQuery):
        constants |= {c for c in query.formula.constants() if not is_null(c)}
    else:
        raise TypeError(f"unsupported query type {type(query).__name__}")
    return {c for c in constants if not is_null(c)}


def _enumeration_domain(
    query: Query,
    database: Database,
    domain: Optional[Sequence[Any]],
    extra_constants: Optional[int],
) -> Sequence[Any]:
    if domain is not None:
        return domain
    return default_domain(
        database, extra_constants=extra_constants, constants=query_constants(query)
    )


def certain_answers_naive(
    query: Query, database: Database, engine: Optional[str] = None
) -> Relation:
    """``Q(D)_cmpl``: naive evaluation, then drop tuples containing nulls.

    Correct (equal to the classical certain answers) for UCQs under OWA and
    CWA, and sound for the larger ``RA_cwa``/Pos∀G class under CWA.
    ``engine`` selects the execution path (see
    :meth:`repro.algebra.ast.RAExpression.evaluate`).
    """
    return evaluate_query(query, database, engine=engine).complete_part()


def certain_answer_object(
    query: Query, database: Database, engine: Optional[str] = None
) -> Relation:
    """``certainO(Q, D) = Q(D)``: the naive answer viewed as an object (eq. (9)).

    Unlike :func:`certain_answers_naive` the result may contain nulls —
    dropping them loses information (the paper's Section 6 example)."""
    return evaluate_query(query, database, engine=engine)


def certain_answer_knowledge(
    query: Query, database: Database, semantics: str = "cwa", engine: Optional[str] = None
) -> Formula:
    """``certainK(Q, D) = δ_{Q(D)}``: the knowledge-level certain answer (eq. (10))."""
    answer = evaluate_query(query, database, engine=engine)
    return delta_formula(Database.from_relations([answer.rename("Answer")]), semantics=semantics)


def certain_answers_intersection(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """The classical intersection-based certain answers, by world enumeration."""
    return certain_answers_enumeration(
        lambda world: evaluate_query(query, world, engine=engine),
        database,
        semantics=semantics,
        domain=_enumeration_domain(query, database, domain, extra_constants),
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )


def possible_answers(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """Tuples appearing in the answer over at least one enumerated world."""
    return possible_answers_enumeration(
        lambda world: evaluate_query(query, world, engine=engine),
        database,
        semantics=semantics,
        domain=_enumeration_domain(query, database, domain, extra_constants),
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )


def certain_answers(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    method: str = "auto",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """Certain answers with automatic method selection.

    Parameters
    ----------
    method:
        ``'auto'`` (naive when the fragment guarantees it, enumeration
        otherwise), ``'naive'`` (force naive evaluation) or
        ``'enumeration'`` (force possible-world enumeration).
    engine:
        Execution path for relational-algebra evaluation: ``'plan'`` (the
        optimizing engine, the default), ``'sqlite'`` (the same logical
        plans compiled to SQL and run on SQLite — see
        ``docs/backends.md``) or ``'interpreter'`` (the seed
        tree-walking oracle).
    """
    if method == "naive":
        return certain_answers_naive(query, database, engine=engine)
    if method == "enumeration":
        return certain_answers_intersection(
            query,
            database,
            semantics=semantics,
            domain=domain,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
            engine=engine,
        )
    if method != "auto":
        raise ValueError(f"unknown method {method!r}; expected 'auto', 'naive' or 'enumeration'")

    verdict = naive_evaluation_applies(query, semantics=semantics)
    if verdict.applies:
        return certain_answers_naive(query, database, engine=engine)
    return certain_answers_intersection(
        query,
        database,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        engine=engine,
    )


def explain_method(query: Query, semantics: str = "cwa") -> Applicability:
    """The applicability verdict :func:`certain_answers` would act on."""
    return naive_evaluation_applies(query, semantics=semantics)
