"""Certain-answer strategies, and the deprecated pre-session entry points.

Three ways of answering a query ``Q`` over an incomplete database ``D``:

* :func:`naive_strategy` — the paper's recipe for the well-behaved
  classes (eq. (4)): naive evaluation followed by dropping tuples with
  nulls; cheap (same cost as ordinary evaluation).
* :func:`enumeration_strategy` — the classical definition (eq. (1))
  computed literally by possible-world enumeration; exponential in the
  number of nulls, used as ground truth and as the baseline in benchmarks.
* :func:`certain_strategy` — the "do the right thing" dispatch: uses
  naive evaluation when the query's fragment guarantees it for the chosen
  semantics, and falls back to enumeration otherwise.

The strategies are *thin*: each takes an ``evaluator`` — a function from
``(query, database)`` to a relation — so the caller decides which engine
state runs the query.  :class:`repro.session.Session` passes its own
session-scoped evaluator; the deprecated module-level wrappers
(:func:`certain_answers` and friends, kept with their historical
signatures) pass the process-default one and emit a
:class:`DeprecationWarning` per call.

The object/knowledge views of certainty (eqs. (9)/(10)) follow the same
pattern: :func:`object_strategy` (the naive answer itself, nulls
included) and :func:`knowledge_strategy` (its δ-formula).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from .._deprecation import warn_deprecated as _warn_deprecated
from ..algebra.ast import ConstantRelation, RAExpression, Selection
from ..datamodel import Database, Relation
from ..datamodel.values import is_null
from ..logic.diagrams import delta as delta_formula
from ..logic.formulas import FOQuery, Formula
from ..resilience import ResumeToken, active_budget
from ..semantics.certain import (
    enumerate_certain_answers,
    enumerate_possible_answers,
)
from ..semantics.worlds import default_domain
from .naive_evaluation import Applicability, evaluate_query, naive_evaluation_applies

Query = Union[RAExpression, FOQuery]

#: ``(query, database) -> Relation``: how a strategy runs the query.
QueryEvaluator = Callable[[Query, Database], Relation]


def query_constants(query: Query) -> set:
    """The constants mentioned by a query (selection predicates, literals, atoms).

    Possible-world enumeration must let nulls range over these constants too
    — a certain answer can be destroyed by a world in which a null takes a
    value that only the query mentions (e.g. ``¬Pref('alice', p)`` when the
    database never mentions ``'alice'``).
    """
    constants: set = set()
    if isinstance(query, RAExpression):
        for node in query.walk():
            if isinstance(node, Selection):
                constants |= node.predicate.constants()
            elif isinstance(node, ConstantRelation):
                constants |= node.relation.constants()
    elif isinstance(query, FOQuery):
        constants |= {c for c in query.formula.constants() if not is_null(c)}
    else:
        raise TypeError(f"unsupported query type {type(query).__name__}")
    return {c for c in constants if not is_null(c)}


def enumeration_domain(
    query: Query,
    database: Database,
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
) -> Sequence[Any]:
    """The valuation domain world enumeration should range over."""
    if domain is not None:
        return domain
    return default_domain(
        database, extra_constants=extra_constants, constants=query_constants(query)
    )


def _default_evaluator(engine: Optional[str]) -> QueryEvaluator:
    return lambda query, database: evaluate_query(query, database, engine=engine)


def applicability_semantics(semantics: str) -> str:
    """The semantics the naive-evaluation test should be asked about.

    The syntactic criteria cover OWA and CWA; under the *weak* CWA the
    worlds sit between the two, so a query whose naive evaluation is
    correct under OWA (monotone UCQs — correct under every
    homomorphism-closed semantics) is safe there as well, while the
    CWA-only ``RA_cwa`` guarantee does not transfer.  Map ``wcwa`` to the
    conservative ``owa`` test.
    """
    return "owa" if semantics == "wcwa" else semantics


# ----------------------------------------------------------------------
# Strategy functions (session-dispatched; no deprecation, no globals)
# ----------------------------------------------------------------------
def naive_strategy(query: Query, database: Database, evaluator: QueryEvaluator) -> Relation:
    """``Q(D)_cmpl``: naive evaluation, then drop tuples containing nulls.

    Correct (equal to the classical certain answers) for UCQs under OWA and
    CWA, and sound for the larger ``RA_cwa``/Pos∀G class under CWA.
    """
    return evaluator(query, database).complete_part()


def object_strategy(query: Query, database: Database, evaluator: QueryEvaluator) -> Relation:
    """``certainO(Q, D) = Q(D)``: the naive answer viewed as an object (eq. (9)).

    Unlike :func:`naive_strategy` the result may contain nulls — dropping
    them loses information (the paper's Section 6 example)."""
    return evaluator(query, database)


def knowledge_strategy(
    query: Query, database: Database, evaluator: QueryEvaluator, semantics: str = "cwa"
) -> Formula:
    """``certainK(Q, D) = δ_{Q(D)}``: the knowledge-level certain answer (eq. (10))."""
    answer = evaluator(query, database)
    return delta_formula(
        Database.from_relations([answer.rename("Answer")]), semantics=semantics
    )


def enumeration_strategy(
    query: Query,
    database: Database,
    evaluator: QueryEvaluator,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
    world_evaluator: Optional[Callable[[Database], Relation]] = None,
    mode: str = "certain",
    resume: Optional[ResumeToken] = None,
    heartbeat: Optional[float] = None,
    pool_factory: Optional[Callable[[int], Any]] = None,
    executor: Optional[Any] = None,
) -> Relation:
    """Certain (or possible) answers computed literally by world enumeration.

    ``world_evaluator`` overrides the per-world callable — sessions pass a
    *picklable* one when ``workers`` should fan out over a process pool;
    the default closure works but forces the sequential path.  ``resume``,
    ``heartbeat``, ``pool_factory`` and ``executor`` (a live caller-owned
    pool that takes precedence over ``pool_factory``) are forwarded to
    :func:`~repro.semantics.certain.enumerate_certain_answers`
    (``mode="certain"`` only — a possible-answers union has no sound
    partial state to resume from).
    """
    state = active_budget()
    if state is not None:
        # Refuse to even start an enumeration on an already-expired budget
        # (the per-world ticks inside would catch it one world later).
        state.check()
    if world_evaluator is None:
        world_evaluator = lambda world: evaluator(query, world)  # noqa: E731
    resolved_domain = enumeration_domain(query, database, domain, extra_constants)
    if mode == "certain":
        return enumerate_certain_answers(
            world_evaluator,
            database,
            semantics=semantics,
            domain=resolved_domain,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
            workers=workers,
            resume=resume,
            heartbeat=heartbeat,
            pool_factory=pool_factory,
            executor=executor,
        )
    if mode == "possible":
        return enumerate_possible_answers(
            world_evaluator,
            database,
            semantics=semantics,
            domain=resolved_domain,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
        )
    raise ValueError(f"unknown mode {mode!r}; expected 'certain' or 'possible'")


def certain_strategy(
    query: Query,
    database: Database,
    evaluator: QueryEvaluator,
    semantics: str = "cwa",
    method: str = "auto",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    workers: Optional[int] = None,
    world_evaluator: Optional[Callable[[Database], Relation]] = None,
    resume: Optional[ResumeToken] = None,
    heartbeat: Optional[float] = None,
    pool_factory: Optional[Callable[[int], Any]] = None,
    executor: Optional[Any] = None,
) -> Relation:
    """Certain answers with automatic method selection.

    ``method`` is ``'auto'`` (naive when the fragment guarantees it,
    enumeration otherwise), ``'naive'`` or ``'enumeration'``.  A
    ``resume`` token forces the enumeration path — it checkpoints world
    enumeration, which the naive method does not perform.
    """
    if resume is not None and method == "auto":
        method = "enumeration"
    if method == "naive":
        if resume is not None:
            raise ValueError("resume= is only meaningful for method='enumeration'")
        return naive_strategy(query, database, evaluator)
    if method not in ("auto", "enumeration"):
        raise ValueError(
            f"unknown method {method!r}; expected 'auto', 'naive' or 'enumeration'"
        )
    if method == "auto":
        verdict = naive_evaluation_applies(
            query, semantics=applicability_semantics(semantics)
        )
        if verdict.applies:
            return naive_strategy(query, database, evaluator)
    return enumeration_strategy(
        query,
        database,
        evaluator,
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        workers=workers,
        world_evaluator=world_evaluator,
        mode="certain",
        resume=resume,
        heartbeat=heartbeat,
        pool_factory=pool_factory,
        executor=executor,
    )


def explain_method(query: Query, semantics: str = "cwa") -> Applicability:
    """The applicability verdict :func:`certain_strategy` acts on."""
    return naive_evaluation_applies(query, semantics=applicability_semantics(semantics))


# ----------------------------------------------------------------------
# Deprecated entry points (historical signatures, process-default state)
# ----------------------------------------------------------------------
def certain_answers_naive(
    query: Query, database: Database, engine: Optional[str] = None
) -> Relation:
    """Deprecated: use ``Session.query(...).certain(method="naive")``."""
    _warn_deprecated("certain_answers_naive()", 'Session.query(...).certain(method="naive")')
    return naive_strategy(query, database, _default_evaluator(engine))


def certain_answer_object(
    query: Query, database: Database, engine: Optional[str] = None
) -> Relation:
    """Deprecated: use ``Session.query(...).answer_object()``."""
    _warn_deprecated("certain_answer_object()", "Session.query(...).answer_object()")
    return object_strategy(query, database, _default_evaluator(engine))


def certain_answer_knowledge(
    query: Query, database: Database, semantics: str = "cwa", engine: Optional[str] = None
) -> Formula:
    """Deprecated: use ``Session.query(...).knowledge()``."""
    _warn_deprecated("certain_answer_knowledge()", "Session.query(...).knowledge()")
    return knowledge_strategy(query, database, _default_evaluator(engine), semantics)


def certain_answers_intersection(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """Deprecated: use ``Session.query(...).certain(method="enumeration")``."""
    _warn_deprecated(
        "certain_answers_intersection()",
        'Session.query(...).certain(method="enumeration")',
    )
    return enumeration_strategy(
        query,
        database,
        _default_evaluator(engine),
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        mode="certain",
    )


def possible_answers(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """Deprecated: use ``Session.query(...).possible()``."""
    _warn_deprecated("possible_answers()", "Session.query(...).possible()")
    return enumeration_strategy(
        query,
        database,
        _default_evaluator(engine),
        semantics=semantics,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
        mode="possible",
    )


def certain_answers(
    query: Query,
    database: Database,
    semantics: str = "cwa",
    method: str = "auto",
    domain: Optional[Sequence[Any]] = None,
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
    engine: Optional[str] = None,
) -> Relation:
    """Deprecated: use ``repro.connect(db).query(q).certain()``.

    The historical one-call entry point.  ``engine`` selects the
    execution path exactly like the old signature did; everything else is
    forwarded to :func:`certain_strategy`.
    """
    _warn_deprecated("certain_answers()", "repro.connect(db).query(q).certain()")
    return certain_strategy(
        query,
        database,
        _default_evaluator(engine),
        semantics=semantics,
        method=method,
        domain=domain,
        extra_constants=extra_constants,
        max_extra_facts=max_extra_facts,
    )
