"""The paper's abstract model of incompleteness: domains and representation systems.

Section 5.1 defines a minimalist, data-model-independent setting:

* a **domain** ``D = ⟨D, C, [[·]], Iso⟩`` consists of a set of database
  objects, the subset of complete objects, a semantics function assigning
  to each object a set of complete objects, and a family of equivalence
  relations ``Iso`` (in the relational case, ``≈_C`` for finite sets of
  constants ``C``) witnessing that there are "sufficiently many"
  valuations;
* a **representation system** ``RS = ⟨D, F⟩`` adds a set of formulas with a
  satisfaction relation such that every object ``x`` has a formula ``δ_x``
  with ``Mod_C(δ_x) = [[x]]``, satisfaction is preserved upwards in the
  information ordering, and formulas are closed under conjunction.

The two required structural conditions are:

1. a complete object denotes at least itself: ``c ∈ [[c]]``;
2. a complete object is above whatever it represents: ``c ∈ [[x]] ⇒ x ⊑ c``.

This module provides the abstract interfaces plus their relational
instantiations for OWA (formulas: UCQ, ``δ_D = ∃x̄ PosDiag(D)``) and CWA
(formulas: Pos∀G, ``δ_D`` adds domain closure).  Because ``Const`` is
infinite, the semantics function exposed here is a *finite approximation*
(world enumeration over a configurable domain); the information ordering
and the δ-formulas, however, are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set

from ..datamodel import Database
from ..logic.diagrams import delta_cwa, delta_owa, delta_wcwa
from ..logic.formulas import FOQuery, Formula
from ..logic.fragments import is_pos_forall_guarded, is_positive, is_ucq
from ..semantics.membership import is_member
from ..semantics.worlds import default_domain, worlds
from .orderings import InformationOrdering, ordering


class Domain:
    """An abstract domain ``⟨D, C, [[·]], Iso⟩``.

    Subclasses (or direct instantiation with callables) supply:

    * ``is_complete(x)`` — membership in ``C``;
    * ``semantics(x)`` — an iterable of complete objects (finite
      approximation of ``[[x]]``);
    * ``contains(x, c)`` — exact membership ``c ∈ [[x]]`` when decidable;
    * ``less_equal(x, y)`` — the information ordering ``x ⊑ y``.
    """

    def __init__(
        self,
        is_complete: Callable[[Any], bool],
        semantics: Callable[[Any], Iterable[Any]],
        contains: Callable[[Any, Any], bool],
        less_equal: Callable[[Any, Any], bool],
        name: str = "domain",
    ) -> None:
        self.name = name
        self._is_complete = is_complete
        self._semantics = semantics
        self._contains = contains
        self._less_equal = less_equal

    def is_complete(self, obj: Any) -> bool:
        """``obj ∈ C``."""
        return self._is_complete(obj)

    def semantics(self, obj: Any) -> List[Any]:
        """A finite approximation of ``[[obj]]``."""
        return list(self._semantics(obj))

    def contains(self, obj: Any, complete: Any) -> bool:
        """``complete ∈ [[obj]]`` (exact)."""
        return self._contains(obj, complete)

    def less_equal(self, left: Any, right: Any) -> bool:
        """The information ordering ``left ⊑ right``."""
        return self._less_equal(left, right)

    # -- the two structural conditions of Section 5.1 -------------------
    def condition_reflexivity(self, complete: Any) -> bool:
        """Condition 1: a complete object denotes at least itself."""
        return self.contains(complete, complete)

    def condition_dominance(self, obj: Any, complete: Any) -> bool:
        """Condition 2: ``complete ∈ [[obj]]`` implies ``obj ⊑ complete``."""
        if not self.contains(obj, complete):
            return True
        return self.less_equal(obj, complete)


class RepresentationSystem:
    """An abstract representation system ``⟨D, F⟩``.

    Parameters
    ----------
    domain:
        The underlying :class:`Domain`.
    delta:
        The map ``x ↦ δ_x`` producing a formula whose complete models are
        ``[[x]]``.
    satisfies:
        The satisfaction relation between objects and formulas.
    in_fragment:
        Membership test for the formula class ``F`` (used to check that the
        produced δ-formulas actually live in the advertised fragment).
    """

    def __init__(
        self,
        domain: Domain,
        delta: Callable[[Any], Formula],
        satisfies: Callable[[Any, Formula], bool],
        in_fragment: Callable[[Formula], bool],
        name: str = "representation system",
    ) -> None:
        self.domain = domain
        self.name = name
        self._delta = delta
        self._satisfies = satisfies
        self._in_fragment = in_fragment

    def delta(self, obj: Any) -> Formula:
        """The defining formula ``δ_obj``."""
        return self._delta(obj)

    def satisfies(self, obj: Any, formula: Formula) -> bool:
        """``obj ⊨ formula``."""
        return self._satisfies(obj, formula)

    def in_fragment(self, formula: Formula) -> bool:
        """``formula ∈ F``."""
        return self._in_fragment(formula)

    # -- the defining properties ----------------------------------------
    def delta_defines_semantics(self, obj: Any, complete_objects: Iterable[Any]) -> bool:
        """Check ``Mod_C(δ_obj) = [[obj]]`` over the supplied complete objects."""
        formula = self.delta(obj)
        for complete in complete_objects:
            if not self.domain.is_complete(complete):
                raise ValueError("delta_defines_semantics expects complete objects")
            if self.satisfies(complete, formula) != self.domain.contains(obj, complete):
                return False
        return True

    def satisfaction_is_upward_closed(self, lower: Any, higher: Any, formulas: Iterable[Formula]) -> bool:
        """Check that ``lower ⊑ higher`` and ``lower ⊨ φ`` imply ``higher ⊨ φ``."""
        if not self.domain.less_equal(lower, higher):
            return True
        return all(
            (not self.satisfies(lower, formula)) or self.satisfies(higher, formula)
            for formula in formulas
        )

    def models_of_delta_are_upward_cone(self, obj: Any, candidates: Iterable[Any]) -> bool:
        """Check ``Mod(δ_obj) = ↑obj`` over the supplied candidate objects."""
        formula = self.delta(obj)
        return all(
            self.satisfies(candidate, formula) == self.domain.less_equal(obj, candidate)
            for candidate in candidates
        )


# ----------------------------------------------------------------------
# Relational instantiations
# ----------------------------------------------------------------------
def relational_domain(
    semantics: str = "cwa",
    extra_constants: Optional[int] = None,
    max_extra_facts: int = 1,
) -> Domain:
    """The relational domain for OWA or CWA (Section 5.2).

    The semantics function enumerates worlds over the default finite
    domain (active domain plus fresh constants); membership and the
    ordering are exact (homomorphism-based).
    """

    def semantics_fn(database: Database) -> Iterable[Database]:
        return worlds(
            database,
            semantics=semantics,
            extra_constants=extra_constants,
            max_extra_facts=max_extra_facts,
        )

    def contains_fn(database: Database, complete: Database) -> bool:
        return is_member(database, complete, semantics=semantics)

    return Domain(
        is_complete=lambda database: database.is_complete(),
        semantics=semantics_fn,
        contains=contains_fn,
        less_equal=ordering(semantics).less_equal,
        name=f"relational-{semantics}",
    )


def owa_representation_system(extra_constants: Optional[int] = None) -> RepresentationSystem:
    """``RS_owa = ⟨D_owa, UCQ⟩`` with ``δ_D = ∃x̄ PosDiag(D)``."""
    return RepresentationSystem(
        domain=relational_domain("owa", extra_constants=extra_constants),
        delta=delta_owa,
        satisfies=lambda database, formula: formula.holds(database),
        in_fragment=is_ucq,
        name="RS_owa (UCQ)",
    )


def cwa_representation_system(extra_constants: Optional[int] = None) -> RepresentationSystem:
    """``RS_cwa = ⟨D_cwa, Pos∀G⟩`` with ``δ_D`` = diagram + domain closure."""
    return RepresentationSystem(
        domain=relational_domain("cwa", extra_constants=extra_constants),
        delta=delta_cwa,
        satisfies=lambda database, formula: formula.holds(database),
        in_fragment=is_pos_forall_guarded,
        name="RS_cwa (Pos∀G)",
    )


def wcwa_representation_system(extra_constants: Optional[int] = None) -> RepresentationSystem:
    """``RS_wcwa = ⟨D_wcwa, Pos⟩``: Reiter's weak CWA with positive FO formulas.

    ``δ_D`` is the positive diagram plus the active-domain closure
    ``∀y ⋁ y = v`` (Section 5.2: "one can use a weaker version of CWA, in
    which tuples can be added as long as they do not add new elements to
    the active domain; then a representation system for this semantics will
    use the class of positive FO formulae").
    """
    return RepresentationSystem(
        domain=relational_domain("wcwa", extra_constants=extra_constants),
        delta=delta_wcwa,
        satisfies=lambda database, formula: formula.holds(database),
        in_fragment=is_positive,
        name="RS_wcwa (Pos)",
    )
