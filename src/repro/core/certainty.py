"""Certainty as knowledge (``certainK``) and as object (``certainO``).

Section 5.3 of the paper defines, for a set ``X`` of objects, two notions
of the certain information contained in ``X``:

* ``certainK X`` — *knowledge*: a formula whose models are exactly the
  models of the theory ``Th(X)`` (equivalently, the greatest lower bound of
  ``Th(X)`` under implication);
* ``certainO X`` — *object*: the greatest lower bound ``⋀X`` of ``X`` under
  the information ordering.

Applied to query answering (Section 6), ``X = Q([[D]])`` and the paper's
main positive result (eqs. (9) and (10)) is that for monotone generic
queries, with a representation system on the answer side,

    ``certainO(Q, D) = Q(D)``      and      ``certainK(Q, D) = δ_{Q(D)}``,

i.e. naive evaluation produces both notions of certainty directly.  This
module implements the two operators for the relational instantiation —
producing the candidate objects/formulas — together with the verification
predicates the experiments use to check the glb / model-equivalence
properties against explicitly enumerated answer sets.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import Database, Null, Relation, is_null
from ..homomorphisms import core as core_of
from ..logic.diagrams import delta as delta_formula
from ..logic.formulas import Formula
from .orderings import InformationOrdering, ordering


# ----------------------------------------------------------------------
# certainO: greatest lower bound of a set of objects
# ----------------------------------------------------------------------
def is_lower_bound(
    candidate: Database, objects: Iterable[Database], order: InformationOrdering
) -> bool:
    """``candidate ⊑ x`` for every ``x`` in ``objects``."""
    return order.is_lower_bound(candidate, objects)


def is_certain_object(
    candidate: Database,
    objects: Sequence[Database],
    order: InformationOrdering,
    competitors: Iterable[Database] = (),
) -> bool:
    """Verify that ``candidate`` behaves as ``certainO(objects) = ⋀ objects``.

    The candidate must be a lower bound of ``objects`` and at least as
    informative as every *competitor* lower bound supplied.  (The true glb
    quantifies over all objects of the domain; experiments pass the
    relevant competitor pool, e.g. the intersection-based answer and each
    individual world's answer.)
    """
    return order.is_greatest_lower_bound(candidate, objects, competitors)


def intersection_object(objects: Sequence[Database]) -> Optional[Database]:
    """The fact-wise intersection of a family of databases over one schema.

    This is the object the *classical* certain-answer definition produces.
    The paper's critique (Section 6) is precisely that this object need not
    be the greatest lower bound — under CWA it generally is not even a
    lower bound.
    """
    if not objects:
        return None
    schema = objects[0].schema
    result = objects[0]
    for other in objects[1:]:
        if other.schema != schema:
            raise ValueError("intersection_object expects databases over one schema")
        result = Database(
            schema,
            {
                name: result.relation(name).intersection(other.relation(name))
                for name in schema.names()
            },
        )
    return result


def product_object(left: Database, right: Database) -> Database:
    """The categorical product ``D₁ × D₂`` — a glb of ``{D₁, D₂}`` under ``⊑_owa``.

    Rows are combined position-wise over pairs of rows of the same
    relation: a pair of equal constants stays that constant; every other
    pair of values becomes a marked null, one per distinct pair, shared
    across the whole product.  The projections ``⊥_(u,v) ↦ u`` and
    ``⊥_(u,v) ↦ v`` are homomorphisms onto the factors, and any common
    lower bound maps into the product via ``e ↦ (h₁(e), h₂(e))`` — the
    universal property that makes the product the greatest lower bound in
    the homomorphism preorder (Section 5.2's ``⊑_owa``).
    """
    if left.schema != right.schema:
        raise ValueError("product_object expects databases over one schema")
    pair_nulls: Dict[Tuple[Any, Any], Null] = {}

    def combine(u: Any, v: Any) -> Any:
        if u == v and not is_null(u):
            return u
        pair = (u, v)
        null = pair_nulls.get(pair)
        if null is None:
            null = Null(f"prod_{len(pair_nulls)}")
            pair_nulls[pair] = null
        return null

    relations = {}
    for name in left.schema.names():
        # Sorting fixes the pair-null naming order (rows are frozensets,
        # whose iteration order varies with the hash seed).
        left_rows = sorted(left.relation(name).rows, key=lambda r: tuple(map(str, r)))
        right_rows = sorted(right.relation(name).rows, key=lambda r: tuple(map(str, r)))
        rows = set()
        for left_row in left_rows:
            for right_row in right_rows:
                rows.add(tuple(combine(u, v) for u, v in zip(left_row, right_row)))
        relations[name] = list(rows)
    return Database(left.schema, relations)


def certain_object_owa(objects: Sequence[Database], algorithm: str = "block") -> Database:
    """``certainO(objects) = ⋀ objects`` under ``⊑_owa``, as a concrete instance.

    The greatest lower bound of a finite family under the OWA ordering is
    the iterated categorical product; its core (computed with the
    block-based algorithm by default, ``algorithm`` as in
    :func:`repro.homomorphisms.core`) is the canonical small
    representative of that glb's homomorphism-equivalence class.  The
    product of ``n`` databases has up to ``∏ |Dᵢ|`` facts per relation, so
    this is intended for the finite families the experiments compare —
    exactly the situation the paper's ``certainO`` addresses.
    """
    objects = list(objects)
    if not objects:
        raise ValueError("certain_object_owa needs at least one object")
    result = objects[0]
    for other in objects[1:]:
        result = product_object(result, other)
    return core_of(result, algorithm=algorithm)


# ----------------------------------------------------------------------
# certainK: greatest lower bound of the theory
# ----------------------------------------------------------------------
def certain_knowledge_formula(database: Database, semantics: str = "cwa") -> Formula:
    """``certainK [[D]] = δ_D`` for the relational representation systems.

    For a single object the paper shows the certain knowledge of its
    semantics is its defining formula; for query answering (eq. (10)) the
    certain knowledge of ``Q([[D]])`` is ``δ_{Q(D)}`` — the δ-formula of the
    naively evaluated answer.
    """
    return delta_formula(database, semantics=semantics)


def knowledge_includes(formula: Formula, objects: Iterable[Database]) -> bool:
    """``formula ∈ Th(objects)``: the formula holds in every object of the set."""
    return all(formula.holds(obj) for obj in objects)


def is_certain_knowledge(
    formula: Formula,
    objects: Sequence[Database],
    candidates: Iterable[Database],
    competitors: Iterable[Formula] = (),
) -> bool:
    """Verify that ``formula`` behaves as ``certainK(objects)``.

    Checked properties (over the supplied finite candidate pool):

    * soundness — the formula holds in every object of ``objects``;
    * maximality — every competitor formula that also holds in all of
      ``objects`` is implied by ``formula`` on the candidate pool
      (``Mod(formula) ⊆ Mod(competitor)`` restricted to ``candidates``).
    """
    if not knowledge_includes(formula, objects):
        return False
    candidate_list = list(candidates)
    formula_models = [c for c in candidate_list if formula.holds(c)]
    for competitor in competitors:
        if not knowledge_includes(competitor, objects):
            continue
        if not all(competitor.holds(model) for model in formula_models):
            return False
    return True


def theory_of(objects: Iterable[Database], formulas: Iterable[Formula]) -> List[Formula]:
    """``Th(objects)`` restricted to a finite pool of formulas."""
    objects = list(objects)
    return [formula for formula in formulas if knowledge_includes(formula, objects)]
