"""When does naive evaluation work?  The paper's applicability criteria.

Section 6 gives both a semantic criterion and syntactic classes:

* **Semantic** (eq. (9)/(10)): if a query is *monotone* with respect to the
  input/answer information orderings and *generic*, then naive evaluation
  computes ``certainO``/``certainK``.
* **Syntactic**:
  - OWA-naive evaluation works for unions of conjunctive queries
    (positive relational algebra); for Boolean FO queries this is optimal;
  - CWA-naive evaluation works for ``RA_cwa`` = Pos∀G (positive algebra
    plus division by RA(Δ,π,×,∪) queries), because Pos∀G formulas are
    preserved under strong onto homomorphisms.

This module exposes the syntactic applicability test used by the public
certain-answer API, together with empirical monotonicity / preservation /
genericity checkers used by the experiment and property-test suites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..algebra.ast import RAExpression
from ..algebra.ra_cwa import Fragment, classify
from ..datamodel import Database, Relation
from ..homomorphisms import Homomorphism, all_homomorphisms
from ..logic.formulas import FOQuery
from ..logic.fragments import FormulaFragment, classify_formula
from .orderings import InformationOrdering, ordering, relation_leq

Query = Union[RAExpression, FOQuery]


@dataclass(frozen=True)
class Applicability:
    """The verdict of the naive-evaluation applicability test."""

    applies: bool
    semantics: str
    fragment: str
    reason: str

    def __bool__(self) -> bool:
        return self.applies


def naive_evaluation_applies(query: Query, semantics: str = "cwa") -> Applicability:
    """Syntactic test: is naive evaluation guaranteed correct for ``query``?

    Under OWA the guaranteed class is positive relational algebra / UCQ;
    under CWA it is ``RA_cwa`` (which contains the positive fragment) on
    the algebra side and Pos∀G on the calculus side.
    """
    if semantics not in ("owa", "cwa"):
        raise ValueError(f"unknown semantics {semantics!r}; expected 'owa' or 'cwa'")

    if isinstance(query, RAExpression):
        fragment = classify(query)
        if fragment is Fragment.POSITIVE:
            return Applicability(True, semantics, fragment.value, "positive relational algebra (UCQ)")
        if fragment is Fragment.RA_CWA:
            if semantics == "cwa":
                return Applicability(True, semantics, fragment.value, "RA_cwa under CWA")
            return Applicability(
                False, semantics, fragment.value, "division is only safe under CWA, not OWA"
            )
        return Applicability(
            False, semantics, fragment.value, "query uses non-positive features (e.g. difference)"
        )

    if isinstance(query, FOQuery):
        fragment = classify_formula(query.formula)
        if fragment in (FormulaFragment.CQ, FormulaFragment.UCQ):
            return Applicability(True, semantics, fragment.value, "existential positive (UCQ)")
        if fragment is FormulaFragment.POS_FORALL_GUARDED:
            if semantics == "cwa":
                return Applicability(True, semantics, fragment.value, "Pos∀G under CWA")
            return Applicability(
                False, semantics, fragment.value, "guarded universals are only safe under CWA"
            )
        return Applicability(
            False,
            semantics,
            fragment.value,
            "formula is outside UCQ / Pos∀G; naive evaluation is not guaranteed",
        )

    raise TypeError(f"unsupported query type {type(query).__name__}")


# ----------------------------------------------------------------------
# Empirical checks of the semantic criteria
# ----------------------------------------------------------------------
def evaluate_query(query: Query, database: Database, engine: Optional[str] = None) -> Relation:
    """Evaluate either kind of query object on a database.

    ``engine`` selects the execution path for relational-algebra queries
    (``"plan"`` — the optimizing engine, the default —, ``"sqlite"`` —
    the SQL backend — or ``"interpreter"``); it is ignored for calculus
    queries.
    """
    if isinstance(query, RAExpression):
        return query.evaluate(database, engine=engine)
    if isinstance(query, FOQuery):
        return query.evaluate(database)
    raise TypeError(f"unsupported query type {type(query).__name__}")


def is_monotone_on(
    query: Query,
    pairs: Iterable[Tuple[Database, Database]],
    input_semantics: str = "cwa",
    answer_semantics: Optional[str] = None,
) -> bool:
    """Empirical monotonicity check on the supplied ``(smaller, larger)`` pairs.

    For every pair with ``smaller ⊑ larger`` in the input ordering, the
    answers must satisfy ``Q(smaller) ⊑ Q(larger)`` in the answer ordering.
    Pairs that are not ordered are skipped.
    """
    answer_semantics = answer_semantics or input_semantics
    input_order = ordering(input_semantics)
    for smaller, larger in pairs:
        if not input_order(smaller, larger):
            continue
        left = evaluate_query(query, smaller)
        right = evaluate_query(query, larger)
        if not relation_leq(left, right, semantics=answer_semantics):
            return False
    return True


def is_preserved_under_homomorphisms(
    query: FOQuery,
    pairs: Iterable[Tuple[Database, Database, Homomorphism]],
    strong_onto: bool = False,
) -> bool:
    """Check preservation of a Boolean query under (strong onto) homomorphisms.

    For every supplied triple ``(D, D', h)`` where ``h : D → D'`` (strong
    onto when requested), if ``D ⊨ Q`` then ``D' ⊨ Q`` must hold.  The
    callers produce the homomorphism pool; this function just checks the
    implication, which is the semantic property behind the paper's
    naive-evaluation theorems (UCQ ↔ homomorphisms, Pos∀G ↔ strong onto
    homomorphisms).
    """
    if query.head:
        raise ValueError("preservation checks are for Boolean queries")
    for source, target, hom in pairs:
        if strong_onto and hom.apply(source) != target:
            continue
        if query.formula.holds(source) and not query.formula.holds(target):
            return False
    return True


def is_generic_on(
    query: Query,
    database: Database,
    renamings: Iterable[Callable[[object], object]],
) -> bool:
    """Empirical genericity check: renaming constants commutes with the query.

    Each renaming must be injective on the active domain of ``database``;
    genericity requires ``Q(rename(D)) = rename(Q(D))``.
    """
    base_answer = evaluate_query(query, database)
    for renaming in renamings:
        renamed_db = database.map_values(renaming)
        renamed_answer = evaluate_query(query, renamed_db)
        expected = base_answer.map_values(renaming)
        if frozenset(renamed_answer.rows) != frozenset(expected.rows):
            return False
    return True
