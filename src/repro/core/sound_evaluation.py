"""Sound (no-false-positive) evaluation of full relational algebra over nulls.

Section 7 of the paper ("Evaluation techniques") points out that even when
naive evaluation is not *complete*, one can still ask for evaluation that
is *sound*: every returned tuple is a genuine certain answer, so no "good
guys are chased", even though some certain answers may be missed.  Reiter
[61] gave such an algorithm; this module implements a modern variant based
on computing, for every subexpression, a pair of naive tables

    ``(lower, upper)``   with   ``lower ⊑ certain answers``  and
                                ``upper ⊒ possible answers``

(both up to instantiation of nulls), using syntactic equality for the
"certainly equal" direction and *unification of marked nulls* for the
"possibly equal" direction:

* selection keeps a row in ``lower`` only when the predicate is certainly
  true (3-valued ``true``) and in ``upper`` when it is not certainly false;
* difference removes from ``lower`` every row that *unifies* with a
  possible row of the subtrahend, and removes from ``upper`` only rows that
  are syntactically identical to a certain row of the subtrahend;
* the positive operators apply component-wise.

The null-free part of the final ``lower`` table is then a sound
approximation of the certain answers of the query under CWA; the
experiments check soundness against brute-force enumeration and measure
how much of the certain answer the approximation recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..algebra.ast import (
    ActiveDomain,
    ConstantRelation,
    Delta,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Rename,
    Selection,
    Union_,
    expand_division,
)
from ..datamodel import Database, Relation
from ..datamodel.values import Null, is_null


# ----------------------------------------------------------------------
# Unification of rows with marked nulls
# ----------------------------------------------------------------------
class _UnionFind:
    """Union-find over constants and nulls used for row unification."""

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def find(self, value: Any) -> Any:
        parent = self._parent.setdefault(value, value)
        if parent == value:
            return value
        root = self.find(parent)
        self._parent[value] = root
        return root

    def union(self, left: Any, right: Any) -> bool:
        """Merge the classes of ``left`` and ``right``; fail on constant clash."""
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return True
        left_is_const = not is_null(left_root)
        right_is_const = not is_null(right_root)
        if left_is_const and right_is_const:
            return False
        if left_is_const:
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root
        return True


def values_unifiable(pairs: Iterable[Tuple[Any, Any]]) -> bool:
    """Is there a valuation of the nulls making every pair equal?

    Marked nulls are respected: the same null must take the same value in
    every pair, which is what distinguishes naive tables from Codd tables.
    """
    union_find = _UnionFind()
    for left, right in pairs:
        if not union_find.union(left, right):
            return False
    return True


def rows_unifiable(left: Sequence[Any], right: Sequence[Any]) -> bool:
    """Is there a valuation making the two rows componentwise equal?"""
    if len(left) != len(right):
        return False
    return values_unifiable(zip(left, right))


# ----------------------------------------------------------------------
# The evaluator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApproximatePair:
    """The ``(lower, upper)`` pair computed for a subexpression."""

    lower: Relation
    upper: Relation


def _pair(lower: Relation, upper: Relation) -> ApproximatePair:
    return ApproximatePair(lower, upper)


def evaluate_pair(expression: RAExpression, database: Database) -> ApproximatePair:
    """Compute the ``(lower, upper)`` approximation pair for ``expression``."""
    schema = database.schema

    if isinstance(expression, (RelationRef, ConstantRelation, Delta, ActiveDomain)):
        value = expression.evaluate(database)
        return _pair(value, value)

    if isinstance(expression, Selection):
        child = evaluate_pair(expression.child, database)
        rel_schema = expression.output_schema(schema)
        lower_rows = [
            row for row in child.lower if expression.predicate.holds3(row, child.lower.schema) is True
        ]
        upper_rows = [
            row for row in child.upper if expression.predicate.holds3(row, child.upper.schema) is not False
        ]
        return _pair(Relation(rel_schema, lower_rows), Relation(rel_schema, upper_rows))

    if isinstance(expression, (Projection, Rename)):
        child = evaluate_pair(expression.child, database)
        rebuilt_lower = _apply_unary(expression, child.lower, database)
        rebuilt_upper = _apply_unary(expression, child.upper, database)
        return _pair(rebuilt_lower, rebuilt_upper)

    if isinstance(expression, (Product, NaturalJoin, Union_)):
        left = evaluate_pair(expression.left, database)
        right = evaluate_pair(expression.right, database)
        lower = _apply_binary(expression, left.lower, right.lower, database)
        if isinstance(expression, NaturalJoin):
            upper = _upper_natural_join(expression, left.upper, right.upper, database)
        else:
            upper = _apply_binary(expression, left.upper, right.upper, database)
        return _pair(lower, upper)

    if isinstance(expression, Intersection):
        left = evaluate_pair(expression.left, database)
        right = evaluate_pair(expression.right, database)
        out_schema = expression.output_schema(schema)
        lower = Relation(out_schema, left.lower.rows & right.lower.rows)
        upper_rows = [
            row for row in left.upper if any(rows_unifiable(row, other) for other in right.upper)
        ]
        return _pair(lower, Relation(out_schema, upper_rows))

    if isinstance(expression, Difference):
        left = evaluate_pair(expression.left, database)
        right = evaluate_pair(expression.right, database)
        out_schema = expression.output_schema(schema)
        lower_rows = [
            row for row in left.lower if not any(rows_unifiable(row, other) for other in right.upper)
        ]
        upper_rows = [row for row in left.upper if row not in right.lower.rows]
        return _pair(Relation(out_schema, lower_rows), Relation(out_schema, upper_rows))

    if isinstance(expression, Division):
        rewritten = expand_division(expression, schema)
        pair = evaluate_pair(rewritten, database)
        out_schema = expression.output_schema(schema)
        return _pair(Relation(out_schema, pair.lower.rows), Relation(out_schema, pair.upper.rows))

    raise TypeError(f"unsupported RA node for sound evaluation: {expression!r}")


def _apply_unary(expression: RAExpression, relation: Relation, database: Database) -> Relation:
    """Re-run a unary node's standard evaluation on an already-computed child."""
    substituted = _with_child(expression, ConstantRelation(relation))
    return substituted.evaluate(database)


def _apply_binary(
    expression: RAExpression, left: Relation, right: Relation, database: Database
) -> Relation:
    substituted = _with_children(expression, ConstantRelation(left), ConstantRelation(right))
    return substituted.evaluate(database)


def _with_child(expression: RAExpression, child: RAExpression) -> RAExpression:
    if isinstance(expression, Projection):
        return Projection(child, expression.attributes)
    if isinstance(expression, Rename):
        return Rename(child, expression.name, expression.attributes)
    if isinstance(expression, Selection):
        return Selection(child, expression.predicate)
    raise TypeError(f"unsupported unary node {expression!r}")


def _with_children(expression: RAExpression, left: RAExpression, right: RAExpression) -> RAExpression:
    if isinstance(expression, Product):
        return Product(left, right)
    if isinstance(expression, NaturalJoin):
        return NaturalJoin(left, right)
    if isinstance(expression, Union_):
        return Union_(left, right)
    raise TypeError(f"unsupported binary node {expression!r}")


def _upper_natural_join(
    expression: NaturalJoin, left: Relation, right: Relation, database: Database
) -> Relation:
    """Possible-join: join rows whose shared attributes are unifiable."""
    schema = database.schema
    left_schema = expression.left.output_schema(schema)
    right_schema = expression.right.output_schema(schema)
    shared = [name for name in right_schema.attributes if name in left_schema.attributes]
    join_pairs = [(left_schema.index_of(n), right_schema.index_of(n)) for n in shared]
    right_keep = [i for i, name in enumerate(right_schema.attributes) if name not in left_schema.attributes]
    out_schema = expression.output_schema(schema)
    rows = []
    for l_row in left:
        for r_row in right:
            if values_unifiable((l_row[i], r_row[j]) for i, j in join_pairs):
                rows.append(l_row + tuple(r_row[i] for i in right_keep))
    return Relation(out_schema, rows)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def sound_certain_answers(expression: RAExpression, database: Database) -> Relation:
    """A sound under-approximation of the CWA certain answers of ``expression``.

    Every returned tuple is null-free and guaranteed to be a certain
    answer; some certain answers may be missing (the price of staying
    polynomial for queries with difference).
    """
    return evaluate_pair(expression, database).lower.complete_part()


def possible_answer_bound(expression: RAExpression, database: Database) -> Relation:
    """An over-approximation (up to instantiation) of the possible answers."""
    return evaluate_pair(expression, database).upper
