"""The paper's primary contribution: certainty, orderings, representation systems.

Contents:

* :mod:`repro.core.orderings` — information orderings ⊑_owa / ⊑_cwa /
  ⊑_wcwa and their homomorphism characterisations;
* :mod:`repro.core.representation_system` — the abstract domains and
  representation systems of Section 5.1–5.2 plus the relational OWA/CWA
  instantiations;
* :mod:`repro.core.certainty` — ``certainO`` / ``certainK`` (Section 5.3);
* :mod:`repro.core.naive_evaluation` — applicability of naive evaluation
  (syntactic fragments and the monotone+generic criterion of Section 6);
* :mod:`repro.core.answers` — the user-facing certain-answer API;
* :mod:`repro.core.sound_evaluation` — sound, no-false-positive evaluation
  of full relational algebra over nulls (Section 7).
"""

from .answers import (
    certain_answer_knowledge,
    certain_answer_object,
    certain_answers,
    certain_answers_intersection,
    certain_answers_naive,
    certain_strategy,
    enumeration_strategy,
    explain_method,
    knowledge_strategy,
    naive_strategy,
    object_strategy,
    possible_answers,
)
from .certainty import (
    certain_knowledge_formula,
    certain_object_owa,
    intersection_object,
    is_certain_knowledge,
    is_certain_object,
    is_lower_bound,
    knowledge_includes,
    product_object,
    theory_of,
)
from .naive_evaluation import (
    Applicability,
    evaluate_query,
    is_generic_on,
    is_monotone_on,
    is_preserved_under_homomorphisms,
    naive_evaluation_applies,
)
from .orderings import (
    CWA_ORDERING,
    InformationOrdering,
    OWA_ORDERING,
    WCWA_ORDERING,
    cwa_leq,
    ordering,
    owa_leq,
    relation_leq,
    semantic_leq,
    wcwa_leq,
)
from .answers import query_constants
from .representation_system import (
    Domain,
    RepresentationSystem,
    cwa_representation_system,
    owa_representation_system,
    relational_domain,
    wcwa_representation_system,
)
from .sound_evaluation import (
    ApproximatePair,
    evaluate_pair,
    possible_answer_bound,
    rows_unifiable,
    sound_certain_answers,
    values_unifiable,
)

__all__ = [
    "Applicability",
    "ApproximatePair",
    "CWA_ORDERING",
    "Domain",
    "InformationOrdering",
    "OWA_ORDERING",
    "RepresentationSystem",
    "WCWA_ORDERING",
    "certain_answer_knowledge",
    "certain_answer_object",
    "certain_answers",
    "certain_answers_intersection",
    "certain_answers_naive",
    "certain_knowledge_formula",
    "certain_object_owa",
    "certain_strategy",
    "cwa_leq",
    "enumeration_strategy",
    "knowledge_strategy",
    "naive_strategy",
    "object_strategy",
    "cwa_representation_system",
    "evaluate_pair",
    "evaluate_query",
    "explain_method",
    "intersection_object",
    "is_certain_knowledge",
    "is_certain_object",
    "is_generic_on",
    "is_lower_bound",
    "is_monotone_on",
    "is_preserved_under_homomorphisms",
    "knowledge_includes",
    "naive_evaluation_applies",
    "ordering",
    "owa_leq",
    "owa_representation_system",
    "possible_answer_bound",
    "possible_answers",
    "product_object",
    "query_constants",
    "relation_leq",
    "relational_domain",
    "rows_unifiable",
    "wcwa_representation_system",
    "semantic_leq",
    "sound_certain_answers",
    "theory_of",
    "values_unifiable",
    "wcwa_leq",
]
