"""Synthetic workload generators for tests, experiments and benchmarks.

The paper is a keynote and ships no datasets, so every experiment in this
reproduction runs on synthetic inputs produced here (see DESIGN.md §6).
All generators are seeded and deterministic.  The three families mirror
the paper's motivating scenarios:

* **orders/payments** — the Section 1 unpaid-orders schema, with a
  configurable fraction of payments whose ``order`` attribute is null;
* **enrolment (division)** — a student/course schema exercising the
  ``RA_cwa`` division queries of Section 6.2;
* **random instances and random queries** — naive databases with a chosen
  number of nulls, plus random UCQ / RA_cwa / full-RA queries, used by the
  property tests and the complexity-shape benchmarks.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    Difference,
    Division,
    Product,
    Projection,
    RAExpression,
    RelationRef,
    Selection,
    Union_,
)
from ..algebra.predicates import Attr, Comparison
from ..datamodel import Database, Null, Relation
from ..exchange.mappings import MappingAtom, SchemaMapping, TGD
from ..datamodel.schema import DatabaseSchema
from ..logic.formulas import Variable


# ----------------------------------------------------------------------
# Scenario generators
# ----------------------------------------------------------------------
def orders_payments(
    num_orders: int = 10,
    num_payments: int = 6,
    null_fraction: float = 0.3,
    seed: int = 0,
) -> Database:
    """The unpaid-orders scenario of Section 1, scaled.

    ``Orders(o_id, product)`` and ``Pay(p_id, ord, amount)``; a
    ``null_fraction`` of the payments have an unknown order reference.
    """
    rng = random.Random(seed)
    orders = [(f"oid{i}", f"pr{rng.randrange(max(2, num_orders // 2))}") for i in range(num_orders)]
    payments = []
    for i in range(num_payments):
        if rng.random() < null_fraction:
            order_ref: Any = Null(f"pay{i}")
        else:
            order_ref = f"oid{rng.randrange(num_orders)}" if num_orders else f"oid{i}"
        payments.append((f"pid{i}", order_ref, 10 * (i + 1)))
    return Database.from_relations(
        [
            Relation.create("Orders", orders, attributes=("o_id", "product")),
            Relation.create("Pay", payments, attributes=("p_id", "ord", "amount")),
        ]
    )


def enrolment(
    num_students: int = 8,
    num_courses: int = 4,
    enrol_probability: float = 0.6,
    null_fraction: float = 0.15,
    seed: int = 0,
) -> Database:
    """A student/course scenario for division queries (who takes *all* courses)."""
    rng = random.Random(seed)
    courses = [(f"c{i}",) for i in range(num_courses)]
    enrolments: List[Tuple[Any, Any]] = []
    for s in range(num_students):
        for c in range(num_courses):
            if rng.random() < enrol_probability:
                course: Any = f"c{c}"
                if rng.random() < null_fraction:
                    course = Null(f"e{s}_{c}")
                enrolments.append((f"s{s}", course))
    return Database.from_relations(
        [
            Relation.create("Enroll", enrolments or [("s0", "c0")], attributes=("student", "course")),
            Relation.create("Courses", courses, attributes=("course",)),
        ]
    )


def random_database(
    num_relations: int = 2,
    arity: int = 2,
    rows_per_relation: int = 5,
    num_constants: int = 4,
    num_nulls: int = 2,
    seed: int = 0,
) -> Database:
    """A random naive database with the requested number of distinct nulls.

    Nulls are spread over randomly chosen positions, and the same null can
    occur several times (so the instances are genuinely naive tables, not
    Codd tables, unless ``num_nulls`` is large relative to the positions).
    """
    rng = random.Random(seed)
    constants = [f"a{i}" for i in range(num_constants)]
    nulls = [Null(f"r{seed}_{i}") for i in range(num_nulls)]
    relations = []
    null_budget = list(nulls)
    for r in range(num_relations):
        rows = []
        for _ in range(rows_per_relation):
            row = []
            for _pos in range(arity):
                if null_budget and rng.random() < 0.25:
                    row.append(rng.choice(nulls))
                else:
                    row.append(rng.choice(constants))
            rows.append(tuple(row))
        relations.append(Relation.create(f"R{r}", rows, arity=arity))
    db = Database.from_relations(relations)
    # Guarantee the requested number of *distinct* nulls actually occurs.
    missing = [n for n in nulls if n not in db.nulls()]
    if missing:
        extra_facts = []
        for i, null in enumerate(missing):
            row = tuple([null] + [rng.choice(constants) for _ in range(arity - 1)])
            extra_facts.append((f"R{i % num_relations}", row))
        db = db.add_facts(extra_facts)
    return db


# ----------------------------------------------------------------------
# Random query generators
# ----------------------------------------------------------------------
def random_positive_query(
    schema: DatabaseSchema,
    depth: int = 2,
    seed: int = 0,
) -> RAExpression:
    """A random positive relational-algebra query (UCQ) over ``schema``."""
    rng = random.Random(seed)
    names = schema.names()

    def build(level: int) -> RAExpression:
        if level <= 0 or rng.random() < 0.3:
            return RelationRef(rng.choice(names))
        choice = rng.random()
        child = build(level - 1)
        child_arity = child.output_schema(schema).arity
        if choice < 0.25 and child_arity > 1:
            keep = sorted(rng.sample(range(child_arity), rng.randrange(1, child_arity)))
            return Projection(child, tuple(keep))
        if choice < 0.5:
            position = rng.randrange(child_arity)
            other = rng.randrange(child_arity)
            if other == position or rng.random() < 0.5:
                constant = f"a{rng.randrange(4)}"
                predicate = Comparison(Attr(position), "=", constant)
            else:
                predicate = Comparison(Attr(position), "=", Attr(other))
            return Selection(child, predicate)
        other_child = build(level - 1)
        if choice < 0.75:
            if other_child.output_schema(schema).arity == child_arity:
                return Union_(child, other_child)
            return Product(child, other_child)
        return Product(child, other_child)

    return build(depth)


def random_ra_cwa_query(
    schema: DatabaseSchema,
    dividend: str,
    divisor: str,
    seed: int = 0,
) -> RAExpression:
    """A random ``RA_cwa`` query featuring a division ``dividend ÷ π(divisor)``."""
    rng = random.Random(seed)
    dividend_arity = schema.arity(dividend)
    divisor_arity = schema.arity(divisor)
    keep = max(1, min(divisor_arity, dividend_arity - 1))
    divisor_expr: RAExpression = RelationRef(divisor)
    if divisor_arity > keep:
        positions = sorted(rng.sample(range(divisor_arity), keep))
        divisor_expr = Projection(divisor_expr, tuple(positions))
    query: RAExpression = Division(RelationRef(dividend), divisor_expr)
    if rng.random() < 0.5:
        arity = query.output_schema(schema).arity
        if arity > 1:
            positions = sorted(rng.sample(range(arity), rng.randrange(1, arity)))
            query = Projection(query, tuple(positions))
    return query


def random_full_ra_query(
    schema: DatabaseSchema,
    seed: int = 0,
) -> RAExpression:
    """A random full-RA query containing a difference (outside the safe fragments)."""
    rng = random.Random(seed)
    names = schema.names()
    left_name = rng.choice(names)
    arity = schema.arity(left_name)
    compatible = [name for name in names if schema.arity(name) == arity]
    right_name = rng.choice(compatible)
    left: RAExpression = RelationRef(left_name)
    right: RAExpression = RelationRef(right_name)
    if arity > 1 and rng.random() < 0.5:
        position = rng.randrange(arity)
        left = Projection(left, (position,))
        right = Projection(right, (position,))
    return Difference(left, right)


# ----------------------------------------------------------------------
# Exchange workloads
# ----------------------------------------------------------------------
def order_preferences_source(num_orders: int = 10, seed: int = 0) -> Database:
    """A source instance for the paper's Order → Cust/Pref mapping."""
    rng = random.Random(seed)
    rows = [(f"oid{i}", f"pr{rng.randrange(max(2, num_orders // 2))}") for i in range(num_orders)]
    schema = DatabaseSchema.from_attributes({"Order": ("o_id", "product")})
    return Database(schema, {"Order": rows})


def chain_mapping(length: int = 2) -> SchemaMapping:
    """A mapping whose single tgd copies a source edge relation into a target path.

    ``E(x, y) → ∃z₁…z_{length-1}  P(x, z₁), P(z₁, z₂), …, P(z_{length-1}, y)``.
    Longer chains introduce more existential nulls per trigger, which the
    chase benchmark sweeps.
    """
    source = DatabaseSchema.from_attributes({"E": ("src", "dst")})
    target = DatabaseSchema.from_attributes({"P": ("src", "dst")})
    x, y = Variable("x"), Variable("y")
    intermediates = [Variable(f"z{i}") for i in range(max(0, length - 1))]
    nodes = [x] + intermediates + [y]
    head = [MappingAtom("P", (nodes[i], nodes[i + 1])) for i in range(len(nodes) - 1)]
    rule = TGD(body=[MappingAtom("E", (x, y))], head=head, name=f"chain{length}")
    return SchemaMapping(source, target, [rule])


def random_graph_source(num_nodes: int = 6, num_edges: int = 10, seed: int = 0) -> Database:
    """A random edge relation used as the source of :func:`chain_mapping`."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        edges.add((f"n{rng.randrange(num_nodes)}", f"n{rng.randrange(num_nodes)}"))
    schema = DatabaseSchema.from_attributes({"E": ("src", "dst")})
    return Database(schema, {"E": sorted(edges)})


# ----------------------------------------------------------------------
# Graph workloads (Section 7: beyond relations)
# ----------------------------------------------------------------------
def random_labelled_graph(
    num_nodes: int = 8,
    num_edges: int = 16,
    labels: Sequence[str] = ("a", "b"),
    null_node_fraction: float = 0.15,
    null_label_fraction: float = 0.1,
    seed: int = 0,
):
    """A random incomplete edge-labelled graph.

    A ``null_node_fraction`` of edge endpoints refer to marked null nodes
    (shared across edges, modelling unknown-but-equal entities) and a
    ``null_label_fraction`` of edges carry an unknown label.
    """
    from ..graphs import IncompleteGraph

    rng = random.Random(seed)
    constant_nodes = [f"v{i}" for i in range(num_nodes)]
    null_nodes = [Null(f"g{seed}_n{i}") for i in range(max(1, num_nodes // 4))]
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 20:
        attempts += 1
        source = rng.choice(null_nodes) if rng.random() < null_node_fraction else rng.choice(constant_nodes)
        target = rng.choice(null_nodes) if rng.random() < null_node_fraction else rng.choice(constant_nodes)
        if rng.random() < null_label_fraction:
            label: Any = Null(f"g{seed}_l{len(edges)}")
        else:
            label = rng.choice(list(labels))
        edges.add((source, label, target))
    return IncompleteGraph(edges=edges, nodes=constant_nodes)


def social_network_graph(
    num_people: int = 6,
    num_companies: int = 2,
    unknown_employer_fraction: float = 0.3,
    seed: int = 0,
):
    """A small social-network graph: ``knows`` edges between people, ``worksFor`` edges to companies.

    A fraction of the ``worksFor`` targets are marked nulls — the employer
    exists but is not known, the graph analogue of the unpaid-orders
    example of Section 1.
    """
    from ..graphs import IncompleteGraph

    rng = random.Random(seed)
    people = [f"p{i}" for i in range(num_people)]
    companies = [f"comp{i}" for i in range(num_companies)]
    edges = []
    for i, person in enumerate(people):
        friend = people[(i + 1) % num_people]
        edges.append((person, "knows", friend))
        if rng.random() < 0.5 and num_people > 2:
            edges.append((person, "knows", people[(i + 2) % num_people]))
        if rng.random() < unknown_employer_fraction:
            edges.append((person, "worksFor", Null(f"emp{seed}_{i}")))
        else:
            edges.append((person, "worksFor", rng.choice(companies)))
    return IncompleteGraph(edges=edges, nodes=people + companies)
