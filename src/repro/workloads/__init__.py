"""Synthetic workload generators (seeded, deterministic) for the experiment suite."""

from .generators import (
    chain_mapping,
    enrolment,
    order_preferences_source,
    orders_payments,
    random_database,
    random_full_ra_query,
    random_graph_source,
    random_labelled_graph,
    random_positive_query,
    random_ra_cwa_query,
    social_network_graph,
)

__all__ = [
    "chain_mapping",
    "enrolment",
    "order_preferences_source",
    "orders_payments",
    "random_database",
    "random_full_ra_query",
    "random_graph_source",
    "random_labelled_graph",
    "random_positive_query",
    "random_ra_cwa_query",
    "social_network_graph",
]
