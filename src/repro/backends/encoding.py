"""Injective encodings between repro values and SQL storage.

Naive evaluation needs SQL ``=`` to coincide with the naive equality of
:mod:`repro.datamodel.values`: a marked null is equal to itself and
different from every constant and every other null.  SQL engines cannot
be given their own ``NULL`` for this (``NULL = NULL`` is *unknown*), so
the sentinel codec maps every value to a tagged TEXT string:

===========================  =======================================
value                        encoding
===========================  =======================================
``Null(name)``               ``"n" + name``
``str``                      ``"s" + value``
``int`` / ``bool`` /         ``"i" + decimal`` (numbers are
integral ``float``           canonicalized first: ``True == 1 ==
                             1.0`` in Python, so all three encode
                             identically)
non-integral ``float``       ``"f" + repr(value)``
any other hashable constant  ``"o" + token`` via a per-codec registry
===========================  =======================================

The first character is the *tag*; distinct tags never collide, and within
a tag the payload is injective (null names are identifiers, ``repr`` of a
float round-trips exactly, the opaque registry is keyed by value
equality).  In particular a user string such as ``"nx"`` encodes as
``"snx"`` and can never collide with the sentinel of ``Null("x")`` —
the round-trip ``decode(encode(v)) == v`` is an identity, which the
property tests assert.

The second codec, :class:`SQLNullCodec`, deliberately *loses* the marks:
every ``Null`` becomes a plain SQL ``NULL`` and constants are stored raw.
It exists for the :mod:`repro.sqlnulls` comparison scenarios — the
Section 1 "what SQL gets wrong" demos — where the point is to run the
standard's three-valued semantics on a real SQL engine.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from ..datamodel.values import Null, intern_null, intern_value, is_null
from .base import EncodingError

Row = Tuple[Any, ...]


class SentinelCodec:
    """The injective marked-null ⇄ sentinel-constant codec (naive mode).

    Stateless except for the opaque-constant registry, so one codec
    instance must be shared between loading a database and compiling the
    queries that run against it (the backend owns exactly one).
    """

    __slots__ = ("_opaque", "_opaque_rev")

    #: SQL semantics of the encoded values: sets (the naive model).
    set_semantics = True
    #: Column type used in DDL; every encoded value is text.
    column_type = "TEXT"

    def __init__(self) -> None:
        self._opaque: Dict[Any, str] = {}
        self._opaque_rev: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def encode(self, value: Any) -> str:
        """The tagged-text encoding of a storable value."""
        if isinstance(value, Null):
            return "n" + value.name
        if type(value) is str:
            return "s" + value
        if isinstance(value, bool):
            return "i" + str(int(value))
        if isinstance(value, int):
            return "i" + str(value)
        if isinstance(value, float):
            if value != value:  # NaN is not equal to itself: no sound encoding
                raise EncodingError("NaN cannot be stored through the SQL backend")
            if value.is_integer():
                return "i" + str(int(value))
            return "f" + repr(value)
        return self._encode_opaque(value)

    def _encode_opaque(self, value: Any) -> str:
        token = self._opaque.get(value)
        if token is None:
            if value is None:
                raise EncodingError("None is not a storable value")
            token = "o" + str(len(self._opaque))
            self._opaque[value] = token
            self._opaque_rev[token] = value
        return token

    def decode(self, text: Any) -> Any:
        """Invert :meth:`encode`; the result is interned like relation values."""
        if not isinstance(text, str) or not text:
            raise EncodingError(f"not a sentinel-encoded value: {text!r}")
        tag, payload = text[0], text[1:]
        if tag == "s":
            return intern_value(payload)
        if tag == "n":
            return intern_null(Null(payload))
        if tag == "i":
            return int(payload)
        if tag == "f":
            return float(payload)
        if tag == "o":
            try:
                return self._opaque_rev[text]
            except KeyError:
                raise EncodingError(f"unknown opaque token {text!r}") from None
        raise EncodingError(f"unknown encoding tag {tag!r} in {text!r}")

    # ------------------------------------------------------------------
    def encode_row(self, row: Sequence[Any]) -> Row:
        return tuple(self.encode(value) for value in row)

    def decode_row(self, row: Sequence[Any]) -> Row:
        return tuple(self.decode(value) for value in row)


class SQLNullCodec:
    """Store marked nulls as plain SQL ``NULL`` and constants raw.

    This is the encoding of the *criticized* semantics: all marks are
    conflated, so SQLite's own three-valued logic takes over — exactly
    what the sqlnulls comparison scenarios demonstrate.  Decoding maps
    each SQL ``NULL`` to a fresh marked null (SQL nulls are the Codd
    special case: every occurrence is its own null).  Only primitive
    constants are supported; bag semantics is preserved.
    """

    __slots__ = ()

    set_semantics = False
    column_type = ""  # no affinity: values keep their storage class

    def encode(self, value: Any) -> Any:
        if isinstance(value, Null):
            return None
        if isinstance(value, (str, int, float, bool)):
            return value
        raise EncodingError(
            f"the SQL-null codec only stores primitive constants, got {value!r}"
        )

    def decode(self, value: Any) -> Any:
        if value is None:
            return Null.fresh("sql")
        return intern_value(value)

    def encode_row(self, row: Sequence[Any]) -> Row:
        return tuple(self.encode(value) for value in row)

    def decode_row(self, row: Sequence[Any]) -> Row:
        return tuple(self.decode(value) for value in row)
