"""Compilation of logical plans into SQL text.

The compiler is a :class:`repro.engine.planner._Lowering` subclass: it
inherits the planner's traversal, its greedy cost-based multijoin
ordering and its common-subexpression detection, and overrides the
operator-factory hooks to emit :class:`SQLFragment` objects instead of
in-memory physical operators.  The SQL join tree therefore follows
exactly the join order the planner would pick for the in-memory engine —
including the reordered ``NaturalJoin`` chains the logical optimizer now
flattens into :class:`~repro.engine.logical.LMultiJoin` nodes.

Every fragment is a complete ``SELECT`` producing positional columns
``c0 .. c{arity-1}``; composition nests fragments as table subqueries.
Set semantics relies on the base tables being duplicate-free (the
sentinel codec's DDL declares a primary key over all columns) plus
``DISTINCT`` on projections and SQL's set-based compound operators
(``UNION`` / ``EXCEPT`` / ``INTERSECT``).  Division is compiled through
the paper's ``RA_cwa`` rewriting
``R ÷ S = π_A(R) − π_A(reorder(π_A(R) × S) − R)``, with the dividend and
the candidate set spilled to temp tables so their SQL (and their rows)
are computed once.

Subplans referenced more than once — the compiler counts logical-node
references up front — are likewise *spilled* into temp tables, which is
both the CSE story and the "intermediates live in the database, not in
Python" story.  Whenever the probe side of an equi-join is a base-table
scan, the compiler records an index request mirroring what
``Relation.index_on`` would build in memory; the backend creates those
indexes before running the plan.

The supported fragment is the whole algebra the logical optimizer emits,
*except* order comparisons (``<``, ``<=``, ``>``, ``>=``) — their naive
semantics raises ``TypeError`` on nulls, which SQL cannot replicate on
sentinel-encoded text — and :class:`~repro.engine.logical.LOpaque`
fallback nodes.  Both raise :class:`UnsupportedPlanError`, and the engine
dispatch falls back to the in-memory physical engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..algebra.predicates import Attr, Comparison, PAnd, PNot, POr, Predicate, PTrue
from ..datamodel import Database
from ..datamodel.schema import DatabaseSchema
from ..engine.logical import (
    LAdom,
    LConst,
    LDelta,
    LOpaque,
    LScan,
    LogicalNode,
)
from ..engine.planner import _Lowering
from .base import UnsupportedPlanError, quote_identifier, table_name

#: Name of the backend-side active-domain table (``v`` column).
ADOM_TABLE = quote_identifier("_repro_adom")

_COMPARISON_OPS = {"=": "=", "!=": "<>"}


@dataclass(frozen=True)
class SQLFragment:
    """A complete SELECT producing columns ``c0 .. c{arity-1}``."""

    sql: str
    params: Tuple[Any, ...]
    arity: int
    #: Quoted table name when the fragment is a plain full scan of a table.
    table: Optional[str] = None
    #: Raw relation name when the scanned table is a user base relation.
    base: Optional[str] = None


@dataclass(frozen=True)
class CompiledPlan:
    """An executable SQL plan: setup temp tables, main query, teardown."""

    setup: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    query: str
    params: Tuple[Any, ...]
    teardown: Tuple[str, ...]
    arity: int
    uses_adom: bool
    #: ``(relation name, key positions)`` indexes to ensure before running.
    index_requests: Tuple[Tuple[str, Tuple[int, ...]], ...]


def _columns(arity: int, prefix: str = "") -> str:
    if arity == 0:
        raise UnsupportedPlanError("zero-arity relations cannot be compiled to SQL")
    return ", ".join(f"{prefix}c{i}" for i in range(arity))


def _count_references(root: LogicalNode) -> Dict[LogicalNode, int]:
    """How many parents each (structurally distinct) node has in the plan."""
    counts: Dict[LogicalNode, int] = {root: 1}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.children():
            seen = counts.get(child, 0)
            counts[child] = seen + 1
            if seen == 0:
                stack.append(child)
    return counts


class SQLCompiler(_Lowering):
    """Lower a logical plan to SQL fragments through the planner's hooks."""

    def __init__(self, database: Database, codec: Any) -> None:
        super().__init__(database)
        self.codec = codec
        self.setup: List[Tuple[str, Tuple[Any, ...]]] = []
        self.teardown: List[str] = []
        self.index_requests: List[Tuple[str, Tuple[int, ...]]] = []
        self.uses_adom = False
        self._refcounts: Dict[LogicalNode, int] = {}
        self._aliases = 0
        self._temps = 0

    # -- compilation entry point ---------------------------------------
    def compile(self, plan: LogicalNode) -> CompiledPlan:
        self._refcounts = _count_references(plan)
        root = self.lower(plan)
        return CompiledPlan(
            setup=tuple(self.setup),
            query=root.sql,
            params=root.params,
            teardown=tuple(self.teardown),
            arity=root.arity,
            uses_adom=self.uses_adom,
            index_requests=tuple(dict.fromkeys(self.index_requests)),
        )

    # -- shared-subplan spilling ---------------------------------------
    def lower(self, node: LogicalNode) -> SQLFragment:
        frag = self.shared.get(node)
        if frag is None:
            frag = self._lower(node)
            if self._refcounts.get(node, 0) > 1 and frag.table is None:
                frag = self.spill(frag)
            self.shared[node] = frag
        return frag

    def spill(self, frag: SQLFragment) -> SQLFragment:
        """Materialize a fragment into a temp table and scan it instead."""
        if frag.table is not None:
            return frag
        name = quote_identifier(f"_repro_tmp{self._temps}")
        self._temps += 1
        self.setup.append((f"CREATE TEMP TABLE {name} AS {frag.sql}", frag.params))
        self.teardown.append(f"DROP TABLE IF EXISTS {name}")
        return SQLFragment(
            f"SELECT {_columns(frag.arity)} FROM {name}", (), frag.arity, table=name
        )

    def _alias(self) -> str:
        self._aliases += 1
        return f"s{self._aliases}"

    # -- predicate compilation -----------------------------------------
    def predicate_sql(self, predicate: Predicate, prefix: str) -> Tuple[str, Tuple[Any, ...]]:
        if isinstance(predicate, PTrue):
            return "1", ()
        if isinstance(predicate, Comparison):
            sql_op = _COMPARISON_OPS.get(predicate.op)
            if sql_op is None:
                raise UnsupportedPlanError(
                    f"order comparison {predicate.op!r} has no SQL equivalent under "
                    "naive semantics (it raises on nulls); falling back"
                )
            parts: List[str] = []
            params: List[Any] = []
            for term in (predicate.left, predicate.right):
                if isinstance(term, Attr):
                    parts.append(f"{prefix}c{term.ref}")
                else:
                    parts.append("?")
                    params.append(self.codec.encode(term.value))
            return f"{parts[0]} {sql_op} {parts[1]}", tuple(params)
        if isinstance(predicate, (PAnd, POr)):
            if not predicate.operands:
                return ("1", ()) if isinstance(predicate, PAnd) else ("0", ())
            joiner = " AND " if isinstance(predicate, PAnd) else " OR "
            texts: List[str] = []
            params = []
            for operand in predicate.operands:
                text, sub = self.predicate_sql(operand, prefix)
                texts.append(f"({text})")
                params.extend(sub)
            return joiner.join(texts), tuple(params)
        if isinstance(predicate, PNot):
            text, params = self.predicate_sql(predicate.operand, prefix)
            return f"NOT ({text})", params
        raise UnsupportedPlanError(f"unsupported predicate {predicate!r}")

    # -- operator factory hooks ----------------------------------------
    def make_scan(self, node: LScan) -> SQLFragment:
        quoted = table_name(node.name)
        return SQLFragment(
            f"SELECT {_columns(node.arity)} FROM {quoted}",
            (),
            node.arity,
            table=quoted,
            base=node.name,
        )

    def make_const(self, node: LConst) -> SQLFragment:
        relation = node.relation
        if relation.arity == 0:
            raise UnsupportedPlanError("zero-arity constant relations are unsupported")
        select = ", ".join(f"column{i + 1} AS c{i}" for i in range(relation.arity))
        if not relation.rows:
            empty = ", ".join(f"NULL AS c{i}" for i in range(relation.arity))
            return SQLFragment(f"SELECT {empty} WHERE 0", (), relation.arity)
        placeholders = "(" + ", ".join("?" for _ in range(relation.arity)) + ")"
        values = ", ".join(placeholders for _ in range(len(relation.rows)))
        params = tuple(
            self.codec.encode(value) for row in relation.rows for value in row
        )
        return SQLFragment(
            f"SELECT {select} FROM (VALUES {values})", params, relation.arity
        )

    def make_delta(self, node: LDelta) -> SQLFragment:
        self.uses_adom = True
        return SQLFragment(f"SELECT v AS c0, v AS c1 FROM {ADOM_TABLE}", (), 2)

    def make_adom(self, node: LAdom) -> SQLFragment:
        self.uses_adom = True
        return SQLFragment(f"SELECT v AS c0 FROM {ADOM_TABLE}", (), 1)

    def make_filter(self, child: SQLFragment, predicate: Predicate) -> SQLFragment:
        alias = self._alias()
        where, where_params = self.predicate_sql(predicate, f"{alias}.")
        return SQLFragment(
            f"SELECT {_columns(child.arity, alias + '.')} "
            f"FROM ({child.sql}) AS {alias} WHERE {where}",
            child.params + where_params,
            child.arity,
        )

    def make_eq_filter(self, child: SQLFragment, left: int, right: int) -> SQLFragment:
        alias = self._alias()
        return SQLFragment(
            f"SELECT {_columns(child.arity, alias + '.')} "
            f"FROM ({child.sql}) AS {alias} WHERE {alias}.c{left} = {alias}.c{right}",
            child.params,
            child.arity,
        )

    def make_project(self, child: SQLFragment, positions: Tuple[int, ...]) -> SQLFragment:
        alias = self._alias()
        select = ", ".join(f"{alias}.c{p} AS c{i}" for i, p in enumerate(positions))
        return SQLFragment(
            f"SELECT DISTINCT {select} FROM ({child.sql}) AS {alias}",
            child.params,
            len(positions),
        )

    def make_join(
        self,
        left: SQLFragment,
        right: SQLFragment,
        left_keys: Tuple[int, ...],
        right_keys: Tuple[int, ...],
        right_keep: Tuple[int, ...],
    ) -> SQLFragment:
        if right.base is not None and right_keys:
            self.index_requests.append((right.base, right_keys))
        la, ra = self._alias(), self._alias()
        select = [f"{la}.c{i} AS c{i}" for i in range(left.arity)]
        select.extend(
            f"{ra}.c{p} AS c{left.arity + k}" for k, p in enumerate(right_keep)
        )
        if left_keys:
            condition = " AND ".join(
                f"{la}.c{i} = {ra}.c{j}" for i, j in zip(left_keys, right_keys)
            )
            from_clause = f"({left.sql}) AS {la} JOIN ({right.sql}) AS {ra} ON {condition}"
        else:
            from_clause = f"({left.sql}) AS {la}, ({right.sql}) AS {ra}"
        return SQLFragment(
            f"SELECT {', '.join(select)} FROM {from_clause}",
            left.params + right.params,
            left.arity + len(right_keep),
        )

    def make_product(self, left: SQLFragment, right: SQLFragment) -> SQLFragment:
        return self.make_join(left, right, (), (), tuple(range(right.arity)))

    def _compound(self, op: str, left: SQLFragment, right: SQLFragment) -> SQLFragment:
        # Compound operands must not be parenthesized compounds themselves in
        # SQLite, so each side is wrapped as a plain table subquery.
        la, ra = self._alias(), self._alias()
        return SQLFragment(
            f"SELECT {_columns(left.arity, la + '.')} FROM ({left.sql}) AS {la} "
            f"{op} "
            f"SELECT {_columns(right.arity, ra + '.')} FROM ({right.sql}) AS {ra}",
            left.params + right.params,
            left.arity,
        )

    def make_union(self, left: SQLFragment, right: SQLFragment) -> SQLFragment:
        return self._compound("UNION", left, right)

    def make_difference(self, left: SQLFragment, right: SQLFragment) -> SQLFragment:
        return self._compound("EXCEPT", left, right)

    def make_intersection(self, left: SQLFragment, right: SQLFragment) -> SQLFragment:
        return self._compound("INTERSECT", left, right)

    def make_division(
        self,
        left: SQLFragment,
        right: SQLFragment,
        keep: Tuple[int, ...],
        divisor: Tuple[int, ...],
    ) -> SQLFragment:
        """``R ÷ S`` via the RA_cwa rewriting, with R and π_A(R) spilled.

        ``A = π_keep(R)``; the candidates ``reorder(A × S)`` are compared
        against ``R`` with ``EXCEPT``; groups with a missing combination
        are subtracted from ``A``.  An empty divisor yields ``A`` — the
        textbook convention the in-memory engine follows.
        """
        dividend = self.spill(left)
        alias = self._alias()
        keep_select = ", ".join(
            f"{alias}.c{p} AS c{i}" for i, p in enumerate(keep)
        )
        groups = self.spill(
            SQLFragment(
                f"SELECT DISTINCT {keep_select} FROM ({dividend.sql}) AS {alias}",
                dividend.params,
                len(keep),
            )
        )
        ga, ra = self._alias(), self._alias()
        candidate_cols = []
        for position in range(left.arity):
            if position in keep:
                candidate_cols.append(f"{ga}.c{keep.index(position)} AS c{position}")
            else:
                candidate_cols.append(f"{ra}.c{divisor.index(position)} AS c{position}")
        candidates = SQLFragment(
            f"SELECT {', '.join(candidate_cols)} "
            f"FROM ({groups.sql}) AS {ga}, ({right.sql}) AS {ra}",
            groups.params + right.params,
            left.arity,
        )
        missing = self._compound("EXCEPT", candidates, dividend)
        ma = self._alias()
        bad_select = ", ".join(f"{ma}.c{p} AS c{i}" for i, p in enumerate(keep))
        bad = SQLFragment(
            f"SELECT DISTINCT {bad_select} FROM ({missing.sql}) AS {ma}",
            missing.params,
            len(keep),
        )
        return self._compound("EXCEPT", groups, bad)

    def make_opaque(self, node: LOpaque) -> SQLFragment:
        raise UnsupportedPlanError(
            f"no SQL translation for opaque subtree {node.expression!r}; falling back"
        )


def compile_logical_plan(
    plan: LogicalNode, database: Database, codec: Any
) -> CompiledPlan:
    """Compile an optimized logical plan into an executable SQL plan."""
    return SQLCompiler(database, codec).compile(plan)
