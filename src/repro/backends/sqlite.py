"""The SQLite backend: DDL, bulk load, indexes and plan execution.

``engine="sqlite"`` routes :meth:`RAExpression.evaluate` through this
module: the database is loaded once per :class:`~repro.datamodel.Database`
object (cached in the instance's ``analysis_cache``), logical plans are
shared with the in-memory planner's ``(expression, schema)`` cache, and
the compiled SQL plans are cached per backend, so warm repeated queries
cost one ``execute`` + decode.

Design notes
------------

* **Set semantics in the engine.**  Sentinel-mode tables are
  ``WITHOUT ROWID`` with a primary key over all columns, and rows are
  loaded with ``INSERT OR IGNORE`` — the table *is* the set, and doubles
  as a covering index for key prefixes.  Additional indexes mirroring
  ``Relation.index_on`` are created on demand for the join keys the
  compiled plans request.
* **Out-of-core evaluation.**  ``load_rows`` streams from any iterable in
  batches, and intermediates spill to SQLite temp tables, so a backend
  opened on a disk path can load and evaluate instances that do not fit
  in Python memory (``benchmarks/bench_e25_backend.py`` gates this).
* **Fallback.**  Plans outside the compiler's fragment (order
  comparisons, opaque subtrees, zero-arity relations) raise
  :class:`UnsupportedPlanError`; :func:`execute` then falls back to the
  in-memory physical engine, which remains the semantics oracle — the
  differential suite asserts ``sqlite ≡ plan ≡ interpreter``.
"""

from __future__ import annotations

import itertools
import sqlite3
from collections import OrderedDict
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..algebra.ast import RAExpression
from ..datamodel import Database, Relation
from ..datamodel.schema import DatabaseSchema, RelationSchema
from ..engine import planner as _planner
from ..obs.trace import span
from ..resilience import BudgetExceeded, QueryCancelled, active_budget
from .base import (
    Backend,
    BackendError,
    UnsupportedPlanError,
    quote_identifier,
    table_name,
)
from .compiler import ADOM_TABLE, CompiledPlan, SQLCompiler
from .encoding import SentinelCodec

_LOAD_BATCH = 10_000
_PLAN_CACHE_LIMIT = 128
#: Key under which a loaded backend is cached on ``Database.analysis_cache()``.
ANALYSIS_CACHE_KEY = "backends.sqlite"

#: How many SQLite VM opcodes run between deadline checks while a budget
#: with a deadline is armed.  Tuned so the watchdog costs well under 2% on
#: the e25 out-of-core workload while still bounding the cancellation
#: latency of a single long statement to a few milliseconds.
_PROGRESS_OPCODE_INTERVAL = 4000


class SQLiteBackend(Backend):
    """A :class:`Backend` executing compiled plans on SQLite.

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps everything
        in the SQLite heap, a file path enables out-of-core instances.
    codec:
        Value codec; defaults to the injective sentinel codec (naive
        semantics).  The sqlnulls bridge passes ``SQLNullCodec`` instead.
    """

    def __init__(self, path: str = ":memory:", codec: Optional[Any] = None) -> None:
        self._path = path
        self._connection = self._connect()
        self.codec = codec if codec is not None else SentinelCodec()
        self._schema: Optional[DatabaseSchema] = None
        self._database: Optional[Database] = None
        self._plans: "OrderedDict[RAExpression, Tuple[CompiledPlan, RelationSchema]]" = OrderedDict()
        self._indexes: set = set()
        self._adom_ready = False
        self._closed = False
        self._poisoned = False
        self._frozen = False
        self._interrupt_requested = False
        # Budget states whose deadlines the progress handler watches; a
        # stack because evaluations can nest on one connection (a cursor
        # consumer issuing point queries between batches).
        self._deadline_states: List[Any] = []

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False: the connection may serve queries from
        # pool threads (frozen sessions) and be interrupted/closed from
        # another thread.  CPython's sqlite3 runs SQLite in serialized
        # threading mode, so cross-thread use of one handle is safe; the
        # session layer serializes all *mutations* behind its own lock.
        connection = sqlite3.connect(self._path, check_same_thread=False)
        cursor = connection.cursor()
        # The backend is a cache/scratch store, never the system of record:
        # durability is irrelevant, load speed is not.  The rollback
        # journal stays in RAM (not OFF: replace_database relies on
        # ROLLBACK to keep the old data intact when a refill dies midway).
        cursor.execute("PRAGMA journal_mode=MEMORY")
        cursor.execute("PRAGMA synchronous=OFF")
        cursor.close()
        return connection

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        return self._connection

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._connection.close()

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has made the backend read-only."""
        return self._frozen

    def freeze(self) -> None:
        """Make the backend read-only so one handle serves many threads.

        A frozen backend refuses every mutation (loads, schema changes,
        ``replace_database``), serves compiled-plan hits without LRU
        bookkeeping and compiles misses without publishing them, skips
        on-demand index creation, and refuses plans that would spill to
        temp tables (two threads sharing one connection would collide on
        the temp-table names — the caller falls back to the in-memory
        engine for those).  The in-statement deadline watchdog is also
        skipped: a progress handler is per-connection state and would
        cross-cancel unrelated threads.  The active-domain table is
        materialized eagerly here, while the handle is still private, so
        adom-using plans keep working afterwards.  Freezing is one-way.
        """
        if self._frozen:
            return
        self._ensure_healthy()
        if self._schema is not None:
            self._ensure_adom()
        self._frozen = True

    def _refuse_frozen(self, action: str) -> None:
        if self._frozen:
            from ..resilience import InvalidRequestError

            raise InvalidRequestError(f"cannot {action} on a frozen backend")

    def interrupt(self) -> None:
        """Abort the statement currently running on this connection.

        The hard-cancel path of ``Session.cancel()``: safe to call from
        another thread (``sqlite3.Connection.interrupt`` is documented
        thread-safe) and a no-op when no statement is running.  The
        aborted statement surfaces as ``OperationalError("interrupted")``
        inside :meth:`evaluate`/:meth:`execute_cursor`, which re-type it
        as :class:`~repro.resilience.QueryCancelled`.
        """
        self._interrupt_requested = True
        try:
            self._connection.interrupt()
        except sqlite3.Error:
            # A closed/poisoned handle has nothing running to interrupt.
            pass

    # ------------------------------------------------------------------
    # in-statement budget enforcement
    # ------------------------------------------------------------------
    def _arm_progress(self, state: Optional[Any]) -> bool:
        """Install (or stack) the in-statement deadline watchdog.

        Only budgets with a deadline need the progress handler — world
        and block caps cannot trip inside one statement, and cancellation
        is served by :meth:`interrupt` directly — so unbudgeted sessions
        (and the e25 bulk workload) never pay for it.
        """
        if state is None or state.remaining_time() is None:
            return False
        self._deadline_states.append(state)
        if len(self._deadline_states) == 1:
            states = self._deadline_states

            def expired() -> int:
                for armed in states:
                    if armed.cancelled:
                        return 1
                    remaining = armed.remaining_time()
                    if remaining is not None and remaining <= 0:
                        return 1
                return 0

            self._connection.set_progress_handler(expired, _PROGRESS_OPCODE_INTERVAL)
        return True

    def _disarm_progress(self) -> None:
        self._deadline_states.pop()
        if not self._deadline_states:
            self._connection.set_progress_handler(None, 0)

    def _typed_interrupt(
        self, error: sqlite3.OperationalError, state: Optional[Any]
    ) -> BaseException:
        """Re-type SQLite's ``interrupted`` into the resilience taxonomy.

        Three ways a statement aborts mid-flight: :meth:`interrupt` was
        called (→ :class:`QueryCancelled`), the armed budget's deadline
        passed or it was cancelled (→ the typed error its own ``check()``
        raises), or something external interrupted the connection — that
        last one is not ours to re-type and returns ``error`` unchanged.
        """
        if "interrupt" not in str(error).lower():
            return error
        if self._interrupt_requested:
            if not self._frozen:
                # Frozen handles serve many threads: one consumer must not
                # clear the flag before the others re-type their aborts.
                self._interrupt_requested = False
            return QueryCancelled("statement interrupted by Session.cancel()")
        if state is not None:
            try:
                state.check()
            except (BudgetExceeded, QueryCancelled) as typed:
                return typed
        return error

    def _ensure_healthy(self) -> None:
        """Rebuild a poisoned handle before it serves anything.

        A handle is poisoned when a failed refill could not even be rolled
        back (the connection itself died mid-transaction).  Rather than
        serving half-filled tables, the connection is reopened and the
        last consistently-loaded :class:`Database` is reloaded; without
        one (out-of-core loads) the handle stays unusable and raises
        :class:`BackendError`.
        """
        if not self._poisoned:
            return
        database = self._database
        schema = self._schema
        try:
            self._connection.close()
        except sqlite3.Error:
            pass
        self._connection = self._connect()
        self._plans.clear()
        self._indexes.clear()
        self._adom_ready = False
        self._poisoned = False
        if self._path != ":memory:":
            # File-backed: the last *committed* state survived in the file
            # (the failed refill never committed), so the handle serves the
            # old consistent data again; indexes are re-ensured on demand.
            self._schema = schema
            return
        self._schema = None
        if database is not None:
            self._database = None
            self.load_database(database)
        else:
            raise BackendError(
                "backend poisoned by a failed refill and no consistent "
                "in-memory Database is available to rebuild from"
            )

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_schema(self, schema: DatabaseSchema) -> None:
        if self._schema is not None:
            if self._schema == schema:
                return
            raise BackendError("backend already holds a different schema")
        self._refuse_frozen("create a schema")
        cursor = self._connection.cursor()
        for relation in schema:
            cursor.execute(self._create_table_sql(relation))
        self._connection.commit()
        self._schema = schema

    def _create_table_sql(self, relation: RelationSchema) -> str:
        if relation.arity == 0:
            raise UnsupportedPlanError(
                f"relation {relation.name!r} has arity 0; SQL tables need a column"
            )
        column_type = self.codec.column_type
        columns = ", ".join(
            f"c{i} {column_type}".rstrip() for i in range(relation.arity)
        )
        if self.codec.set_semantics:
            key = ", ".join(f"c{i}" for i in range(relation.arity))
            return (
                f"CREATE TABLE {table_name(relation.name)} "
                f"({columns}, PRIMARY KEY ({key})) WITHOUT ROWID"
            )
        return f"CREATE TABLE {table_name(relation.name)} ({columns})"

    # ------------------------------------------------------------------
    # bulk load / extract
    # ------------------------------------------------------------------
    def load_database(self, database: Database) -> None:
        self.create_schema(database.schema)
        for relation in database.relations():
            self.load_rows(relation.name, relation.rows)
        self._database = database

    def replace_database(self, database: Database) -> None:
        """Point this backend at a different :class:`Database` instance.

        The first step of the ROADMAP "persistent backend" item: a session
        keeps *one* live connection across queries, and switching to
        another database reuses it instead of opening/loading a fresh
        backend.  When the new instance shares the current schema, the
        tables are emptied and refilled — DDL, created indexes and the
        connection survive; a different schema drops every table first.

        The whole switch — empty/drop, re-create, refill — runs in a
        *single transaction*: if any step dies (a failing codec, a broken
        row iterator, an I/O error) the transaction is rolled back and the
        handle keeps serving the old data unchanged.  If even the rollback
        fails the handle is poisoned and rebuilt on next use
        (:meth:`_ensure_healthy`) instead of serving half-filled tables.
        """
        if self._frozen:
            if database is self._database:
                return  # already serving exactly this instance
            self._refuse_frozen("replace the database")
        self._ensure_healthy()
        if self._schema is None:
            with span("backend.replace_database", fresh=True):
                self.load_database(database)
            return
        # Cache invalidation is safe to do up front: stale-dropping plans
        # and the adom is conservative whether the refill succeeds or not.
        self._plans.clear()
        self._adom_ready = False
        same_schema = database.schema == self._schema
        connection = self._connection
        cursor = connection.cursor()
        try:
            with span("backend.replace_database", same_schema=same_schema):
                # Explicit BEGIN: the sqlite3 module's implicit transaction
                # only starts at the first DML, which would let the
                # DROP/CREATE of a schema switch autocommit — and survive
                # the rollback.
                cursor.execute("BEGIN")
                cursor.execute(f"DROP TABLE IF EXISTS {ADOM_TABLE}")
                if same_schema:
                    for relation in self._schema:
                        cursor.execute(f"DELETE FROM {table_name(relation.name)}")
                else:
                    for relation in self._schema:
                        cursor.execute(
                            f"DROP TABLE IF EXISTS {table_name(relation.name)}"
                        )
                    for relation in database.schema:
                        cursor.execute(self._create_table_sql(relation))
                for relation in database.relations():
                    self._write_rows(
                        cursor, database.schema[relation.name], relation.rows
                    )
                connection.commit()
        except BaseException:
            try:
                connection.rollback()
            except sqlite3.Error:
                self._poisoned = True
            raise
        finally:
            try:
                cursor.close()
            except sqlite3.Error:
                pass
        # Python-side bookkeeping changes only after the commit succeeded.
        if not same_schema:
            self._schema = database.schema
            self._indexes.clear()
        self._database = database

    def _write_rows(
        self, cursor: sqlite3.Cursor, schema: RelationSchema, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Stream ``rows`` into ``schema``'s table in batches, *without*
        committing — the caller owns the transaction boundary."""
        placeholders = ", ".join("?" for _ in range(schema.arity))
        verb = "INSERT OR IGNORE" if self.codec.set_semantics else "INSERT"
        statement = f"{verb} INTO {table_name(schema.name)} VALUES ({placeholders})"
        encode_row = self.codec.encode_row
        encoded = (encode_row(row) for row in rows)
        total = 0
        while True:
            batch = list(itertools.islice(encoded, _LOAD_BATCH))
            if not batch:
                break
            cursor.executemany(statement, batch)
            total += len(batch)
        return total

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        self._refuse_frozen("load rows")
        self._ensure_healthy()
        if self._schema is None or name not in self._schema:
            raise BackendError(f"unknown relation {name!r}; create the schema first")
        # Data changed: the materialized active domain and the compiled
        # plans (whose join orders were costed on the old sizes) go stale.
        if self._adom_ready:
            self._connection.execute(f"DROP TABLE IF EXISTS {ADOM_TABLE}")
            self._adom_ready = False
        self._plans.clear()
        cursor = self._connection.cursor()
        try:
            total = self._write_rows(cursor, self._schema[name], rows)
            self._connection.commit()
        except BaseException:
            # One load_rows call is all-or-nothing, like replace_database.
            try:
                self._connection.rollback()
            except sqlite3.Error:
                self._poisoned = True
            raise
        finally:
            try:
                cursor.close()
            except sqlite3.Error:
                pass
        return total

    def extract_relation(self, name: str) -> Relation:
        """Relation ``name`` read back out (set semantics, decoded values)."""
        if self._schema is None or name not in self._schema:
            raise BackendError(f"unknown relation {name!r}")
        schema = self._schema[name]
        cursor = self._connection.execute(
            f"SELECT {', '.join(f'c{i}' for i in range(schema.arity))} "
            f"FROM {table_name(name)}"
        )
        decode_row = self.codec.decode_row
        return Relation._from_trusted(
            schema, frozenset(decode_row(row) for row in cursor)
        )

    # ------------------------------------------------------------------
    # indexes and the active-domain table
    # ------------------------------------------------------------------
    def ensure_index(self, name: str, positions: Tuple[int, ...]) -> None:
        """Create (once) the index ``Relation.index_on(positions)`` mirrors."""
        key = (name, tuple(positions))
        if key in self._indexes:
            return
        # ":"/"," cannot appear in a position list, so distinct
        # (relation, positions) pairs always get distinct index names
        # (a "_" separator would conflate e.g. ("a_1", (2,)) and ("a", (1, 2))).
        index_name = quote_identifier(
            "idx_" + name + ":" + ",".join(str(p) for p in positions)
        )
        columns = ", ".join(f"c{p}" for p in positions)
        self._connection.execute(
            f"CREATE INDEX IF NOT EXISTS {index_name} ON {table_name(name)} ({columns})"
        )
        self._indexes.add(key)

    def _ensure_adom(self) -> None:
        """Materialize the active domain: every column of every relation."""
        if self._adom_ready:
            return
        selects: List[str] = []
        for relation in self._schema or ():
            for position in range(relation.arity):
                selects.append(
                    f"SELECT c{position} AS v FROM {table_name(relation.name)}"
                )
        # A rolled-back refill can resurrect a previously dropped adom
        # temp table (temp tables are transactional too), so the create
        # must not assume the DROP that reset ``_adom_ready`` survived.
        self._connection.execute(f"DROP TABLE IF EXISTS {ADOM_TABLE}")
        if selects:
            body = " UNION ".join(selects)
            self._connection.execute(f"CREATE TEMP TABLE {ADOM_TABLE} AS {body}")
        else:
            self._connection.execute(f"CREATE TEMP TABLE {ADOM_TABLE} (v)")
        self._adom_ready = True

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------
    def _plan_for(
        self, expression: RAExpression, plan_cache: Optional[Any] = None
    ) -> Tuple[CompiledPlan, RelationSchema]:
        """The compiled SQL plan and output schema for ``expression`` (cached)."""
        if self._schema is None:
            raise BackendError("no database loaded")
        entry = self._plans.get(expression)
        if self._frozen:
            # Read-only: serve hits without LRU reordering, compile misses
            # without publishing them, and never create indexes or adom
            # tables on the shared connection.  Plans that spill to temp
            # tables cannot run concurrently on one connection — refuse
            # them so the caller's in-memory fallback takes over.
            if entry is None:
                schema = self._schema
                out_schema = expression.output_schema(schema)
                if plan_cache is None:
                    logical = _planner.compile_plan(expression, schema)
                else:
                    logical = plan_cache.compile(expression, schema)
                stats = self._database if self._database is not None else _BackendStats(self)
                entry = (SQLCompiler(stats, self.codec).compile(logical), out_schema)
            plan, out_schema = entry
            if plan.uses_adom and not self._adom_ready:
                raise BackendError("frozen backend has no materialized active domain")
            if plan.setup:
                raise BackendError(
                    "plan spills to temp tables; not runnable on a frozen backend"
                )
            return plan, out_schema
        if entry is None:
            schema = self._schema
            out_schema = expression.output_schema(schema)
            # Reuse the planner's (expression, schema) logical-plan cache:
            # the SQL path optimizes exactly once with the in-memory one.
            # Sessions pass their own PlanCache so plans stay per-session.
            if plan_cache is None:
                logical = _planner.compile_plan(expression, schema)
            else:
                logical = plan_cache.compile(expression, schema)
            # Join ordering costs against the in-memory instance when one
            # is attached, else against SQL COUNT(*) statistics — the
            # out-of-core case, where no Database object ever exists.
            stats = self._database if self._database is not None else _BackendStats(self)
            plan = SQLCompiler(stats, self.codec).compile(logical)
            entry = (plan, out_schema)
            self._plans[expression] = entry
            if len(self._plans) > _PLAN_CACHE_LIMIT:
                self._plans.popitem(last=False)
        else:
            self._plans.move_to_end(expression)
        plan, out_schema = entry
        if plan.uses_adom:
            self._ensure_adom()
        for name, positions in plan.index_requests:
            self.ensure_index(name, positions)
        return plan, out_schema

    def _teardown(self, cursor: sqlite3.Cursor, plan: CompiledPlan) -> None:
        """Best-effort cleanup of a plan's temp tables and statement state.

        Runs in ``finally`` blocks, typically *because* something already
        went wrong — so every step tolerates further SQLite errors (a
        closed connection cannot drop its temp tables, and that is fine:
        they died with it).  Each teardown statement is attempted even if
        an earlier one fails, so one broken DROP cannot leak the rest.
        """
        try:
            for statement in plan.teardown:
                try:
                    cursor.execute(statement)
                except sqlite3.Error:
                    pass
        finally:
            try:
                cursor.close()
            except sqlite3.Error:
                pass

    def evaluate(
        self, expression: RAExpression, plan_cache: Optional[Any] = None
    ) -> Relation:
        self._ensure_healthy()
        if not self._frozen:
            self._interrupt_requested = False
        plan, out_schema = self._plan_for(expression, plan_cache)
        state = active_budget()
        # Frozen backends never install the progress handler: it is
        # per-connection state, so one thread's deadline would abort every
        # other thread's statement.  Deadlines still trip at the world
        # ticks; Session.cancel() still interrupts via interrupt().
        armed = False if self._frozen else self._arm_progress(state)
        cursor = self._connection.cursor()
        try:
            with span("backend.evaluate", spills=len(plan.setup)) as sp:
                try:
                    for statement, params in plan.setup:
                        cursor.execute(statement, params)
                    rows = cursor.execute(plan.query, plan.params).fetchall()
                    sp.set(rows=len(rows))
                except sqlite3.OperationalError as error:
                    typed = self._typed_interrupt(error, state)
                    if typed is error:
                        raise
                    raise typed from error
        finally:
            # Disarm before teardown so an expired deadline cannot abort
            # the DROPs that keep temp tables from leaking.
            if armed:
                self._disarm_progress()
            self._teardown(cursor, plan)
        decode_row = self.codec.decode_row
        return Relation._from_trusted(
            out_schema, frozenset(decode_row(row) for row in rows)
        )

    def execute_cursor(
        self,
        expression: RAExpression,
        batch_size: int = 1024,
        plan_cache: Optional[Any] = None,
    ) -> Iterator[Tuple[Any, ...]]:
        """Stream the answer rows of ``expression``, decoded, batch by batch.

        Unlike :meth:`evaluate` this never materializes the result set on
        the Python side — rows are pulled from SQLite with ``fetchmany``
        and yielded one at a time, so a query whose answer is larger than
        memory can still be consumed incrementally (this is what
        :meth:`repro.session.Query.cursor` rides on).  The plan's
        temp-table teardown runs when the stream is exhausted *or* the
        generator is closed early, so abandoning a cursor cannot leak
        spilled intermediates.  Rows are distinct: the generated SQL keeps
        set semantics, so no Python-side dedup set is needed.

        When a budget with a deadline is armed the in-statement watchdog
        (:meth:`_arm_progress`) stays installed until the stream is
        closed — fetches happen mid-statement, so the deadline must be
        enforced across the whole consumption, not just the first execute.
        """
        self._ensure_healthy()
        if not self._frozen:
            self._interrupt_requested = False
        plan, out_schema = self._plan_for(expression, plan_cache)
        decode_row = self.codec.decode_row
        state = active_budget()
        armed = False if self._frozen else self._arm_progress(state)
        cursor = self._connection.cursor()
        try:
            # A span per fetched batch, not per stream: a generator can be
            # parked indefinitely between next() calls, which would make a
            # whole-stream span measure the consumer, not the backend.
            try:
                with span("backend.cursor.open", spills=len(plan.setup)):
                    for statement, params in plan.setup:
                        cursor.execute(statement, params)
                    cursor.execute(plan.query, plan.params)
                while True:
                    with span("backend.cursor.batch") as sp:
                        batch = cursor.fetchmany(batch_size)
                        sp.set(rows=len(batch))
                    if not batch:
                        break
                    for row in batch:
                        yield decode_row(row)
            except sqlite3.OperationalError as error:
                typed = self._typed_interrupt(error, state)
                if typed is error:
                    raise
                raise typed from error
        finally:
            # Teardown must survive a backend that died mid-iteration
            # (fetch fault, closed connection): the original error, not a
            # teardown error, is what the consumer should see — and on a
            # still-healthy connection the temp tables really are dropped.
            if armed:
                self._disarm_progress()
            self._teardown(cursor, plan)


class _RelationStats:
    """A sized stand-in for a relation during cost estimation."""

    __slots__ = ("_count",)

    def __init__(self, count: int) -> None:
        self._count = count

    def __len__(self) -> int:
        return self._count


class _BackendStats:
    """Duck-typed ``Database`` substitute feeding the planner's estimates.

    Only the two entry points :func:`repro.engine.planner.estimate` uses
    are provided: ``relation(name)`` (for ``len``) and ``size()``.  Row
    counts come from ``COUNT(*)`` and are cached per backend lifetime.
    """

    __slots__ = ("_backend", "_counts")

    def __init__(self, backend: SQLiteBackend) -> None:
        self._backend = backend
        self._counts: dict = {}

    def _count(self, name: str) -> int:
        count = self._counts.get(name)
        if count is None:
            cursor = self._backend.connection.execute(
                f"SELECT COUNT(*) FROM {table_name(name)}"
            )
            count = cursor.fetchone()[0]
            self._counts[name] = count
        return count

    def relation(self, name: str) -> _RelationStats:
        return _RelationStats(self._count(name))

    def size(self) -> int:
        schema = self._backend._schema
        return sum(self._count(rel.name) for rel in schema or ())


# ----------------------------------------------------------------------
# engine="sqlite" dispatch
# ----------------------------------------------------------------------
def backend_for(database: Database, path: str = ":memory:") -> SQLiteBackend:
    """The loaded backend of ``database``, creating and caching it on demand.

    Backends are cached in the database's ``analysis_cache`` (databases
    are immutable), one per storage ``path``, so repeated queries against
    the same instance reuse the loaded tables, the indexes and the
    compiled plans — and an explicit on-disk path never silently aliases
    the default in-memory backend.
    """
    cache = database.analysis_cache()
    backends = cache.setdefault(ANALYSIS_CACHE_KEY, {})
    backend = backends.get(path)
    if backend is None:
        backend = SQLiteBackend(path)
        backend.load_database(database)
        backends[path] = backend
    return backend


# SQLite OperationalError messages that signal an *environmental limit*
# (plan too deep/wide for the engine), not a bug in the generated SQL.
_SQLITE_LIMIT_MARKERS = (
    "parser stack overflow",
    "expression tree is too large",
    "too many terms in compound select",
    "too many sql variables",
    "too many from clause terms",
)


def _is_engine_limit(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return any(marker in message for marker in _SQLITE_LIMIT_MARKERS)


# OperationalError messages that signal an *infrastructure* failure — the
# storage layer is unhealthy, the generated SQL is fine.
_SQLITE_RUNTIME_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
    "disk i/o error",
    "database or disk is full",
    "unable to open database file",
)


def is_runtime_failure(error: BaseException) -> bool:
    """Is ``error`` an environmental backend failure (vs. a code bug)?

    The session's recovery path falls back to the in-memory engine only
    for failures of the *infrastructure* — locks, I/O, a dead or corrupt
    connection.  Any other ``sqlite3`` error (above all an
    ``OperationalError`` about malformed SQL) stays loud: a blanket
    fallback would let a broken compiler pass every differential test by
    silently answering with the in-memory engine.
    """
    if isinstance(error, sqlite3.OperationalError):
        if _is_engine_limit(error):
            return True
        message = str(error).lower()
        return any(marker in message for marker in _SQLITE_RUNTIME_MARKERS)
    if isinstance(error, sqlite3.ProgrammingError):
        # "Cannot operate on a closed database/cursor."
        return "closed" in str(error).lower()
    if isinstance(error, (sqlite3.IntegrityError, sqlite3.DataError)):
        return False
    # InterfaceError and bare DatabaseError (e.g. "database disk image is
    # malformed") mean the handle, not the SQL, is broken.
    return isinstance(error, (sqlite3.InterfaceError, sqlite3.DatabaseError))


def execute(expression: RAExpression, database: Database) -> Relation:
    """Evaluate ``expression`` on ``database`` through SQLite.

    Queries outside the compiler's fragment — and environmental SQLite
    limits such as a parser stack overflow on very deep plans — fall back
    to the in-memory physical engine, so ``engine="sqlite"`` is total
    over the algebra.  Genuine programming errors (malformed generated
    SQL, i.e. any other ``OperationalError``) still surface loudly — a
    blanket fallback would let a broken compiler pass every differential
    test by silently answering with the in-memory engine.
    """
    try:
        return backend_for(database).evaluate(expression)
    except BackendError:
        return _planner.execute(expression, database)
    except sqlite3.OperationalError as error:
        if _is_engine_limit(error):
            return _planner.execute(expression, database)
        raise
