"""SQL-backend compilation: push naive evaluation down to a real database.

The paper's naive-evaluation theorem means certain answers for the
well-behaved fragments are computed by *standard* relational evaluation
over a database whose marked nulls are encoded as distinguishable
constants — which is precisely a job for an off-the-shelf SQL engine.
This package provides:

* :mod:`repro.backends.base` — the :class:`Backend` protocol (DDL, bulk
  load/extract, plan execution) and the error taxonomy;
* :mod:`repro.backends.encoding` — the injective marked-null ⇄
  sentinel-constant codec (and the lossy SQL-``NULL`` codec used by the
  :mod:`repro.sqlnulls` comparison demos);
* :mod:`repro.backends.compiler` — logical plans → SQL text, reusing the
  planner's cost-based lowering hooks;
* :mod:`repro.backends.sqlite` — the SQLite implementation behind
  ``engine="sqlite"``.

See ``docs/backends.md`` for the architecture and how to add a backend.
"""

from .base import (
    Backend,
    BackendError,
    EncodingError,
    UnsupportedPlanError,
    table_name,
)
from .compiler import CompiledPlan, SQLCompiler, compile_logical_plan
from .encoding import SentinelCodec, SQLNullCodec
from .sqlite import ANALYSIS_CACHE_KEY, SQLiteBackend, backend_for
from .sqlite import execute as execute_sqlite

__all__ = [
    "ANALYSIS_CACHE_KEY",
    "Backend",
    "BackendError",
    "CompiledPlan",
    "EncodingError",
    "SQLCompiler",
    "SQLNullCodec",
    "SQLiteBackend",
    "SentinelCodec",
    "UnsupportedPlanError",
    "backend_for",
    "compile_logical_plan",
    "execute_sqlite",
    "table_name",
]
