"""The backend protocol: what a SQL (or other external) engine must provide.

The paper's central observation is that *naive evaluation* — treat marked
nulls as ordinary values and run standard relational evaluation — computes
certain answers for the well-behaved fragments.  "Standard relational
evaluation" is exactly what off-the-shelf SQL engines are good at, so a
backend that (a) encodes marked nulls as distinguishable constants and
(b) translates the logical plans of :mod:`repro.engine` into SQL can push
the whole evaluation down to a database that is not limited by Python
process memory.

A backend owns four responsibilities, mirrored by the abstract methods of
:class:`Backend`:

* **DDL** — derive table definitions from a
  :class:`~repro.datamodel.schema.DatabaseSchema` (:meth:`create_schema`);
* **bulk load / extract** — move relations in and out
  (:meth:`load_database`, :meth:`load_rows`, :meth:`extract_relation`),
  streaming so instances larger than Python memory can be loaded;
* **plan execution** — evaluate an
  :class:`~repro.algebra.ast.RAExpression` against the loaded instance
  (:meth:`evaluate`), reusing the planner's logical optimization;
* **lifecycle** — connection/transaction management (:meth:`close`, the
  context-manager protocol).

Backends raise :class:`UnsupportedPlanError` for query shapes outside
their supported fragment; the engine dispatch catches it and falls back
to the in-memory physical engine, which stays the semantics oracle.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from ..algebra.ast import RAExpression
from ..datamodel import Database, Relation
from ..datamodel.schema import DatabaseSchema
from ..resilience import ReproError


class BackendError(ReproError):
    """Base class of backend failures (encoding, DDL, execution)."""


class UnsupportedPlanError(BackendError):
    """The plan (or schema) lies outside the backend's supported fragment.

    Raised during compilation or loading; the ``engine="sqlite"`` dispatch
    treats it as a signal to fall back to the in-memory physical engine,
    so unsupported queries stay correct instead of failing.
    """


class EncodingError(BackendError):
    """A value cannot be encoded for (or decoded from) backend storage."""


def quote_identifier(name: str) -> str:
    """Quote an arbitrary string as a SQL identifier (doubling ``\"``)."""
    return '"' + name.replace('"', '""') + '"'


def table_name(relation_name: str) -> str:
    """The quoted backend table name of a relation.

    User relation names are prefixed so they can never collide with the
    backend's internal tables (the active-domain table, temp spills).
    """
    return quote_identifier("t_" + relation_name)


class Backend(abc.ABC):
    """Abstract base class of plan-executing storage backends."""

    @abc.abstractmethod
    def create_schema(self, schema: DatabaseSchema) -> None:
        """Create one table per relation schema (idempotent per backend)."""

    @abc.abstractmethod
    def load_database(self, database: Database) -> None:
        """Create the schema and bulk-load every relation of ``database``."""

    @abc.abstractmethod
    def load_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Stream ``rows`` into relation ``name``; returns the rows written.

        ``rows`` may be a generator: backends insert in batches so the
        full relation never needs to exist in Python memory at once.
        """

    @abc.abstractmethod
    def extract_relation(self, name: str) -> Relation:
        """Read relation ``name`` back out as an in-memory :class:`Relation`."""

    @abc.abstractmethod
    def evaluate(self, expression: RAExpression) -> Relation:
        """Evaluate ``expression`` on the loaded instance (naive semantics)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the connection; further calls are undefined."""

    def interrupt(self) -> None:
        """Abort any statement currently executing on this backend.

        The hard-cancel path of ``Session.cancel()``: must be safe to
        call from another thread and a no-op when nothing is running.
        Backends without an interruptible driver inherit this no-op —
        their evaluations are then only cancellable at call boundaries.
        """

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
