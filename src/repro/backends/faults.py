"""Fault injection: deterministic failures for the chaos suite.

The robustness layer (budgets, retries, recovery, crash-consistent
refills) is only trustworthy if its failure paths are *exercised*, and
real infrastructure fails rarely and nondeterministically.  This module
makes failure a scheduled, repeatable event:

* :class:`FaultSchedule` decides *which call fails*: per operation name
  ("evaluate", "fetch", "load_rows", ...) it holds either a set of
  1-based call indexes or a predicate over the call index.  Index-based
  faults are naturally *transient* — the retried call has a higher index
  and succeeds — so one schedule tests both the retry path (fail call 1)
  and the give-up path (fail calls 1..4).

* :class:`FaultInjectingBackend` wraps any :class:`~.base.Backend` and
  consults the schedule before delegating.  The stream of
  ``execute_cursor`` additionally fires a ``"fetch"`` fault per row
  yielded, which is how the mid-iteration teardown path is tested.

* :class:`FaultInjectingCodec` wraps a value codec and fails the Nth
  ``encode_row`` call — the only way to die *inside* a bulk refill,
  since ``replace_database`` drives the row iteration itself.

Deterministic *clocks* live in :mod:`repro.resilience`
(:class:`~repro.resilience.ManualClock`); together the two modules make
"the backend dies on the third fetch while the deadline expires" an
ordinary unit test.
"""

from __future__ import annotations

import sqlite3
import time
from collections import Counter
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.ast import RAExpression
from ..datamodel import Database, Relation
from ..datamodel.schema import DatabaseSchema
from .base import Backend

__all__ = [
    "FaultInjectingBackend",
    "FaultInjectingCodec",
    "FaultInjectingExecutor",
    "FaultSchedule",
]

#: A fault spec: 1-based call indexes that fail, or a predicate over them.
FaultSpec = Union[Iterable[int], Callable[[int], bool]]


def _default_error(op: str) -> BaseException:
    # The transient flavor: retryable per resilience.is_transient_error,
    # so schedules exercise the retry machinery unless told otherwise.
    return sqlite3.OperationalError("database is locked")


class FaultSchedule:
    """Decides which calls of which operations fail, and with what error.

    Parameters
    ----------
    plan:
        Mapping from operation name to a :data:`FaultSpec`.  Operation
        names are the :class:`FaultInjectingBackend` method names plus
        ``"fetch"`` (one count per row pulled from a cursor stream).
    error:
        How to build the injected exception: an exception class
        (instantiated with a descriptive message), or a callable taking
        the operation name and returning an exception instance.  Defaults
        to the transient ``sqlite3.OperationalError("database is locked")``.

    The schedule also keeps counters: ``calls[op]`` is how many times the
    operation ran, ``injected[op]`` how many faults actually fired —
    tests assert on both.
    """

    def __init__(
        self,
        plan: Optional[Mapping[str, FaultSpec]] = None,
        *,
        error: Union[type, Callable[[str], BaseException], None] = None,
    ) -> None:
        self._plan: dict = {}
        for op, spec in (plan or {}).items():
            self._plan[op] = spec if callable(spec) else frozenset(spec)
        if error is None:
            self._error: Callable[[str], BaseException] = _default_error
        elif isinstance(error, type):
            self._error = lambda op: error(f"injected fault in {op}")
        else:
            self._error = error
        self.calls: Counter = Counter()
        self.injected: Counter = Counter()

    def record(self, op: str) -> bool:
        """Count one call of ``op``; return whether it should fail."""
        self.calls[op] += 1
        spec = self._plan.get(op)
        if spec is None:
            return False
        index = self.calls[op]
        hit = spec(index) if callable(spec) else index in spec
        if hit:
            self.injected[op] += 1
        return hit

    def fire(self, op: str) -> None:
        """Count one call of ``op`` and raise if the schedule says so."""
        if self.record(op):
            raise self._error(op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(sorted(self._plan)) or "<empty>"
        return f"FaultSchedule({ops}; {sum(self.injected.values())} fired)"


class FaultInjectingBackend(Backend):
    """A :class:`Backend` proxy that fails on schedule, else delegates.

    Everything not intercepted here — ``connection``, ``codec``, the
    private bookkeeping the session layer peeks at — falls through to the
    wrapped backend via ``__getattr__``, so the proxy is drop-in wherever
    a real backend is expected.
    """

    def __init__(self, inner: Backend, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self.schedule.fire("close")
        self.inner.close()

    def interrupt(self) -> None:
        # The cancel path must stay usable while everything else burns, so
        # "interrupt" faults are counted but exercised like any other op:
        # a scheduled fault simulates e.g. a driver whose interrupt throws.
        self.schedule.fire("interrupt")
        self.inner.interrupt()

    # -- DDL / load / extract ------------------------------------------
    def create_schema(self, schema: DatabaseSchema) -> None:
        self.schedule.fire("create_schema")
        self.inner.create_schema(schema)

    def load_database(self, database: Database) -> None:
        self.schedule.fire("load_database")
        self.inner.load_database(database)

    def load_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        self.schedule.fire("load_rows")
        return self.inner.load_rows(name, rows)

    def replace_database(self, database: Database) -> None:
        self.schedule.fire("replace_database")
        self.inner.replace_database(database)

    def extract_relation(self, name: str) -> Relation:
        self.schedule.fire("extract_relation")
        return self.inner.extract_relation(name)

    # -- plan execution -------------------------------------------------
    def evaluate(
        self, expression: RAExpression, plan_cache: Optional[Any] = None
    ) -> Relation:
        self.schedule.fire("evaluate")
        return self.inner.evaluate(expression, plan_cache)

    def execute_cursor(
        self,
        expression: RAExpression,
        batch_size: int = 1024,
        plan_cache: Optional[Any] = None,
    ) -> Iterator[Tuple[Any, ...]]:
        self.schedule.fire("execute_cursor")
        stream = self.inner.execute_cursor(expression, batch_size, plan_cache)
        try:
            for row in stream:
                self.schedule.fire("fetch")
                yield row
        finally:
            # An injected fetch fault (or an abandoned consumer) must
            # still run the inner generator's teardown path.
            stream.close()

    # -- everything else falls through ---------------------------------
    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class _DelayedFuture:
    """A future whose child is *slow*: the result arrives ``delay`` late.

    Deterministic from the consumer's point of view: ``result(timeout)``
    raises the standard :class:`~concurrent.futures.TimeoutError` when
    the injected delay exceeds the consumer's patience, exactly like a
    child that is alive but too slow for the heartbeat.
    """

    def __init__(self, inner: Future, delay: float, sleep: Callable[[float], None]) -> None:
        self._inner = inner
        self._delay = delay
        self._sleep = sleep

    def result(self, timeout: Optional[float] = None) -> Any:
        if timeout is not None and self._delay > timeout:
            self._sleep(timeout)
            raise FutureTimeoutError()
        self._sleep(self._delay)
        return self._inner.result(timeout)

    def cancel(self) -> bool:
        return self._inner.cancel()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultInjectingExecutor:
    """A process-pool proxy that injects *pool-level* faults on schedule.

    The worker-pool chaos tests killed children with real ``SIGKILL``,
    which exercises ``BrokenProcessPool`` — but not the other ways pools
    misbehave.  This proxy wraps any executor and consults a
    :class:`FaultSchedule` at every ``submit`` with three operations,
    counted independently (1-based call indexes, like every schedule op):

    * ``"submit"`` — raise :class:`BrokenProcessPool` *at submission*,
      the shape a pool takes after its manager thread noticed a dead
      child;
    * ``"lose"`` — return a future that never completes: the child hung
      (deadlock, livelock, stuck I/O) without dying, the case SIGKILL
      chaos cannot produce and only a heartbeat timeout can catch;
    * ``"delay"`` — wrap the real future so its result arrives
      ``delay`` seconds late (a slow child: alive, correct, just late).

    Everything else (``shutdown``, ``map``, context management) falls
    through to the wrapped executor, so the proxy drops into
    ``enumerate_certain_answers(pool_factory=...)`` unchanged.
    """

    def __init__(
        self,
        inner: Any,
        schedule: FaultSchedule,
        *,
        delay: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.delay = delay
        self._sleep = sleep

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        if self.schedule.record("submit"):
            raise BrokenProcessPool("injected pool breakage at submit")
        if self.schedule.record("lose"):
            # A bare Future nobody will ever resolve: the hung-child case.
            return Future()
        future = self.inner.submit(fn, *args, **kwargs)
        if self.schedule.record("delay"):
            return _DelayedFuture(future, self.delay, self._sleep)
        return future

    def shutdown(self, wait: bool = True, **kwargs: Any) -> None:
        self.inner.shutdown(wait=wait, **kwargs)

    def __enter__(self) -> "FaultInjectingExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class FaultInjectingCodec:
    """A value-codec proxy whose ``encode_row`` fails at the Nth call.

    ``replace_database`` iterates the new database's rows itself, so a
    scheduled *method* fault can only fire before the refill starts; a
    codec fault fires *inside* the refill transaction — exactly the
    mid-refill crash the crash-consistency guarantee is about.
    """

    def __init__(
        self,
        inner: Any,
        *,
        fail_encode_at: Optional[int] = None,
        error: Optional[Callable[[], BaseException]] = None,
    ) -> None:
        self.inner = inner
        self.fail_encode_at = fail_encode_at
        self.encode_calls = 0
        self._error = error if error is not None else (
            lambda: sqlite3.OperationalError("disk I/O error")
        )

    def encode_row(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        self.encode_calls += 1
        if self.fail_encode_at is not None and self.encode_calls == self.fail_encode_at:
            raise self._error()
        return self.inner.encode_row(row)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
