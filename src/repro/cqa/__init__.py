"""Consistent query answering: repairs and certain answers over them.

The paper's Section 7 ("Applications") lists consistency management /
consistent query answering (reference [15], Bertossi's monograph) among the
areas whose "standard semantics of query answering is based on certain
answers".  This package implements that application on top of the library's
core machinery:

* :mod:`repro.cqa.repairs` — conflict detection with respect to functional
  dependencies and subset repairs (maximal consistent sub-instances);
* :mod:`repro.cqa.answering` — consistent answers as the intersection of
  the query answers over all repairs, i.e. certain answers where the
  semantics ``[[D]]`` of an inconsistent database is its set of repairs.

The framing follows the paper exactly: an inconsistent database is just
another kind of incomplete object, its repairs are its possible worlds, and
consistent answers are the corresponding notion of certainty.
"""

from .answering import (
    consistent_answers,
    consistent_boolean,
    possible_answers_over_repairs,
    repair_semantics,
)
from .repairs import (
    Conflict,
    conflict_graph,
    conflicting_facts,
    count_repairs,
    is_consistent,
    repairs,
)

__all__ = [
    "Conflict",
    "conflict_graph",
    "conflicting_facts",
    "consistent_answers",
    "consistent_boolean",
    "count_repairs",
    "is_consistent",
    "possible_answers_over_repairs",
    "repair_semantics",
    "repairs",
]
