"""Conflicts and subset repairs of an inconsistent database.

Given a database ``D`` and a set of functional dependencies Σ, a *subset
repair* is a maximal sub-instance of ``D`` that satisfies Σ (Arenas,
Bertossi and Chomicki's classical notion, surveyed in the paper's reference
[15]).  Because an FD violation always involves exactly two tuples, the
conflicts form a graph over the facts of ``D`` and the repairs are exactly
the maximal independent sets of that graph — which is how this module
computes them.

Databases may contain marked nulls.  By default conflicts are detected
*naively* (nulls equal only to themselves, the usual implementation
shortcut the paper criticises); ``violation="certain"`` instead flags a
pair only when it violates the dependency in **every** possible world, the
conservative choice that never repairs away tuples that might be fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from ..constraints.dependencies import ConstraintSet, FunctionalDependency
from ..datamodel import Database, Relation
from ..datamodel.database import Fact
from ..datamodel.values import is_null

#: The two ways of deciding whether a pair of tuples violates an FD.
VIOLATION_MODES = ("naive", "certain")


@dataclass(frozen=True)
class Conflict:
    """A pair of facts that jointly violate a functional dependency."""

    dependency: FunctionalDependency
    first: Fact
    second: Fact

    def facts(self) -> Tuple[Fact, Fact]:
        """The two conflicting facts."""
        return (self.first, self.second)

    def __str__(self) -> str:
        return f"{self.first} ⚡ {self.second} [{self.dependency}]"


def _as_constraint_list(constraints) -> List[FunctionalDependency]:
    if isinstance(constraints, ConstraintSet):
        return list(constraints)
    if isinstance(constraints, FunctionalDependency):
        return [constraints]
    return list(constraints)


def _pair_violates(
    dependency: FunctionalDependency,
    relation: Relation,
    first: Tuple,
    second: Tuple,
    violation: str,
) -> bool:
    lhs_positions = [relation.schema.index_of(a) for a in dependency.lhs]
    rhs_positions = [relation.schema.index_of(a) for a in dependency.rhs]
    if violation == "naive":
        agree_lhs = all(first[i] == second[i] for i in lhs_positions)
        agree_rhs = all(first[i] == second[i] for i in rhs_positions)
        return agree_lhs and not agree_rhs
    # "certain": the pair violates under every valuation — the left-hand
    # sides must be equal in every world (syntactic equality, since two
    # different nulls or a null and a constant can always be pulled apart)
    # and some right-hand side position must hold two distinct constants
    # (which no valuation can reconcile).
    if not all(first[i] == second[i] for i in lhs_positions):
        return False
    for i in rhs_positions:
        left, right = first[i], second[i]
        if left != right and not is_null(left) and not is_null(right):
            return True
    return False


def conflicting_facts(
    database: Database,
    constraints,
    violation: str = "naive",
) -> List[Conflict]:
    """All conflicts (pairs of facts violating some FD) in ``database``."""
    if violation not in VIOLATION_MODES:
        raise ValueError(f"violation must be one of {VIOLATION_MODES}, got {violation!r}")
    conflicts: List[Conflict] = []
    for dependency in _as_constraint_list(constraints):
        relation = database.relation(dependency.relation)
        for first, second in combinations(relation.sorted_rows(), 2):
            if _pair_violates(dependency, relation, first, second, violation):
                conflicts.append(
                    Conflict(dependency, (dependency.relation, first), (dependency.relation, second))
                )
    return conflicts


def conflict_graph(
    database: Database,
    constraints,
    violation: str = "naive",
) -> Dict[Fact, Set[Fact]]:
    """The conflict graph: each fact mapped to the facts it conflicts with."""
    graph: Dict[Fact, Set[Fact]] = {}
    for conflict in conflicting_facts(database, constraints, violation):
        first, second = conflict.facts()
        graph.setdefault(first, set()).add(second)
        graph.setdefault(second, set()).add(first)
    return graph


def is_consistent(database: Database, constraints, violation: str = "naive") -> bool:
    """``True`` iff the database has no conflicts with respect to the FDs."""
    return not conflicting_facts(database, constraints, violation)


def _maximal_independent_sets(
    vertices: Sequence[Fact],
    adjacency: Dict[Fact, Set[Fact]],
) -> Iterator[FrozenSet[Fact]]:
    """Enumerate the maximal independent sets of the conflict graph.

    A straightforward branch on the first undecided vertex: either keep it
    (and discard its neighbours) or drop it — but dropping is only fruitful
    when some neighbour is eventually kept, which the maximality check at
    the leaves enforces.  Instances in this library are small (repairs blow
    up combinatorially anyway, which benchmark E23 demonstrates), so this
    simple exact enumeration is adequate.
    """
    vertices = sorted(vertices, key=str)

    def extend(candidates: List[Fact], chosen: Set[Fact], excluded: Set[Fact]) -> Iterator[FrozenSet[Fact]]:
        if not candidates:
            # maximal iff every excluded vertex conflicts with a chosen one
            if all(adjacency[v] & chosen for v in excluded):
                yield frozenset(chosen)
            return
        vertex = candidates[0]
        rest = candidates[1:]
        # Branch 1: keep the vertex, drop its neighbours.
        neighbours = adjacency[vertex]
        yield from extend(
            [v for v in rest if v not in neighbours],
            chosen | {vertex},
            excluded | {v for v in rest if v in neighbours},
        )
        # Branch 2: exclude the vertex.
        yield from extend(rest, set(chosen), excluded | {vertex})

    seen: Set[FrozenSet[Fact]] = set()
    for result in extend(list(vertices), set(), set()):
        if result not in seen:
            seen.add(result)
            yield result


def repairs(
    database: Database,
    constraints,
    violation: str = "naive",
) -> List[Database]:
    """All subset repairs of ``database`` with respect to the FDs.

    Facts involved in no conflict belong to every repair; the conflicting
    facts are resolved by enumerating the maximal independent sets of the
    conflict graph.  A consistent database has exactly one repair: itself.
    """
    adjacency = conflict_graph(database, constraints, violation)
    if not adjacency:
        return [database]
    conflicted = sorted(adjacency, key=str)
    safe_facts = [fact for fact in database.facts() if fact not in adjacency]
    result: List[Database] = []
    for independent in _maximal_independent_sets(conflicted, adjacency):
        kept = safe_facts + sorted(independent, key=str)
        result.append(Database.from_facts(database.schema, kept))
    return result


def count_repairs(database: Database, constraints, violation: str = "naive") -> int:
    """The number of subset repairs (exponential in the worst case)."""
    return len(repairs(database, constraints, violation))
