"""Consistent query answering: certain answers over the set of repairs.

Consistent answers (Arenas–Bertossi–Chomicki; the paper's reference [15])
are defined exactly like the paper's certain answers, with the semantics
function ``[[D]]`` instantiated to the set of subset repairs of ``D``::

    consistent(Q, D, Σ) = ⋂ { Q(R) | R a repair of D w.r.t. Σ }

This module computes them by explicit repair enumeration.  The point of
the experiment built on top (E23) is the same complexity story the paper
tells for nulls: the number of repairs is exponential in the number of
conflicts, so the intersection-based definition is expensive, while
queries that avoid the inconsistent portion of the data are answered
consistently by plain evaluation.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set, Tuple

from ..datamodel import Database, Relation
from ..datamodel.relations import Row
from ..semantics.certain import Evaluator
from .repairs import repairs

BooleanQuery = Callable[[Database], bool]


def repair_semantics(database: Database, constraints, violation: str = "naive") -> List[Database]:
    """The semantics ``[[D]]`` of an inconsistent database: its subset repairs.

    This is the bridge to the paper's framework — plugging this function in
    as the semantics of incompleteness makes consistent answers a special
    case of the paper's certain answers.
    """
    return repairs(database, constraints, violation)


def consistent_answers(
    evaluate: Evaluator,
    database: Database,
    constraints,
    violation: str = "naive",
) -> Relation:
    """Tuples in the answer over *every* repair of ``database``."""
    certain: Optional[Set[Row]] = None
    answer_schema = None
    for repair in repair_semantics(database, constraints, violation):
        answer = evaluate(repair)
        if answer_schema is None:
            answer_schema = answer.schema
        certain = set(answer.rows) if certain is None else certain & answer.rows
        if not certain:
            break
    if answer_schema is None or certain is None:
        answer = evaluate(database)
        return Relation(answer.schema, ())
    return Relation(answer_schema, certain)


def consistent_boolean(
    evaluate: BooleanQuery,
    database: Database,
    constraints,
    violation: str = "naive",
) -> bool:
    """Consistent answer of a Boolean query: true iff true in every repair."""
    return all(
        evaluate(repair) for repair in repair_semantics(database, constraints, violation)
    )


def possible_answers_over_repairs(
    evaluate: Evaluator,
    database: Database,
    constraints,
    violation: str = "naive",
) -> Relation:
    """Tuples in the answer over *some* repair (the possibility counterpart)."""
    possible: Set[Row] = set()
    answer_schema = None
    for repair in repair_semantics(database, constraints, violation):
        answer = evaluate(repair)
        if answer_schema is None:
            answer_schema = answer.schema
        possible |= answer.rows
    if answer_schema is None:
        answer = evaluate(database)
        return Relation(answer.schema, ())
    return Relation(answer_schema, possible)
