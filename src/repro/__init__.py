"""repro: certain answers over incomplete databases.

A from-scratch reproduction of Leonid Libkin's PODS 2014 keynote
*"Incomplete Data: What Went Wrong, and How to Fix It"*.

The library provides:

* a complete data model for incomplete relational databases — marked
  (naive) nulls, Codd nulls, naive tables, Codd tables and conditional
  tables (:mod:`repro.datamodel`);
* open-world / closed-world / weak-closed-world semantics, possible-world
  enumeration and brute-force certain answers (:mod:`repro.semantics`);
* a relational-algebra engine with standard, naive and SQL
  three-valued-logic evaluation, plus the ``RA_cwa`` fragment with division
  and the Imieliński–Lipski algebra on conditional tables
  (:mod:`repro.algebra`);
* first-order logic: formulas, fragments (CQ, UCQ, Pos, Pos∀G),
  positive diagrams and the δ-formulas of the paper, and conjunctive-query
  containment (:mod:`repro.logic`);
* homomorphism machinery and the information orderings ⊑_owa / ⊑_cwa
  (:mod:`repro.homomorphisms`, :mod:`repro.core.orderings`);
* the paper's framework of representation systems, certainty as knowledge
  (``certainK``) and as object (``certainO``), and the naïve-evaluation
  theorems (:mod:`repro.core`);
* an SQL-null (three-valued logic) mini engine that reproduces the "what
  went wrong" examples (:mod:`repro.sqlnulls`);
* a SQL-backend compilation subsystem pushing naive evaluation down to
  SQLite — ``engine="sqlite"``, streaming loads, out-of-core instances
  (:mod:`repro.backends`);
* schema mappings and a naive chase for data-exchange scenarios
  (:mod:`repro.exchange`);
* integrity constraints (functional and inclusion dependencies) with
  naive / certain / possible satisfaction (:mod:`repro.constraints`);
* the paper's Section 7 application and data-model directions carried out
  in code: consistent query answering over repairs (:mod:`repro.cqa`),
  answering queries using views (:mod:`repro.views`), incomplete graph
  databases with regular path queries and graph patterns
  (:mod:`repro.graphs`), and incomplete data trees with tree patterns
  (:mod:`repro.trees`); and
* a concurrent query-service tier: ``repro.serve.Server`` dispatches
  async clients over a pool of warmed sessions, with frozen read-only
  sessions (:meth:`Session.freeze`) shared across threads lock-free
  (:mod:`repro.serve`);
* a unified observability layer — per-session metrics registries
  (:meth:`Session.metrics`), query tracing with pluggable sinks
  (:class:`repro.obs.Tracer`, ``REPRO_TRACE=path``), and
  ``query.explain(analyze=True)`` with per-operator row counts and
  timings (:mod:`repro.obs`, ``docs/observability.md``); and
* synthetic workload generators used by the experiment and benchmark
  suites (:mod:`repro.workloads`).

Quickstart
----------
Open a session — it owns all evaluation state (engine, plan cache,
condition kernel, backend connections) — and ask for answers in the mode
you mean:

>>> import repro
>>> from repro import Database, Null
>>> from repro.algebra import parse_ra
>>> db = Database.from_dict({
...     "Order": [("oid1", "pr1"), ("oid2", "pr2")],
...     "Pay": [("pid1", Null("o"), 100)],
... })
>>> session = repro.connect(db)                  # engine="plan", semantics="cwa"
>>> q = session.query(parse_ra("project[#0](Order)"))
>>> sorted(q.certain().rows)
[('oid1',), ('oid2',)]
>>> q.answer_object().name                       # certainO: nulls included
'Order'

Sessions are isolated: two sessions with different engines (or the
``"sqlite"`` backend, or different semantics) coexist in one process
without sharing any cache state.  ``session.query(...).cursor()`` streams
answers in batches straight off the SQLite backend, and
``session.sql("SELECT ...")`` runs three-valued SQL.  See ``docs/api.md``
for the Session/Query/Cursor lifecycle and the migration map from the
deprecated module-level entry points (``certain_answers`` and friends).

To serve many concurrent readers, freeze a warmed session
(``session.freeze()``) and share it across threads lock-free, or let
:class:`repro.serve.Server` do both behind an asyncio front end
(``docs/serving.md``).
"""

from .datamodel import (
    ConditionalTable,
    ConstantPool,
    Database,
    DatabaseSchema,
    Null,
    Relation,
    RelationSchema,
    Valuation,
)
from .resilience import (
    BackendRecoveryWarning,
    BackendUnavailable,
    Budget,
    BudgetExceeded,
    ConfidenceInterval,
    InvalidRequestError,
    ManualClock,
    PartialResult,
    PoolExhausted,
    QueryCancelled,
    ReproError,
    ResumeToken,
    RetryPolicy,
    SessionClosedError,
    WorkerPoolError,
)
from .obs import AnalyzeReport, MetricsRegistry, Tracer
from .prob import ExclusiveBlock, ProbabilityModel
from .session import Cursor, Query, Session, connect, default_session
from . import obs
from . import prob
from . import serve

__version__ = "1.6.0"

__all__ = [
    "AnalyzeReport",
    "BackendRecoveryWarning",
    "BackendUnavailable",
    "Budget",
    "BudgetExceeded",
    "ConditionalTable",
    "ConfidenceInterval",
    "ConstantPool",
    "Cursor",
    "Database",
    "DatabaseSchema",
    "ExclusiveBlock",
    "InvalidRequestError",
    "ManualClock",
    "MetricsRegistry",
    "Null",
    "PartialResult",
    "PoolExhausted",
    "ProbabilityModel",
    "Query",
    "QueryCancelled",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ResumeToken",
    "RetryPolicy",
    "Session",
    "SessionClosedError",
    "Tracer",
    "Valuation",
    "WorkerPoolError",
    "__version__",
    "connect",
    "default_session",
    "obs",
    "prob",
    "serve",
]
