"""repro: certain answers over incomplete databases.

A from-scratch reproduction of Leonid Libkin's PODS 2014 keynote
*"Incomplete Data: What Went Wrong, and How to Fix It"*.

The library provides:

* a complete data model for incomplete relational databases — marked
  (naive) nulls, Codd nulls, naive tables, Codd tables and conditional
  tables (:mod:`repro.datamodel`);
* open-world / closed-world / weak-closed-world semantics, possible-world
  enumeration and brute-force certain answers (:mod:`repro.semantics`);
* a relational-algebra engine with standard, naive and SQL
  three-valued-logic evaluation, plus the ``RA_cwa`` fragment with division
  and the Imieliński–Lipski algebra on conditional tables
  (:mod:`repro.algebra`);
* first-order logic: formulas, fragments (CQ, UCQ, Pos, Pos∀G),
  positive diagrams and the δ-formulas of the paper, and conjunctive-query
  containment (:mod:`repro.logic`);
* homomorphism machinery and the information orderings ⊑_owa / ⊑_cwa
  (:mod:`repro.homomorphisms`, :mod:`repro.core.orderings`);
* the paper's framework of representation systems, certainty as knowledge
  (``certainK``) and as object (``certainO``), and the naïve-evaluation
  theorems (:mod:`repro.core`);
* an SQL-null (three-valued logic) mini engine that reproduces the "what
  went wrong" examples (:mod:`repro.sqlnulls`);
* a SQL-backend compilation subsystem pushing naive evaluation down to
  SQLite — ``engine="sqlite"``, streaming loads, out-of-core instances
  (:mod:`repro.backends`);
* schema mappings and a naive chase for data-exchange scenarios
  (:mod:`repro.exchange`);
* integrity constraints (functional and inclusion dependencies) with
  naive / certain / possible satisfaction (:mod:`repro.constraints`);
* the paper's Section 7 application and data-model directions carried out
  in code: consistent query answering over repairs (:mod:`repro.cqa`),
  answering queries using views (:mod:`repro.views`), incomplete graph
  databases with regular path queries and graph patterns
  (:mod:`repro.graphs`), and incomplete data trees with tree patterns
  (:mod:`repro.trees`); and
* synthetic workload generators used by the experiment and benchmark
  suites (:mod:`repro.workloads`).

Quickstart
----------
>>> from repro import Database, Null
>>> from repro.algebra import parse_ra
>>> from repro.core import certain_answers_naive
>>> db = Database.from_dict({
...     "Order": [("oid1", "pr1"), ("oid2", "pr2")],
...     "Pay": [("pid1", Null("o"), 100)],
... })
>>> query = parse_ra("project[#0](Order)")
>>> sorted(certain_answers_naive(query, db).rows)
[('oid1',), ('oid2',)]
"""

from .datamodel import (
    ConditionalTable,
    ConstantPool,
    Database,
    DatabaseSchema,
    Null,
    Relation,
    RelationSchema,
    Valuation,
)

__version__ = "1.0.0"

__all__ = [
    "ConditionalTable",
    "ConstantPool",
    "Database",
    "DatabaseSchema",
    "Null",
    "Relation",
    "RelationSchema",
    "Valuation",
    "__version__",
]
