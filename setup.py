"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments whose setuptools
lacks PEP 660 support (no ``wheel`` package available offline), via
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
